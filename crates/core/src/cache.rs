//! The case against caching (§1, extension study).
//!
//! Prior work used compute-local NVM "solely ... as large and
//! algorithmically-managed caches"; the paper argues this fails for OoC
//! science because (a) caches "may take many hours or even days to heat
//! up", and (b) OoC workloads either never re-read data or re-read it at
//! "very high reuse distances" that defeat any practical capacity. This
//! module makes both arguments measurable: an LRU block-cache replay with
//! a hit-rate timeline, and an exact reuse-distance profile (distinct
//! blocks between consecutive accesses to the same block, computed with a
//! Fenwick tree).

use ooctrace::PosixTrace;
use serde::Serialize;
use std::collections::BTreeMap;

/// Result of replaying a trace through an LRU block cache.
#[derive(Debug, Clone, Serialize)]
pub struct CacheReplay {
    /// Block accesses replayed.
    pub accesses: u64,
    /// Accesses served from cache.
    pub hits: u64,
    /// `(bytes_touched_so_far, hit_rate_of_last_window)` samples.
    pub timeline: Vec<(u64, f64)>,
    /// Bytes that had to stream through the cache before a window first
    /// reached a 50% hit rate — the "heat-up" cost. `None` if it never
    /// warmed within the trace.
    pub warm_bytes: Option<u64>,
}

impl CacheReplay {
    /// Overall hit ratio in `[0, 1]`.
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// Replays `trace` through an LRU cache of `capacity_bytes`, managed in
/// `block_size` units (the paper's comparators cache 4 KiB – 1 MiB
/// blocks). Hit-rate samples are taken every 64 block accesses.
pub fn replay_lru(trace: &PosixTrace, capacity_bytes: u64, block_size: u64) -> CacheReplay {
    assert!(block_size > 0 && capacity_bytes >= block_size);
    let capacity_blocks = capacity_bytes / block_size;
    // LRU: stamp -> block (ordered), block -> stamp.
    let mut by_age: BTreeMap<u64, u64> = BTreeMap::new();
    let mut stamp_of: BTreeMap<u64, u64> = BTreeMap::new();
    let mut clock: u64 = 0;
    let (mut accesses, mut hits) = (0u64, 0u64);
    let (mut win_acc, mut win_hit) = (0u64, 0u64);
    let mut bytes_seen = 0u64;
    let mut timeline = Vec::new();
    let mut warm_bytes = None;
    const WINDOW: u64 = 64;

    for rec in &trace.records {
        let first = rec.offset / block_size;
        let last = (rec.end().saturating_sub(1)) / block_size;
        for blk in first..=last {
            let key = ((rec.file as u64) << 40) | blk;
            clock += 1;
            accesses += 1;
            win_acc += 1;
            bytes_seen += block_size;
            if let Some(old) = stamp_of.get(&key).copied() {
                hits += 1;
                win_hit += 1;
                by_age.remove(&old);
            } else if by_age.len() as u64 >= capacity_blocks {
                // Evict the least recently used block.
                if let Some((&oldest, &victim)) = by_age.iter().next() {
                    by_age.remove(&oldest);
                    stamp_of.remove(&victim);
                }
            }
            by_age.insert(clock, key);
            stamp_of.insert(key, clock);
            if win_acc == WINDOW {
                let rate = win_hit as f64 / win_acc as f64;
                timeline.push((bytes_seen, rate));
                if warm_bytes.is_none() && rate >= 0.5 {
                    warm_bytes = Some(bytes_seen);
                }
                win_acc = 0;
                win_hit = 0;
            }
        }
    }
    if win_acc > 0 {
        let rate = win_hit as f64 / win_acc as f64;
        timeline.push((bytes_seen, rate));
        if warm_bytes.is_none() && rate >= 0.5 {
            warm_bytes = Some(bytes_seen);
        }
    }
    CacheReplay {
        accesses,
        hits,
        timeline,
        warm_bytes,
    }
}

/// Reuse-distance profile of a trace at `block_size` granularity.
#[derive(Debug, Clone, Serialize)]
pub struct ReuseStats {
    /// `histogram[i]` counts re-accesses with reuse distance in
    /// `[2^i, 2^(i+1))` distinct blocks (bucket 0 holds distance 0 and 1).
    pub histogram: Vec<u64>,
    /// First-touch (cold) accesses, which have infinite reuse distance.
    pub cold: u64,
    /// Total re-accesses.
    pub reaccesses: u64,
    /// Median reuse distance in distinct blocks (`None` if no re-access).
    pub median_distance: Option<u64>,
}

impl ReuseStats {
    /// The capacity (bytes) an LRU cache would need for at least half of
    /// the re-accesses to hit.
    pub fn capacity_for_half_hits(&self, block_size: u64) -> Option<u64> {
        self.median_distance
            .map(|d| d.saturating_add(1) * block_size)
    }
}

/// Fenwick (binary indexed) tree over access positions.
struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    fn new(n: usize) -> Fenwick {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    fn add(&mut self, mut i: usize, delta: i64) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta) as u64;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of `[0, i]`.
    fn prefix(&self, mut i: usize) -> u64 {
        i += 1;
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Computes the exact LRU reuse-distance profile: for every re-access to
/// a block, the number of *distinct* blocks touched since its previous
/// access.
pub fn reuse_distances(trace: &PosixTrace, block_size: u64) -> ReuseStats {
    assert!(block_size > 0);
    // Expand to block accesses.
    let mut sequence: Vec<u64> = Vec::new();
    for rec in &trace.records {
        let first = rec.offset / block_size;
        let last = (rec.end().saturating_sub(1)) / block_size;
        for blk in first..=last {
            sequence.push(((rec.file as u64) << 40) | blk);
        }
    }
    let n = sequence.len();
    let mut fen = Fenwick::new(n);
    let mut last_pos: BTreeMap<u64, usize> = BTreeMap::new();
    let mut histogram = vec![0u64; 48];
    let mut cold = 0u64;
    let mut distances: Vec<u64> = Vec::new();
    for (pos, &blk) in sequence.iter().enumerate() {
        match last_pos.get(&blk).copied() {
            Some(prev) => {
                // Distinct blocks between prev and pos: marks in (prev, pos).
                let upto_pos = if pos == 0 { 0 } else { fen.prefix(pos - 1) };
                let upto_prev = fen.prefix(prev);
                let d = upto_pos - upto_prev;
                let bucket = if d <= 1 {
                    0
                } else {
                    63 - d.leading_zeros() as usize
                };
                histogram[bucket.min(47)] += 1;
                distances.push(d);
                fen.add(prev, -1);
            }
            None => cold += 1,
        }
        fen.add(pos, 1);
        last_pos.insert(blk, pos);
    }
    distances.sort_unstable();
    let median_distance = if distances.is_empty() {
        None
    } else {
        Some(distances[distances.len() / 2])
    };
    while histogram.len() > 1 && histogram.last() == Some(&0) {
        histogram.pop();
    }
    ReuseStats {
        histogram,
        cold,
        reaccesses: distances.len() as u64,
        median_distance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmtypes::IoOp;
    use ooctrace::TraceRecord;

    /// `sweeps` sequential passes over a file of `blocks` 4-KiB blocks.
    fn sweeping_trace(blocks: u64, sweeps: u64) -> PosixTrace {
        let mut t = PosixTrace::new();
        let mut i = 0;
        for _ in 0..sweeps {
            for b in 0..blocks {
                t.push(TraceRecord {
                    t: i,
                    op: IoOp::Read,
                    file: 0,
                    offset: b * 4096,
                    len: 4096,
                });
                i += 1;
            }
        }
        t
    }

    #[test]
    fn undersized_lru_never_hits_on_cyclic_sweeps() {
        // The classic sequential-flooding pathology: a cache one block
        // short of the working set evicts each block just before reuse.
        let trace = sweeping_trace(100, 5);
        let replay = replay_lru(&trace, 99 * 4096, 4096);
        assert_eq!(replay.hits, 0, "LRU should thrash");
        assert!(replay.warm_bytes.is_none());
    }

    #[test]
    fn oversized_lru_warms_after_one_sweep() {
        let trace = sweeping_trace(512, 4);
        let replay = replay_lru(&trace, 512 * 4096, 4096);
        // 3 of 4 sweeps hit.
        assert!(
            (replay.hit_ratio() - 0.75).abs() < 0.01,
            "{}",
            replay.hit_ratio()
        );
        let warm = replay.warm_bytes.expect("warms");
        // Heat-up costs about one full sweep.
        assert!(
            warm >= 512 * 4096 && warm <= 2 * 512 * 4096 + 256 * 4096,
            "warm {warm}"
        );
    }

    #[test]
    fn reuse_distance_of_cyclic_sweep_is_working_set() {
        let trace = sweeping_trace(64, 3);
        let stats = reuse_distances(&trace, 4096);
        assert_eq!(stats.cold, 64);
        assert_eq!(stats.reaccesses, 128);
        // Every re-access sees exactly 63 distinct other blocks.
        assert_eq!(stats.median_distance, Some(63));
        assert_eq!(stats.capacity_for_half_hits(4096), Some(64 * 4096));
    }

    #[test]
    fn immediate_reuse_has_distance_zero() {
        let mut t = PosixTrace::new();
        for i in 0..10u64 {
            t.push(TraceRecord {
                t: i,
                op: IoOp::Read,
                file: 0,
                offset: 0,
                len: 4096,
            });
        }
        let stats = reuse_distances(&t, 4096);
        assert_eq!(stats.cold, 1);
        assert_eq!(stats.median_distance, Some(0));
        // And a tiny cache captures them all.
        let replay = replay_lru(&t, 4096, 4096);
        assert_eq!(replay.hits, 9);
    }

    #[test]
    fn distinct_files_do_not_alias() {
        let mut t = PosixTrace::new();
        t.push(TraceRecord {
            t: 0,
            op: IoOp::Read,
            file: 0,
            offset: 0,
            len: 4096,
        });
        t.push(TraceRecord {
            t: 1,
            op: IoOp::Read,
            file: 1,
            offset: 0,
            len: 4096,
        });
        let replay = replay_lru(&t, 1 << 20, 4096);
        assert_eq!(replay.hits, 0);
        let stats = reuse_distances(&t, 4096);
        assert_eq!(stats.cold, 2);
    }

    #[test]
    fn random_access_reuse_distances_are_large() {
        // Pseudo-random single-block touches over a large footprint.
        let mut t = PosixTrace::new();
        let mut x = 1u64;
        for i in 0..4000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let blk = (x >> 33) % 1000;
            t.push(TraceRecord {
                t: i,
                op: IoOp::Read,
                file: 0,
                offset: blk * 4096,
                len: 4096,
            });
        }
        let stats = reuse_distances(&t, 4096);
        // Median distance near the footprint scale, far above trivial.
        assert!(stats.median_distance.unwrap() > 100);
    }
}
