//! Cluster-level scaling: the architectural motivation of Figures 2/3.
//!
//! Carver's OoC partition dedicates 40 compute nodes and 10 I/O nodes
//! (20 PCIe SSDs) to out-of-core computation. Every CN's accesses to
//! ION-resident NVM share the IONs' SSDs and the fabric; compute-local
//! NVM scales with the node count instead. This module turns the
//! simulator's single-node measurements into cluster aggregates.

use crate::config::SystemConfig;
use crate::experiment::run_experiment;
use nvmtypes::NvmKind;
use ooctrace::PosixTrace;
use serde::Serialize;

/// Static description of the cluster (defaults follow Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ClusterSpec {
    /// I/O nodes serving the OoC partition.
    pub ions: u32,
    /// PCIe SSDs per ION.
    pub ssds_per_ion: u32,
    /// Fabric bisection bandwidth available to the OoC partition, MB/s
    /// (a QDR 4X fat-tree corner; the per-CN link is modelled by the
    /// ION-GPFS experiment itself).
    pub bisection_mb_s: f64,
}

impl ClusterSpec {
    /// Carver's OoC sub-cluster: 10 IONs, 20 PCIe SSDs, and a bisection
    /// sized for its 40-node partition.
    pub fn carver() -> ClusterSpec {
        ClusterSpec {
            ions: 10,
            ssds_per_ion: 2,
            bisection_mb_s: 40.0 * 4000.0 * 0.5,
        }
    }
}

/// Aggregate delivered bandwidth at one node count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ScalingPoint {
    /// Compute nodes running the OoC application.
    pub nodes: u32,
    /// ION-remote aggregate, MB/s.
    pub ion_mb_s: f64,
    /// Compute-local aggregate, MB/s.
    pub cnl_mb_s: f64,
}

/// Single-node calibration inputs measured by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct NodeRates {
    /// What one CN extracts from the ION path (network + GPFS + SSD).
    pub per_cn_ion_mb_s: f64,
    /// What one ION's SSD delivers to GPFS-shaped traffic (no network):
    /// the server-side ceiling.
    pub per_ion_ssd_mb_s: f64,
    /// What one CN extracts from its local SSD through UFS.
    pub per_cn_local_mb_s: f64,
}

impl NodeRates {
    /// Measures the three rates with the simulator on `trace` / `kind`.
    pub fn measure(kind: NvmKind, trace: &PosixTrace) -> NodeRates {
        let ion = run_experiment(&SystemConfig::ion_gpfs(), kind, trace);
        let local = run_experiment(&SystemConfig::cnl_ufs(), kind, trace);
        // Server-side ceiling: GPFS-shaped block traffic on the bridged
        // device without the fabric hop.
        let mut server_cfg = SystemConfig::ion_gpfs();
        server_cfg.location = crate::config::Location::ComputeLocal;
        let server = run_experiment(&server_cfg, kind, trace);
        NodeRates {
            per_cn_ion_mb_s: ion.bandwidth_mb_s,
            per_ion_ssd_mb_s: server.bandwidth_mb_s,
            per_cn_local_mb_s: local.bandwidth_mb_s,
        }
    }
}

/// Aggregate bandwidth curves as the application scales out.
///
/// ION-remote: `min(N x per-CN rate, IONs x server ceiling, bisection)`.
/// Compute-local: `N x per-CN local rate` — no shared term at all.
pub fn scaling_curve(
    spec: &ClusterSpec,
    rates: &NodeRates,
    node_counts: &[u32],
) -> Vec<ScalingPoint> {
    node_counts
        .iter()
        .map(|&n| ScalingPoint {
            nodes: n,
            ion_mb_s: (n as f64 * rates.per_cn_ion_mb_s)
                .min(spec.ions as f64 * rates.per_ion_ssd_mb_s)
                .min(spec.bisection_mb_s),
            cnl_mb_s: n as f64 * rates.per_cn_local_mb_s,
        })
        .collect()
}

/// The node count at which the ION path stops scaling (its aggregate is
/// within 1% of the shared ceiling).
pub fn ion_saturation_nodes(spec: &ClusterSpec, rates: &NodeRates) -> u32 {
    let ceiling = (spec.ions as f64 * rates.per_ion_ssd_mb_s).min(spec.bisection_mb_s);
    (ceiling / rates.per_cn_ion_mb_s).ceil() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rates() -> NodeRates {
        NodeRates {
            per_cn_ion_mb_s: 800.0,
            per_ion_ssd_mb_s: 1500.0,
            per_cn_local_mb_s: 3000.0,
        }
    }

    #[test]
    fn cnl_scales_linearly_ion_saturates() {
        let spec = ClusterSpec::carver();
        let curve = scaling_curve(&spec, &rates(), &[1, 10, 40, 80]);
        // Linear CNL.
        assert_eq!(curve[2].cnl_mb_s, 40.0 * 3000.0);
        assert_eq!(curve[3].cnl_mb_s, 2.0 * curve[2].cnl_mb_s);
        // ION capped by 10 x 1500 = 15000 from ~19 nodes on.
        assert_eq!(curve[2].ion_mb_s, 15_000.0);
        assert_eq!(curve[3].ion_mb_s, 15_000.0);
        assert!(curve[0].ion_mb_s < 1000.0 + 1e-9);
    }

    #[test]
    fn saturation_point_matches_arithmetic() {
        let spec = ClusterSpec::carver();
        // 15000 / 800 = 18.75 -> 19 nodes.
        assert_eq!(ion_saturation_nodes(&spec, &rates()), 19);
    }

    #[test]
    fn bisection_can_be_the_binding_constraint() {
        let mut spec = ClusterSpec::carver();
        spec.bisection_mb_s = 5_000.0;
        let curve = scaling_curve(&spec, &rates(), &[40]);
        assert_eq!(curve[0].ion_mb_s, 5_000.0);
    }

    #[test]
    fn measured_rates_order_sensibly() {
        let trace = crate::workload::synthetic_ooc_trace(24 * nvmtypes::MIB, 4 * nvmtypes::MIB, 7);
        let r = NodeRates::measure(NvmKind::Slc, &trace);
        // Removing the fabric can only help; local UFS beats both.
        assert!(r.per_ion_ssd_mb_s > r.per_cn_ion_mb_s);
        assert!(r.per_cn_local_mb_s > r.per_cn_ion_mb_s);
    }
}
