//! Cluster-level scaling: the architectural motivation of Figures 2/3.
//!
//! Carver's OoC partition dedicates 40 compute nodes and 10 I/O nodes
//! (20 PCIe SSDs) to out-of-core computation. Every CN's accesses to
//! ION-resident NVM share the IONs' SSDs and the fabric; compute-local
//! NVM scales with the node count instead. This module turns the
//! simulator's single-node measurements into cluster aggregates.

use crate::config::SystemConfig;
use crate::experiment::ExperimentSpec;
use nvmtypes::NvmKind;
use ooctrace::PosixTrace;
use serde::Serialize;

/// Static description of the cluster (defaults follow Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ClusterSpec {
    /// I/O nodes serving the OoC partition.
    pub ions: u32,
    /// PCIe SSDs per ION.
    pub ssds_per_ion: u32,
    /// Fabric bisection bandwidth available to the OoC partition, MB/s
    /// (a QDR 4X fat-tree corner; the per-CN link is modelled by the
    /// ION-GPFS experiment itself).
    pub bisection_mb_s: f64,
}

impl ClusterSpec {
    /// Carver's OoC sub-cluster: 10 IONs, 20 PCIe SSDs, and a bisection
    /// sized for its 40-node partition.
    pub fn carver() -> ClusterSpec {
        ClusterSpec {
            ions: 10,
            ssds_per_ion: 2,
            bisection_mb_s: 40.0 * 4000.0 * 0.5,
        }
    }
}

/// Aggregate delivered bandwidth at one node count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ScalingPoint {
    /// Compute nodes running the OoC application.
    pub nodes: u32,
    /// ION-remote aggregate, MB/s.
    pub ion_mb_s: f64,
    /// Compute-local aggregate, MB/s.
    pub cnl_mb_s: f64,
}

/// Single-node calibration inputs measured by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct NodeRates {
    /// What one CN extracts from the ION path (network + GPFS + SSD).
    pub per_cn_ion_mb_s: f64,
    /// What one ION's SSD delivers to GPFS-shaped traffic (no network):
    /// the server-side ceiling.
    pub per_ion_ssd_mb_s: f64,
    /// What one CN extracts from its local SSD through UFS.
    pub per_cn_local_mb_s: f64,
}

impl NodeRates {
    /// Measures the three rates with the simulator on `trace` / `kind`.
    pub fn measure(kind: NvmKind, trace: &PosixTrace) -> NodeRates {
        let ion = ExperimentSpec::new(&SystemConfig::ion_gpfs(), kind).run(trace);
        let local = ExperimentSpec::new(&SystemConfig::cnl_ufs(), kind).run(trace);
        // Server-side ceiling: GPFS-shaped block traffic on the bridged
        // device without the fabric hop.
        let mut server_cfg = SystemConfig::ion_gpfs();
        server_cfg.location = crate::config::Location::ComputeLocal;
        let server = ExperimentSpec::new(&server_cfg, kind).run(trace);
        NodeRates {
            per_cn_ion_mb_s: ion.bandwidth_mb_s,
            per_ion_ssd_mb_s: server.bandwidth_mb_s,
            per_cn_local_mb_s: local.bandwidth_mb_s,
        }
    }
}

/// Aggregate bandwidth curves as the application scales out.
///
/// ION-remote: `min(N x per-CN rate, IONs x server ceiling, bisection)`.
/// Compute-local: `N x per-CN local rate` — no shared term at all.
pub fn scaling_curve(
    spec: &ClusterSpec,
    rates: &NodeRates,
    node_counts: &[u32],
) -> Vec<ScalingPoint> {
    node_counts
        .iter()
        .map(|&n| ScalingPoint {
            nodes: n,
            ion_mb_s: (n as f64 * rates.per_cn_ion_mb_s)
                .min(spec.ions as f64 * rates.per_ion_ssd_mb_s)
                .min(spec.bisection_mb_s),
            cnl_mb_s: n as f64 * rates.per_cn_local_mb_s,
        })
        .collect()
}

/// The node count at which the ION path stops scaling (its aggregate is
/// within 1% of the shared ceiling).
pub fn ion_saturation_nodes(spec: &ClusterSpec, rates: &NodeRates) -> u32 {
    let ceiling = (spec.ions as f64 * rates.per_ion_ssd_mb_s).min(spec.bisection_mb_s);
    (ceiling / rates.per_cn_ion_mb_s).ceil() as u32
}

/// Aggregate compute-local bandwidth with `failed_local` of `nodes` CNs
/// running in degraded mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DegradedPoint {
    /// Compute nodes in the job.
    pub nodes: u32,
    /// Nodes whose local SSD has failed.
    pub failed_local: u32,
    /// Healthy aggregate (no failures), MB/s.
    pub healthy_mb_s: f64,
    /// Degraded aggregate, MB/s: healthy nodes keep their local rate,
    /// failed nodes fall back to the shared ION path.
    pub degraded_mb_s: f64,
}

impl DegradedPoint {
    /// Fraction of the healthy aggregate retained, `[0, 1]`.
    pub fn retained(&self) -> f64 {
        if self.healthy_mb_s <= 0.0 {
            0.0
        } else {
            self.degraded_mb_s / self.healthy_mb_s
        }
    }
}

/// Degraded mode: a CN whose local SSD fails does not stop — it falls
/// back to the ION path, whose aggregate is still bounded by the shared
/// server ceiling and the fabric bisection. This is the fault model's
/// cluster-level answer to "what does CNL lose when devices die": the
/// surviving nodes keep scaling linearly, only the fallback traffic
/// contends.
pub fn degraded_scaling_point(
    spec: &ClusterSpec,
    rates: &NodeRates,
    nodes: u32,
    failed_local: u32,
) -> DegradedPoint {
    let failed = failed_local.min(nodes);
    let healthy = nodes - failed;
    let fallback = (failed as f64 * rates.per_cn_ion_mb_s)
        .min(spec.ions as f64 * rates.per_ion_ssd_mb_s)
        .min(spec.bisection_mb_s);
    DegradedPoint {
        nodes,
        failed_local: failed,
        healthy_mb_s: nodes as f64 * rates.per_cn_local_mb_s,
        degraded_mb_s: healthy as f64 * rates.per_cn_local_mb_s + fallback,
    }
}

/// Degraded-mode curve over a sweep of failure counts at fixed scale.
pub fn degraded_curve(
    spec: &ClusterSpec,
    rates: &NodeRates,
    nodes: u32,
    failure_counts: &[u32],
) -> Vec<DegradedPoint> {
    failure_counts
        .iter()
        .map(|&f| degraded_scaling_point(spec, rates, nodes, f))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rates() -> NodeRates {
        NodeRates {
            per_cn_ion_mb_s: 800.0,
            per_ion_ssd_mb_s: 1500.0,
            per_cn_local_mb_s: 3000.0,
        }
    }

    #[test]
    fn cnl_scales_linearly_ion_saturates() {
        let spec = ClusterSpec::carver();
        let curve = scaling_curve(&spec, &rates(), &[1, 10, 40, 80]);
        // Linear CNL.
        assert_eq!(curve[2].cnl_mb_s, 40.0 * 3000.0);
        assert_eq!(curve[3].cnl_mb_s, 2.0 * curve[2].cnl_mb_s);
        // ION capped by 10 x 1500 = 15000 from ~19 nodes on.
        assert_eq!(curve[2].ion_mb_s, 15_000.0);
        assert_eq!(curve[3].ion_mb_s, 15_000.0);
        assert!(curve[0].ion_mb_s < 1000.0 + 1e-9);
    }

    #[test]
    fn saturation_point_matches_arithmetic() {
        let spec = ClusterSpec::carver();
        // 15000 / 800 = 18.75 -> 19 nodes.
        assert_eq!(ion_saturation_nodes(&spec, &rates()), 19);
    }

    #[test]
    fn bisection_can_be_the_binding_constraint() {
        let mut spec = ClusterSpec::carver();
        spec.bisection_mb_s = 5_000.0;
        let curve = scaling_curve(&spec, &rates(), &[40]);
        assert_eq!(curve[0].ion_mb_s, 5_000.0);
    }

    #[test]
    fn degraded_mode_interpolates_between_cnl_and_ion() {
        let spec = ClusterSpec::carver();
        let r = rates();
        let none = degraded_scaling_point(&spec, &r, 40, 0);
        assert_eq!(none.degraded_mb_s, none.healthy_mb_s);
        assert_eq!(none.retained(), 1.0);
        // One failure: lose one local rate, gain one ION rate.
        let one = degraded_scaling_point(&spec, &r, 40, 1);
        assert_eq!(one.degraded_mb_s, 39.0 * 3000.0 + 800.0);
        assert!(one.retained() < 1.0);
        // All failed: pure ION aggregate, capped by the shared ceiling.
        let all = degraded_scaling_point(&spec, &r, 40, 40);
        assert_eq!(all.degraded_mb_s, 15_000.0);
        // Monotone: more failures never help.
        let curve = degraded_curve(&spec, &r, 40, &[0, 1, 5, 20, 40]);
        for pair in curve.windows(2) {
            assert!(pair[1].degraded_mb_s <= pair[0].degraded_mb_s);
        }
        // Failure count is clamped to the job size.
        let clamped = degraded_scaling_point(&spec, &r, 4, 9);
        assert_eq!(clamped.failed_local, 4);
    }

    #[test]
    fn measured_rates_order_sensibly() {
        let trace = crate::workload::synthetic_ooc_trace(24 * nvmtypes::MIB, 4 * nvmtypes::MIB, 7);
        let r = NodeRates::measure(NvmKind::Slc, &trace);
        // Removing the fabric can only help; local UFS beats both.
        assert!(r.per_ion_ssd_mb_s > r.per_cn_ion_mb_s);
        assert!(r.per_cn_local_mb_s > r.per_cn_ion_mb_s);
    }
}
