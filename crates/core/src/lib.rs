//! # oocnvm-core — the paper's system, assembled
//!
//! This crate glues the substrates together into the system the paper
//! evaluates and proposes:
//!
//! * [`config`] — the thirteen system configurations of **Table 2**
//!   (storage location, file system, bridged vs native controller, PCIe
//!   generation and lane count, NVM bus speed) and their translation into
//!   concrete simulator configurations;
//! * [`workload`] — workload builders: fast synthetic out-of-core sweeps,
//!   and the *real thing* — POSIX traces captured under the `ooc` crate's
//!   LOBPCG eigensolver streaming a synthetic nuclear-CI Hamiltonian;
//! * [`experiment`] — the experiment driver: POSIX trace → file-system
//!   mutation → SSD simulation → [`experiment::ExperimentReport`], plus
//!   parallel sweeps over configurations × media;
//! * [`tenancy`] — multi-tenant traffic studies: sets of tenants
//!   (eigensolver replays, checkpoint bursts, key-value lookups) with
//!   seeded bursty arrivals, replayed over one shared device under
//!   weighted fair queueing with per-tenant tail-latency blocks
//!   (docs/TENANCY.md);
//! * [`trends`] — the Figure-1 bandwidth-trend model (networks vs NVM
//!   devices over time) and its crossover analysis;
//! * [`cache`] — the case against treating compute-local NVM as an
//!   algorithmically-managed cache (§1): LRU replay with heat-up
//!   timelines and exact reuse-distance profiles;
//! * [`format`] — fixed-width table rendering for the figure/table
//!   regeneration binaries.
// Burn-down lint debt: legacy `unwrap`/`expect` sites in this crate are
// inventoried per-file in `simlint.allow` (counts may only decrease).
// New code must return typed errors; see docs/INVARIANTS.md.
#![allow(clippy::unwrap_used, clippy::expect_used)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cluster;
pub mod config;
pub mod experiment;
pub mod format;
pub mod tenancy;
pub mod trends;
pub mod workload;

pub use cluster::{degraded_curve, degraded_scaling_point, DegradedPoint};
pub use config::{Controller, Location, SystemConfig};
#[allow(deprecated)]
pub use experiment::{run_experiment, run_experiment_with_faults, run_sweep, ExperimentReport};
pub use tenancy::{
    ArrivalProcess, TenancyReport, TenancySpec, TenantProfile, TenantReport, TenantSpec,
};
pub use workload::{kv_lookup_trace, lobpcg_posix_trace, synthetic_ooc_trace};
