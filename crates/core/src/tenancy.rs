//! Multi-tenant traffic studies: several jobs sharing one device.
//!
//! The paper replays one job at a time; a compute-local NVM deployment
//! actually multiplexes *many* — eigensolver replays, checkpoint
//! bursts, key-value lookups — over the same fleet. This module is the
//! workload-facing half of that story (the scheduler half lives in
//! [`ssd::qos`], see docs/TENANCY.md):
//!
//! * [`TenantProfile`] — what a tenant does (the workload family and
//!   its size knobs), turned into a POSIX trace per tenant;
//! * [`TenantSpec`] — one tenant fully specified: profile, trace seed,
//!   fair-queueing weight, fault plan;
//! * [`ArrivalProcess`] — a seeded SplitMix64 arrival process that
//!   staggers tenants in time, with a bursty component so arrivals
//!   cluster the way real job queues do;
//! * [`TenancySpec`] — the generalized experiment: a
//!   [`ExperimentSpec`](crate::experiment::ExperimentSpec) holding a
//!   *set* of tenants plus an admission policy, run through
//!   [`ssd::SsdDevice::run_shared`];
//! * [`TenancyReport`] / [`TenantReport`] — the fleet-level
//!   [`ExperimentReport`] plus exact per-tenant tail-latency and
//!   attribution blocks.
//!
//! A one-tenant spec (weight 1, arrival 0, no admission cap) reproduces
//! the single-job [`ExperimentSpec::run`](crate::experiment::ExperimentSpec::run)
//! report byte-for-byte: both paths transform the same POSIX trace
//! through the same file system and service it with the same engine
//! code, and with one tenant the fair-queueing layer is an identity
//! (pinned by a test below and by `tests/determinism.rs`).

use crate::config::SystemConfig;
use crate::experiment::{report_from_run, ExperimentReport, ExperimentSpec};
use crate::workload::{checkpoint_trace, kv_lookup_trace, synthetic_ooc_trace};
use nvmtypes::{FaultPlan, FaultRng, Nanos, NvmKind};
use ooctrace::PosixTrace;
use serde::Serialize;
use simobs::{HdrHistogram, HdrPercentiles, LatencyAttribution, Tracer};
use ssd::{QosPolicy, TenantWorkload};

/// Stream id for the arrival process, disjoint from the
/// `nvmtypes::fault::STREAM_*` fault streams so arrival draws never
/// perturb fault draws (and vice versa).
const STREAM_ARRIVAL: u64 = 5;

/// What one tenant does: a workload family and its size knobs. Each
/// profile expands to a POSIX trace via [`TenantProfile::posix_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum TenantProfile {
    /// An out-of-core eigensolver replay: large, mostly-sequential
    /// panel reads ([`synthetic_ooc_trace`]).
    Eigensolve {
        /// Bytes swept.
        total_bytes: u64,
        /// Panel read size.
        record_size: u64,
    },
    /// A write-heavy checkpointing job: the OoC sweep with periodic
    /// sequential checkpoint bursts ([`checkpoint_trace`]).
    Checkpoint {
        /// Bytes read between the start and the end of the job.
        read_bytes: u64,
        /// Read bytes between consecutive checkpoints.
        ckpt_interval_bytes: u64,
        /// Bytes written per checkpoint.
        ckpt_bytes: u64,
        /// Read/write record size.
        record_size: u64,
    },
    /// A latency-sensitive key-value store: uniformly random point
    /// reads with no reuse ([`kv_lookup_trace`]).
    KvLookup {
        /// Bytes looked up in total.
        total_bytes: u64,
        /// Size of one value read.
        value_size: u64,
    },
}

impl TenantProfile {
    /// The profile's display label (stable; used in reports and JSON).
    pub fn label(&self) -> &'static str {
        match self {
            TenantProfile::Eigensolve { .. } => "eigensolve",
            TenantProfile::Checkpoint { .. } => "checkpoint",
            TenantProfile::KvLookup { .. } => "kv-lookup",
        }
    }

    /// Expands the profile into its POSIX trace with trace seed `seed`.
    pub fn posix_trace(&self, seed: u64) -> PosixTrace {
        match *self {
            TenantProfile::Eigensolve {
                total_bytes,
                record_size,
            } => synthetic_ooc_trace(total_bytes, record_size, seed),
            TenantProfile::Checkpoint {
                read_bytes,
                ckpt_interval_bytes,
                ckpt_bytes,
                record_size,
            } => checkpoint_trace(
                read_bytes,
                ckpt_interval_bytes,
                ckpt_bytes,
                record_size,
                seed,
            ),
            TenantProfile::KvLookup {
                total_bytes,
                value_size,
            } => kv_lookup_trace(total_bytes, value_size, seed),
        }
    }
}

/// One tenant, fully specified.
#[derive(Debug, Clone, Copy)]
pub struct TenantSpec {
    /// The tenant's workload.
    pub profile: TenantProfile,
    /// Trace seed: two tenants with the same profile and different
    /// seeds replay different (deterministic) traces.
    pub seed: u64,
    /// Fair-queueing weight (relative dispatch share under contention).
    pub weight: u64,
    /// The tenant's own fault plan; fault streams are per-tenant, so
    /// one tenant's draws never perturb another's.
    pub fault_plan: FaultPlan,
}

impl TenantSpec {
    /// A weight-1, fault-free tenant of `profile` with trace seed 0.
    pub fn new(profile: TenantProfile) -> TenantSpec {
        TenantSpec {
            profile,
            seed: 0,
            weight: 1,
            fault_plan: FaultPlan::none(),
        }
    }

    /// Sets the trace seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> TenantSpec {
        self.seed = seed;
        self
    }

    /// Sets the fair-queueing weight.
    #[must_use]
    pub fn weight(mut self, weight: u64) -> TenantSpec {
        self.weight = weight;
        self
    }

    /// Installs a per-tenant fault plan.
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> TenantSpec {
        self.fault_plan = plan;
        self
    }
}

/// A seeded SplitMix64 job-arrival process.
///
/// The first tenant always arrives at time zero (so a one-tenant spec
/// cannot be perturbed by the arrival seed); each later tenant arrives
/// one *gap* after the previous. With probability `burst_fraction` the
/// gap is zero — a burst, two jobs hitting the queue together — and
/// otherwise it is uniform in `[0, 2 * mean_gap_ns]`, so gaps average
/// `mean_gap_ns`. All draws come from [`FaultRng`] (SplitMix64) on its
/// own stream: deterministic, and independent of every fault stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ArrivalProcess {
    /// Mean inter-arrival gap, simulated ns.
    pub mean_gap_ns: Nanos,
    /// Probability in `[0, 1]` that a gap collapses to zero.
    pub burst_fraction: f64,
    /// Seed of the arrival stream.
    pub seed: u64,
}

impl ArrivalProcess {
    /// Every tenant arrives at time zero (the default).
    pub fn at_time_zero() -> ArrivalProcess {
        ArrivalProcess {
            mean_gap_ns: 0,
            burst_fraction: 0.0,
            seed: 0,
        }
    }

    /// Bursty arrivals: mean gap `mean_gap_ns`, a `burst_fraction`
    /// chance per gap of arriving together, from `seed`.
    pub fn bursty(mean_gap_ns: Nanos, burst_fraction: f64, seed: u64) -> ArrivalProcess {
        ArrivalProcess {
            mean_gap_ns,
            burst_fraction,
            seed,
        }
    }

    /// The arrival times of `n` tenants, non-decreasing, starting at 0.
    pub fn arrivals(&self, n: usize) -> Vec<Nanos> {
        let mut rng = FaultRng::new(self.seed).split(STREAM_ARRIVAL);
        let mut out = Vec::with_capacity(n);
        let mut t: Nanos = 0;
        for i in 0..n {
            if i > 0 {
                let gap = if rng.gen_bool(self.burst_fraction) {
                    0
                } else {
                    rng.gen_range(2 * self.mean_gap_ns + 1)
                };
                t += gap;
            }
            out.push(t);
        }
        out
    }
}

/// The generalized experiment: one system configuration and medium, a
/// *set* of tenants, an admission policy and an arrival process.
///
/// Built from [`ExperimentSpec::tenants`]; run with
/// [`TenancySpec::run`]:
///
/// ```
/// use oocnvm_core::config::SystemConfig;
/// use oocnvm_core::experiment::ExperimentSpec;
/// use oocnvm_core::tenancy::{TenantProfile, TenantSpec};
/// use nvmtypes::{NvmKind, MIB};
///
/// let report = ExperimentSpec::new(&SystemConfig::cnl_ufs(), NvmKind::Tlc)
///     .tenants(vec![
///         TenantSpec::new(TenantProfile::Eigensolve {
///             total_bytes: 8 * MIB,
///             record_size: MIB,
///         }),
///         TenantSpec::new(TenantProfile::KvLookup {
///             total_bytes: MIB,
///             value_size: 8192,
///         })
///         .weight(4),
///     ])
///     .run();
/// assert_eq!(report.tenants.len(), 2);
/// assert!(report.tenants[1].latency.p999 > 0);
/// ```
#[derive(Debug)]
pub struct TenancySpec<'t> {
    config: SystemConfig,
    kind: NvmKind,
    journaled_ufs: bool,
    tracer: Option<&'t mut Tracer>,
    tenants: Vec<TenantSpec>,
    policy: QosPolicy,
    arrivals: ArrivalProcess,
}

impl<'t> ExperimentSpec<'t> {
    /// Generalizes this spec to a set of tenants sharing the device.
    ///
    /// The spec's fault plan becomes the *first* tenant's plan (it
    /// described the one job the spec used to hold); further tenants
    /// carry their own plans. Tracer and journaled-UFS settings carry
    /// over unchanged.
    pub fn tenants(self, tenants: Vec<TenantSpec>) -> TenancySpec<'t> {
        let mut tenants = tenants;
        if let Some(first) = tenants.first_mut() {
            if !self.plan.is_none() && first.fault_plan.is_none() {
                first.fault_plan = self.plan;
            }
        }
        TenancySpec {
            config: self.config,
            kind: self.kind,
            journaled_ufs: self.journaled_ufs,
            tracer: self.tracer,
            tenants,
            policy: QosPolicy::unlimited(),
            arrivals: ArrivalProcess::at_time_zero(),
        }
    }
}

impl<'t> TenancySpec<'t> {
    /// Sets the admission-control policy (default: unlimited).
    #[must_use]
    pub fn policy(mut self, policy: QosPolicy) -> TenancySpec<'t> {
        self.policy = policy;
        self
    }

    /// Sets the arrival process (default: everyone at time zero).
    #[must_use]
    pub fn arrivals(mut self, arrivals: ArrivalProcess) -> TenancySpec<'t> {
        self.arrivals = arrivals;
        self
    }

    /// Runs the multi-tenant experiment: expands each tenant's profile
    /// to a POSIX trace, transforms it through the configuration's file
    /// system (or the real journaled UFS when the spec carries
    /// `journaled_ufs(true)`), and replays the set against one shared
    /// device under weighted fair queueing.
    ///
    /// # Panics
    /// Panics if the spec holds no tenants.
    pub fn run(self) -> TenancyReport {
        assert!(
            !self.tenants.is_empty(),
            "a tenancy needs at least one tenant"
        );
        let mut off = Tracer::off();
        let obs = match self.tracer {
            Some(t) => t,
            None => &mut off,
        };
        let arrivals = self.arrivals.arrivals(self.tenants.len());
        let workloads: Vec<TenantWorkload> = self
            .tenants
            .iter()
            .zip(&arrivals)
            .map(|(t, &arrival_ns)| {
                let posix = t.profile.posix_trace(t.seed);
                let block = if self.journaled_ufs {
                    oocfs::FileSystemModel::transform_observed(
                        &ufs::JournaledUfs::default(),
                        &posix,
                        obs,
                    )
                } else {
                    self.config.fs.transform_observed(&posix, obs)
                };
                let mut w = TenantWorkload::new(block);
                w.weight = t.weight;
                w.arrival_ns = arrival_ns;
                w.fault_plan = t.fault_plan;
                w
            })
            .collect();
        let device = self.config.device(self.kind);
        let shared = device.run_shared(&workloads, &self.policy, obs);
        let tenants = self
            .tenants
            .iter()
            .zip(&arrivals)
            .zip(shared.tenants)
            .map(|((spec, &arrival_ns), s)| TenantReport {
                tenant: s.tenant,
                profile: spec.profile.label(),
                weight: spec.weight,
                arrival_ns,
                admitted_ns: s.admitted_ns,
                finish_ns: s.finish_ns,
                requests: s.requests,
                bytes: s.bytes,
                latency: s.latency_hdr.percentiles(),
                latency_hdr: s.latency_hdr,
                attribution: s.attribution,
                media_busy_ns: s.media.busy_ns,
                media_ops: s.media.ops,
                media_bytes: s.media.bytes,
            })
            .collect();
        TenancyReport {
            fleet: report_from_run(self.config.label, self.kind, shared.fleet),
            tenants,
        }
    }
}

/// Runs a batch of tenancy specs on the thread pool, returning reports
/// in input order — byte-identical at any thread count because each
/// tenancy is an independent pure function of its spec (the same
/// contract as [`crate::experiment::run_batch`]).
///
/// Specs must be `'static` (untraced): a tracer is a single mutable
/// observation stream and cannot be shared across workers.
pub fn run_tenancy_batch(specs: Vec<TenancySpec<'static>>) -> Vec<TenancyReport> {
    use rayon::prelude::*;
    let plain: Vec<_> = specs
        .into_iter()
        .map(|s| {
            (
                s.config,
                s.kind,
                s.journaled_ufs,
                s.tenants,
                s.policy,
                s.arrivals,
            )
        })
        .collect();
    plain
        .into_par_iter()
        .map(|(config, kind, journaled, tenants, policy, arrivals)| {
            ExperimentSpec::new(&config, kind)
                .journaled_ufs(journaled)
                .tenants(tenants)
                .policy(policy)
                .arrivals(arrivals)
                .run()
        })
        .collect()
}

/// Per-tenant results of a [`TenancySpec::run`].
#[derive(Debug, Clone, Serialize)]
pub struct TenantReport {
    /// Tenant index in the spec's input order.
    pub tenant: u32,
    /// Profile label ([`TenantProfile::label`]).
    pub profile: &'static str,
    /// Fair-queueing weight the tenant ran with.
    pub weight: u64,
    /// When the tenant arrived (from the [`ArrivalProcess`]).
    pub arrival_ns: Nanos,
    /// When admission control let it in (>= arrival).
    pub admitted_ns: Nanos,
    /// Completion time of its last request.
    pub finish_ns: Nanos,
    /// Requests completed.
    pub requests: u64,
    /// Host bytes moved.
    pub bytes: u64,
    /// Tail-latency block: p50/p90/p99/p999/max over this tenant's
    /// requests alone.
    pub latency: HdrPercentiles,
    /// The full distribution behind [`TenantReport::latency`].
    pub latency_hdr: HdrHistogram,
    /// Exact per-layer latency attribution; tenants' `total_ns` sum to
    /// the fleet's.
    pub attribution: LatencyAttribution,
    /// Die-busy time attributed to this tenant by the media engine's
    /// arbitration tags.
    pub media_busy_ns: Nanos,
    /// Die operations the tenant consumed.
    pub media_ops: u64,
    /// Media bytes the tenant moved.
    pub media_bytes: u64,
}

/// Results of a multi-tenant run: the fleet-level rollup (same shape as
/// a single-job [`ExperimentReport`], over the union of the traffic)
/// plus the per-tenant blocks.
#[derive(Debug, Serialize)]
pub struct TenancyReport {
    /// Fleet-level report over all tenants' traffic.
    pub fleet: ExperimentReport,
    /// Per-tenant reports, in spec order.
    pub tenants: Vec<TenantReport>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmtypes::MIB;

    fn eigensolve(total: u64) -> TenantProfile {
        TenantProfile::Eigensolve {
            total_bytes: total,
            record_size: MIB,
        }
    }

    #[test]
    fn one_tenant_reproduces_the_single_job_report_byte_for_byte() {
        let cfg = SystemConfig::cnl_ufs();
        let trace = synthetic_ooc_trace(8 * MIB, MIB, 3);
        let single = ExperimentSpec::new(&cfg, NvmKind::Tlc).run(&trace);
        let tenancy = ExperimentSpec::new(&cfg, NvmKind::Tlc)
            .tenants(vec![TenantSpec::new(eigensolve(8 * MIB)).seed(3)])
            .run();
        // `{:?}` renders every field of every layer (including the full
        // HDR bucket array), so string equality is byte-identity.
        assert_eq!(format!("{single:?}"), format!("{:?}", tenancy.fleet));
        assert_eq!(tenancy.tenants.len(), 1);
        assert_eq!(tenancy.tenants[0].requests, single.run.requests);
        assert_eq!(tenancy.tenants[0].arrival_ns, 0);
    }

    #[test]
    fn one_tenant_with_faults_reproduces_the_faulted_report() {
        let cfg = SystemConfig::cnl_ufs();
        let plan = FaultPlan::moderate(42);
        let trace = synthetic_ooc_trace(8 * MIB, MIB, 3);
        let single = ExperimentSpec::new(&cfg, NvmKind::Tlc)
            .faults(plan)
            .run(&trace);
        let tenancy = ExperimentSpec::new(&cfg, NvmKind::Tlc)
            .faults(plan)
            .tenants(vec![TenantSpec::new(eigensolve(8 * MIB)).seed(3)])
            .run();
        assert_eq!(format!("{single:?}"), format!("{:?}", tenancy.fleet));
    }

    #[test]
    fn arrival_process_is_seeded_and_bursty() {
        let a = ArrivalProcess::bursty(1_000_000, 0.5, 9);
        let xs = a.arrivals(64);
        assert_eq!(xs[0], 0);
        assert!(xs.windows(2).all(|w| w[0] <= w[1]), "non-decreasing");
        assert_eq!(xs, a.arrivals(64), "deterministic per seed");
        assert_ne!(xs, ArrivalProcess::bursty(1_000_000, 0.5, 10).arrivals(64));
        // Bursts: some consecutive arrivals coincide; others don't.
        let zero_gaps = xs.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(zero_gaps > 8, "only {zero_gaps} bursts");
        assert!(zero_gaps < 56, "{zero_gaps} bursts of 63 gaps");
        // Degenerate process: everyone at zero.
        assert!(ArrivalProcess::at_time_zero()
            .arrivals(5)
            .iter()
            .all(|&t| t == 0));
    }

    #[test]
    fn mixed_profiles_report_attribution_that_sums() {
        let report = ExperimentSpec::new(&SystemConfig::cnl_ufs(), NvmKind::Tlc)
            .tenants(vec![
                TenantSpec::new(eigensolve(8 * MIB)),
                TenantSpec::new(TenantProfile::Checkpoint {
                    read_bytes: 4 * MIB,
                    ckpt_interval_bytes: 2 * MIB,
                    ckpt_bytes: MIB,
                    record_size: MIB,
                })
                .seed(1),
                TenantSpec::new(TenantProfile::KvLookup {
                    total_bytes: 2 * MIB,
                    value_size: 8192,
                })
                .seed(2)
                .weight(4),
            ])
            .arrivals(ArrivalProcess::bursty(500_000, 0.25, 7))
            .run();
        assert_eq!(report.tenants.len(), 3);
        let total: Nanos = report.tenants.iter().map(|t| t.attribution.total_ns).sum();
        assert_eq!(total, report.fleet.run.attribution.total_ns);
        let reqs: u64 = report.tenants.iter().map(|t| t.requests).sum();
        assert_eq!(reqs, report.fleet.run.requests);
        assert_eq!(report.tenants[2].profile, "kv-lookup");
        for t in &report.tenants {
            assert!(t.media_ops > 0, "tenant {} has no die time", t.tenant);
            assert!(t.latency.p50 <= t.latency.p99 && t.latency.p99 <= t.latency.p999);
        }
    }

    #[test]
    fn journaled_ufs_carries_over_to_every_tenant() {
        let model = ExperimentSpec::new(&SystemConfig::cnl_ufs(), NvmKind::Tlc)
            .tenants(vec![TenantSpec::new(eigensolve(4 * MIB))])
            .run();
        let real = ExperimentSpec::new(&SystemConfig::cnl_ufs(), NvmKind::Tlc)
            .journaled_ufs(true)
            .tenants(vec![TenantSpec::new(eigensolve(4 * MIB))])
            .run();
        assert!(
            real.fleet.run.total_bytes > model.fleet.run.total_bytes,
            "journaled {} vs model {}",
            real.fleet.run.total_bytes,
            model.fleet.run.total_bytes
        );
    }

    #[test]
    #[should_panic(expected = "at least one tenant")]
    fn empty_tenancy_is_rejected() {
        let _ = ExperimentSpec::new(&SystemConfig::cnl_ufs(), NvmKind::Tlc)
            .tenants(vec![])
            .run();
    }
}
