//! Fixed-width table rendering for the figure/table regeneration binaries.

/// A simple fixed-width table builder.
#[derive(Debug, Default, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Table {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with right-aligned numeric-looking cells and a rule under
    /// the header.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let numeric = c
                    .chars()
                    .next()
                    .is_some_and(|ch| ch.is_ascii_digit() || ch == '-');
                if numeric && i > 0 {
                    line.push_str(&format!("{:>width$}", c, width = widths[i]));
                } else {
                    line.push_str(&format!("{:<width$}", c, width = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percent cell.
pub fn pct(v: f64) -> String {
    format!("{:.1}", v * 100.0)
}

/// Formats an MB/s figure.
pub fn mbps(v: f64) -> String {
    format!("{v:.0}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "bw"]);
        t.row(["short", "1"]);
        t.row(["a-much-longer-name", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width for the numeric column alignment.
        assert!(lines[2].ends_with("    1"));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn helpers_format() {
        assert_eq!(pct(0.1234), "12.3");
        assert_eq!(mbps(3141.6), "3142");
    }
}
