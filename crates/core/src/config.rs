//! Table 2: the evaluated system configurations.

use flashsim::MediaConfig;
use interconnect::{
    infiniband_qdr_4x, pcie, sata_6g_bridge, Link, LinkChain, NvmBusSpeed, PcieGen,
};
use nvmtypes::NvmKind;
use oocfs::FsKind;
use serde::Serialize;
use ssd::{FtlMode, SsdConfig, SsdDevice};

/// Where the SSD lives relative to the computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Location {
    /// On the I/O nodes, reached over the cluster fabric (the prior-work
    /// baseline of Figure 2a).
    IonRemote,
    /// In the compute node, on its PCIe root complex (the paper's
    /// proposal, Figure 2b).
    ComputeLocal,
}

/// SSD internal controller architecture (Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Controller {
    /// SATA-era NAND controllers behind a PCIe endpoint: every request
    /// crosses a SATA-6G hop with 8b/10b framing (Figure 5a).
    Bridged,
    /// NAND controllers as native PCIe endpoints behind a switch
    /// (Figure 5b).
    Native,
}

/// One row of Table 2.
///
/// ```
/// use nvmtypes::{NvmKind, MIB};
/// use oocnvm_core::config::SystemConfig;
/// use oocnvm_core::experiment::ExperimentSpec;
/// use oocnvm_core::workload::synthetic_ooc_trace;
///
/// let trace = synthetic_ooc_trace(16 * MIB, 4 * MIB, 1);
/// let ion = ExperimentSpec::new(&SystemConfig::ion_gpfs(), NvmKind::Slc).run(&trace);
/// let cnl = ExperimentSpec::new(&SystemConfig::cnl_ufs(), NvmKind::Slc).run(&trace);
/// assert!(cnl.bandwidth_mb_s > ion.bandwidth_mb_s);
/// ```
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SystemConfig {
    /// Row label as the figures print it (e.g. `"CNL-NATIVE-16"`).
    pub label: &'static str,
    /// Storage location.
    pub location: Location,
    /// File system mutating the application's requests.
    pub fs: FsKind,
    /// Controller architecture.
    pub controller: Controller,
    /// PCIe generation of the host interface.
    pub pcie_gen: PcieGen,
    /// PCIe lanes.
    pub lanes: u32,
    /// NVM channel-bus speed.
    pub bus: NvmBusSpeed,
}

impl SystemConfig {
    /// The ION-remote GPFS baseline (bridged PCIe 2.0 x8, ONFi-3).
    pub fn ion_gpfs() -> SystemConfig {
        SystemConfig {
            label: "ION-GPFS",
            location: Location::IonRemote,
            fs: FsKind::IonGpfs,
            controller: Controller::Bridged,
            pcie_gen: PcieGen::Gen2,
            lanes: 8,
            bus: NvmBusSpeed::Sdr400,
        }
    }

    /// A compute-local configuration with a traditional file system on the
    /// base hardware (bridged PCIe 2.0 x8, ONFi-3).
    pub fn cnl(fs: FsKind) -> SystemConfig {
        assert!(!fs.is_ion(), "use ion_gpfs() for the ION configuration");
        SystemConfig {
            label: fs.label(),
            location: Location::ComputeLocal,
            fs,
            controller: Controller::Bridged,
            pcie_gen: PcieGen::Gen2,
            lanes: 8,
            bus: NvmBusSpeed::Sdr400,
        }
    }

    /// CNL-UFS: the paper's software fix on today's hardware.
    pub fn cnl_ufs() -> SystemConfig {
        SystemConfig::cnl(FsKind::Ufs)
    }

    /// CNL-BRIDGE-16: UFS with 16 PCIe-2.0 lanes, still bridged —
    /// demonstrating that lane count alone barely helps (§4.4).
    pub fn cnl_bridge16() -> SystemConfig {
        SystemConfig {
            label: "CNL-BRIDGE-16",
            lanes: 16,
            ..SystemConfig::cnl_ufs()
        }
    }

    /// CNL-NATIVE-8: UFS on a native PCIe-3.0 x8 controller with the
    /// DDR-800 NVM bus.
    pub fn cnl_native8() -> SystemConfig {
        SystemConfig {
            label: "CNL-NATIVE-8",
            controller: Controller::Native,
            pcie_gen: PcieGen::Gen3,
            lanes: 8,
            bus: NvmBusSpeed::Ddr800,
            ..SystemConfig::cnl_ufs()
        }
    }

    /// CNL-NATIVE-16: the full future stack — native PCIe 3.0 x16,
    /// DDR-800 NVM bus, UFS.
    pub fn cnl_native16() -> SystemConfig {
        SystemConfig {
            label: "CNL-NATIVE-16",
            lanes: 16,
            ..SystemConfig::cnl_native8()
        }
    }

    /// All thirteen rows of Table 2, in the paper's order.
    pub fn table2() -> Vec<SystemConfig> {
        let mut rows = vec![SystemConfig::ion_gpfs()];
        for fs in [
            FsKind::Jfs,
            FsKind::Btrfs,
            FsKind::Xfs,
            FsKind::ReiserFs,
            FsKind::Ext2,
            FsKind::Ext3,
            FsKind::Ext4,
            FsKind::Ext4L,
            FsKind::Ufs,
        ] {
            rows.push(SystemConfig::cnl(fs));
        }
        rows.push(SystemConfig::cnl_bridge16());
        rows.push(SystemConfig::cnl_native8());
        rows.push(SystemConfig::cnl_native16());
        rows
    }

    /// The ten configurations of Figure 7 (file-system study).
    pub fn figure7() -> Vec<SystemConfig> {
        SystemConfig::table2().into_iter().take(10).collect()
    }

    /// The four configurations of Figure 8 (device study).
    pub fn figure8() -> Vec<SystemConfig> {
        vec![
            SystemConfig::cnl_ufs(),
            SystemConfig::cnl_bridge16(),
            SystemConfig::cnl_native8(),
            SystemConfig::cnl_native16(),
        ]
    }

    /// The host-side data path of this configuration.
    pub fn host_chain(&self) -> LinkChain {
        let mut chain = LinkChain::default();
        if self.controller == Controller::Bridged {
            // Eight internal SATA-era controllers behind the endpoint.
            chain = chain.then(sata_6g_bridge(8));
        }
        chain = chain.then(pcie(self.pcie_gen, self.lanes));
        if self.location == Location::IonRemote {
            // The cluster fabric plus the parallel-file-system
            // client/server software path (NSD protocol, kernel copies).
            chain = chain.then(infiniband_qdr_4x());
            chain = chain.then(Link::from_mb_s("GPFS-NSD", 1750.0, 5_000));
        }
        chain
    }

    /// Concrete simulator configuration for a given NVM medium.
    pub fn device(&self, kind: NvmKind) -> SsdDevice {
        self.device_with_faults(kind, nvmtypes::FaultPlan::none())
    }

    /// Like [`SystemConfig::device`], but with a fault plan installed.
    /// `FaultPlan::none()` produces a device byte-identical to
    /// [`SystemConfig::device`].
    pub fn device_with_faults(&self, kind: NvmKind, plan: nvmtypes::FaultPlan) -> SsdDevice {
        let media = MediaConfig::paper(kind, self.bus.timing());
        let ftl = if self.fs == FsKind::Ufs {
            FtlMode::ufs_default()
        } else {
            FtlMode::traditional_default()
        };
        let cfg = SsdConfig::new(media, self.host_chain())
            .with_ftl(ftl)
            .with_fault_plan(plan);
        SsdDevice::new(cfg)
    }

    /// Table-2 style row text.
    pub fn table2_row(&self) -> String {
        format!(
            "{:<14} {:<8} {:>4}/{:<10} {:>2}",
            self.label,
            match self.controller {
                Controller::Bridged => "Bridged",
                Controller::Native => "Native",
            },
            match self.pcie_gen {
                PcieGen::Gen2 => "2.0",
                PcieGen::Gen3 => "3.0",
                PcieGen::Gen4 => "4.0",
            },
            self.bus.label(),
            self.lanes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_thirteen_rows() {
        let rows = SystemConfig::table2();
        assert_eq!(rows.len(), 13);
        assert_eq!(rows[0].label, "ION-GPFS");
        assert_eq!(rows[12].label, "CNL-NATIVE-16");
    }

    #[test]
    fn figure_subsets() {
        assert_eq!(SystemConfig::figure7().len(), 10);
        let f8: Vec<_> = SystemConfig::figure8().iter().map(|c| c.label).collect();
        assert_eq!(
            f8,
            ["CNL-UFS", "CNL-BRIDGE-16", "CNL-NATIVE-8", "CNL-NATIVE-16"]
        );
    }

    #[test]
    fn host_chains_have_expected_bottlenecks() {
        // Base CNL: PCIe 2.0 x8 (4 GB/s) under the 4.8 GB/s bridge.
        let base = SystemConfig::cnl_ufs().host_chain().effective();
        assert!((base.bytes_per_ns - 4.0).abs() < 1e-9);
        // BRIDGE-16 doubles lanes: now the SATA bridge aggregate binds.
        let b16 = SystemConfig::cnl_bridge16().host_chain().effective();
        assert!((b16.bytes_per_ns - 4.8).abs() < 1e-9);
        // NATIVE-16 runs at PCIe 3.0 x16.
        let n16 = SystemConfig::cnl_native16().host_chain().effective();
        assert!(n16.bytes_per_ns > 15.0);
        // ION is capped by the GPFS/NSD software path.
        let ion = SystemConfig::ion_gpfs().host_chain().effective();
        assert!(ion.bytes_per_ns < 1.8);
    }

    #[test]
    fn ufs_rows_use_ufs_translation() {
        for cfg in SystemConfig::figure8() {
            assert!(matches!(
                cfg.device(NvmKind::Tlc).config().ftl,
                FtlMode::Ufs { .. }
            ));
        }
        let ext4 = SystemConfig::cnl(FsKind::Ext4);
        assert!(matches!(
            ext4.device(NvmKind::Tlc).config().ftl,
            FtlMode::Traditional { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "ion_gpfs")]
    fn cnl_rejects_gpfs() {
        SystemConfig::cnl(FsKind::IonGpfs);
    }

    #[test]
    fn table2_rows_render() {
        for cfg in SystemConfig::table2() {
            let row = cfg.table2_row();
            assert!(row.contains(cfg.label));
        }
    }
}
