//! The experiment driver: configuration × medium × workload → report.

use crate::config::SystemConfig;
use nvmtypes::NvmKind;
use ooctrace::PosixTrace;
use rayon::prelude::*;
use serde::Serialize;
use ssd::RunReport;

/// Result of running one workload on one configuration with one medium.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ExperimentReport {
    /// Configuration label (Figure x-axis).
    pub label: &'static str,
    /// NVM medium.
    pub kind: NvmKind,
    /// End-to-end bandwidth, MB/s (Figures 7a/8a).
    pub bandwidth_mb_s: f64,
    /// Bandwidth remaining in the media, MB/s (Figures 7b/8b).
    pub remaining_mb_s: f64,
    /// Channel-level utilization, `[0, 1]` (Figure 9a).
    pub channel_util: f64,
    /// Package-level utilization, `[0, 1]` (Figure 9b).
    pub package_util: f64,
    /// Execution-state breakdown percentages in Figure-10 legend order.
    pub breakdown_pct: [f64; 6],
    /// PAL1..PAL4 percentages (Figures 10b/10d).
    pub pal_pct: [f64; 4],
    /// Full device report for deeper digging.
    pub run: RunReport,
}

/// One experiment, fully specified: a system configuration, an NVM
/// medium, an optional fault plan, and an optional tracer.
///
/// This is the single entry point the old
/// `run_experiment` / `run_experiment_with_faults` /
/// `run_experiment_observed` triplet collapsed into:
///
/// ```
/// use oocnvm_core::config::SystemConfig;
/// use oocnvm_core::experiment::ExperimentSpec;
/// use oocnvm_core::workload::synthetic_ooc_trace;
/// use nvmtypes::{FaultPlan, NvmKind, MIB};
///
/// let trace = synthetic_ooc_trace(8 * MIB, MIB, 3);
/// let mut obs = simobs::Tracer::off();
/// let report = ExperimentSpec::new(&SystemConfig::cnl_ufs(), NvmKind::Tlc)
///     .faults(FaultPlan::light(42))
///     .tracer(&mut obs)
///     .run(&trace);
/// assert!(report.bandwidth_mb_s > 0.0);
/// ```
///
/// Every stage is optional except the configuration and medium: without
/// [`ExperimentSpec::faults`] the plan is [`nvmtypes::FaultPlan::none`]
/// (byte-identical to the fault-free driver), without
/// [`ExperimentSpec::tracer`] the run is untraced (byte-identical to a
/// traced run — the tracer only observes).
#[derive(Debug)]
pub struct ExperimentSpec<'t> {
    pub(crate) config: SystemConfig,
    pub(crate) kind: NvmKind,
    pub(crate) plan: nvmtypes::FaultPlan,
    pub(crate) tracer: Option<&'t mut simobs::Tracer>,
    pub(crate) journaled_ufs: bool,
}

impl ExperimentSpec<'static> {
    /// A fault-free, untraced experiment on `config` with `kind` media.
    pub fn new(config: &SystemConfig, kind: NvmKind) -> ExperimentSpec<'static> {
        ExperimentSpec {
            config: *config,
            kind,
            plan: nvmtypes::FaultPlan::none(),
            tracer: None,
            journaled_ufs: false,
        }
    }
}

impl<'t> ExperimentSpec<'t> {
    /// Injects deterministic faults from `plan`.
    #[must_use]
    pub fn faults(mut self, plan: nvmtypes::FaultPlan) -> ExperimentSpec<'t> {
        self.plan = plan;
        self
    }

    /// Routes the POSIX trace through the *real* journaled UFS
    /// ([`ufs::JournaledUfs`]) instead of the configuration's
    /// parameterised file-system model: the block trace the device then
    /// replays is what an actual mounted filesystem issued — journal
    /// commits, in-place applies and copy-on-write data placement
    /// included. Off by default; the legacy model path is untouched and
    /// byte-identical with the flag off.
    #[must_use]
    pub fn journaled_ufs(mut self, on: bool) -> ExperimentSpec<'t> {
        self.journaled_ufs = on;
        self
    }

    /// Attaches a tracer; every layer reports spans/metrics through it.
    /// Tracing is observation-only — the report stays byte-identical.
    ///
    /// A traced spec borrows the tracer mutably and therefore cannot
    /// enter [`run_batch`] (whose specs must be `'static`): parallel
    /// workers share nothing, so tracing stays single-threaded by
    /// construction.
    #[must_use]
    pub fn tracer<'u>(self, obs: &'u mut simobs::Tracer) -> ExperimentSpec<'u> {
        ExperimentSpec {
            config: self.config,
            kind: self.kind,
            plan: self.plan,
            tracer: Some(obs),
            journaled_ufs: self.journaled_ufs,
        }
    }

    /// Runs the experiment against the application's POSIX trace: mutates
    /// the trace through the configuration's file system, then replays the
    /// block trace on the configured device.
    pub fn run(self, posix: &PosixTrace) -> ExperimentReport {
        let mut off = simobs::Tracer::off();
        let obs = match self.tracer {
            Some(t) => t,
            None => &mut off,
        };
        let block = if self.journaled_ufs {
            oocfs::FileSystemModel::transform_observed(&ufs::JournaledUfs::default(), posix, obs)
        } else {
            self.config.fs.transform_observed(posix, obs)
        };
        let device = self.config.device_with_faults(self.kind, self.plan);
        let run = device.run_observed(&block, obs);
        report_from_run(self.config.label, self.kind, run)
    }
}

/// Wraps a device-level [`RunReport`] into the figure-facing
/// [`ExperimentReport`] rollup — the one place the projection is
/// defined, shared by the single-job path above and the multi-tenant
/// fleet report in [`crate::tenancy`].
pub(crate) fn report_from_run(
    label: &'static str,
    kind: NvmKind,
    run: RunReport,
) -> ExperimentReport {
    ExperimentReport {
        label,
        kind,
        bandwidth_mb_s: run.bandwidth_mb_s,
        remaining_mb_s: run.media.remaining_mb_s,
        channel_util: run.media.channel_util,
        package_util: run.media.package_util,
        breakdown_pct: run.media.breakdown.percent(),
        pal_pct: run.pal.percent(),
        run,
    }
}

/// Runs `config` with `kind` media against the application's POSIX
/// trace. Thin wrapper over [`ExperimentSpec`], kept so out-of-tree
/// call sites keep compiling; everything in-tree uses the builder.
#[deprecated(note = "use ExperimentSpec::new(config, kind).run(posix)")]
pub fn run_experiment(
    config: &SystemConfig,
    kind: NvmKind,
    posix: &PosixTrace,
) -> ExperimentReport {
    ExperimentSpec::new(config, kind).run(posix)
}

/// Like [`run_experiment`], but injecting deterministic faults from
/// `plan`. `FaultPlan::none()` reproduces [`run_experiment`] exactly,
/// byte for byte. Thin wrapper over [`ExperimentSpec`].
#[deprecated(note = "use ExperimentSpec::new(config, kind).faults(plan).run(posix)")]
pub fn run_experiment_with_faults(
    config: &SystemConfig,
    kind: NvmKind,
    posix: &PosixTrace,
    plan: nvmtypes::FaultPlan,
) -> ExperimentReport {
    ExperimentSpec::new(config, kind).faults(plan).run(posix)
}

/// The fully observed experiment pipeline: the file-system transform,
/// every device layer and the run summary report through one tracer.
/// With [`simobs::Tracer::off`] this *is* [`run_experiment_with_faults`]
/// — the tracer only reads values each layer has already computed, so
/// the report is byte-identical whichever sink is attached. Thin wrapper
/// over [`ExperimentSpec`].
#[deprecated(note = "use ExperimentSpec::new(config, kind).faults(plan).tracer(obs).run(posix)")]
pub fn run_experiment_observed(
    config: &SystemConfig,
    kind: NvmKind,
    posix: &PosixTrace,
    plan: nvmtypes::FaultPlan,
    obs: &mut simobs::Tracer,
) -> ExperimentReport {
    ExperimentSpec::new(config, kind)
        .faults(plan)
        .tracer(obs)
        .run(posix)
}

/// Runs a batch of experiment specs against one POSIX trace on the
/// thread pool, returning reports in the specs' input order — the batch
/// is byte-identical at any thread count because every experiment is an
/// independent pure function of its spec.
///
/// Specs must be `'static` (untraced): a tracer is a single mutable
/// observation stream and cannot be shared across workers.
pub fn run_batch(specs: Vec<ExperimentSpec<'static>>, posix: &PosixTrace) -> Vec<ExperimentReport> {
    let plain: Vec<(SystemConfig, NvmKind, nvmtypes::FaultPlan, bool)> = specs
        .into_iter()
        .map(|s| (s.config, s.kind, s.plan, s.journaled_ufs))
        .collect();
    plain
        .into_par_iter()
        .map(|(c, k, p, j)| {
            ExperimentSpec::new(&c, k)
                .faults(p)
                .journaled_ufs(j)
                .run(posix)
        })
        .collect()
}

/// Runs every `(config, kind)` pair in parallel on the thread pool;
/// results are in `configs`-major order regardless of thread count.
/// Thin wrapper over [`run_batch`], kept for out-of-tree callers.
#[deprecated(note = "build the ExperimentSpec list and call run_batch(specs, posix)")]
pub fn run_sweep(
    configs: &[SystemConfig],
    kinds: &[NvmKind],
    posix: &PosixTrace,
) -> Vec<ExperimentReport> {
    let specs: Vec<ExperimentSpec<'static>> = configs
        .iter()
        .flat_map(|c| kinds.iter().map(|&k| ExperimentSpec::new(c, k)))
        .collect();
    run_batch(specs, posix)
}

/// Looks a report up by label and medium.
pub fn find<'a>(
    reports: &'a [ExperimentReport],
    label: &str,
    kind: NvmKind,
) -> Option<&'a ExperimentReport> {
    reports.iter().find(|r| r.label == label && r.kind == kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::synthetic_ooc_trace;
    use nvmtypes::MIB;

    #[test]
    fn single_experiment_produces_sane_numbers() {
        let trace = synthetic_ooc_trace(16 * MIB, 2 * MIB, 3);
        let rep = ExperimentSpec::new(&SystemConfig::cnl_ufs(), NvmKind::Tlc).run(&trace);
        assert!(rep.bandwidth_mb_s > 100.0);
        assert!(rep.channel_util > 0.0 && rep.channel_util <= 1.0);
        assert!((rep.breakdown_pct.iter().sum::<f64>() - 100.0).abs() < 1e-6);
        assert!((rep.pal_pct.iter().sum::<f64>() - 100.0).abs() < 1e-6);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_reproduce_the_builder() {
        let trace = synthetic_ooc_trace(8 * MIB, MIB, 3);
        let cfg = SystemConfig::cnl_ufs();
        let built = ExperimentSpec::new(&cfg, NvmKind::Tlc).run(&trace);
        let legacy = run_experiment(&cfg, NvmKind::Tlc, &trace);
        assert_eq!(
            built.bandwidth_mb_s.to_bits(),
            legacy.bandwidth_mb_s.to_bits()
        );
        let plan = nvmtypes::FaultPlan::light(42);
        let built = ExperimentSpec::new(&cfg, NvmKind::Tlc)
            .faults(plan)
            .run(&trace);
        let legacy = run_experiment_with_faults(&cfg, NvmKind::Tlc, &trace, plan);
        assert_eq!(
            built.bandwidth_mb_s.to_bits(),
            legacy.bandwidth_mb_s.to_bits()
        );
        let swept = run_sweep(&[cfg], &[NvmKind::Tlc], &trace);
        let built = ExperimentSpec::new(&cfg, NvmKind::Tlc).run(&trace);
        assert_eq!(
            swept[0].bandwidth_mb_s.to_bits(),
            built.bandwidth_mb_s.to_bits()
        );
    }

    #[test]
    fn sweep_covers_all_pairs_in_order() {
        let trace = synthetic_ooc_trace(8 * MIB, MIB, 3);
        let configs = [SystemConfig::cnl_ufs(), SystemConfig::cnl_native16()];
        let kinds = [NvmKind::Slc, NvmKind::Pcm];
        let specs = configs
            .iter()
            .flat_map(|c| kinds.iter().map(|&k| ExperimentSpec::new(c, k)))
            .collect();
        let reports = run_batch(specs, &trace);
        assert_eq!(reports.len(), 4);
        assert_eq!(reports[0].label, "CNL-UFS");
        assert_eq!(reports[0].kind, NvmKind::Slc);
        assert_eq!(reports[3].label, "CNL-NATIVE-16");
        assert_eq!(reports[3].kind, NvmKind::Pcm);
        assert!(find(&reports, "CNL-UFS", NvmKind::Pcm).is_some());
        assert!(find(&reports, "missing", NvmKind::Pcm).is_none());
    }

    #[test]
    fn journaled_ufs_flag_off_is_byte_identical_to_legacy() {
        let trace = synthetic_ooc_trace(8 * MIB, MIB, 3);
        let legacy = ExperimentSpec::new(&SystemConfig::cnl_ufs(), NvmKind::Tlc).run(&trace);
        let off = ExperimentSpec::new(&SystemConfig::cnl_ufs(), NvmKind::Tlc)
            .journaled_ufs(false)
            .run(&trace);
        assert_eq!(
            legacy.bandwidth_mb_s.to_bits(),
            off.bandwidth_mb_s.to_bits()
        );
        assert_eq!(
            legacy.remaining_mb_s.to_bits(),
            off.remaining_mb_s.to_bits()
        );
        assert_eq!(legacy.run.total_bytes, off.run.total_bytes);
    }

    #[test]
    fn journaled_ufs_flag_replays_through_the_real_filesystem() {
        let trace = synthetic_ooc_trace(8 * MIB, MIB, 2);
        let on = ExperimentSpec::new(&SystemConfig::cnl_ufs(), NvmKind::Tlc)
            .journaled_ufs(true)
            .run(&trace);
        let off = ExperimentSpec::new(&SystemConfig::cnl_ufs(), NvmKind::Tlc).run(&trace);
        assert!(on.bandwidth_mb_s > 0.0);
        // The journaled path moves more bytes than the model: journal
        // records, the commit mark, applies and checkpoints ride along.
        assert!(
            on.run.total_bytes > off.run.total_bytes,
            "journaled {} vs model {}",
            on.run.total_bytes,
            off.run.total_bytes
        );
        // Deterministic: re-running the flagged spec reproduces the report.
        let again = ExperimentSpec::new(&SystemConfig::cnl_ufs(), NvmKind::Tlc)
            .journaled_ufs(true)
            .run(&trace);
        assert_eq!(on.bandwidth_mb_s.to_bits(), again.bandwidth_mb_s.to_bits());
    }

    #[test]
    fn cnl_beats_ion_on_the_same_workload() {
        // The paper's headline direction, at reduced scale.
        let trace = synthetic_ooc_trace(24 * MIB, 2 * MIB, 9);
        let ion = ExperimentSpec::new(&SystemConfig::ion_gpfs(), NvmKind::Slc).run(&trace);
        let cnl = ExperimentSpec::new(&SystemConfig::cnl_ufs(), NvmKind::Slc).run(&trace);
        assert!(
            cnl.bandwidth_mb_s > ion.bandwidth_mb_s,
            "cnl {} vs ion {}",
            cnl.bandwidth_mb_s,
            ion.bandwidth_mb_s
        );
    }
}
