//! The experiment driver: configuration × medium × workload → report.

use crate::config::SystemConfig;
use nvmtypes::NvmKind;
use ooctrace::PosixTrace;
use rayon::prelude::*;
use serde::Serialize;
use ssd::RunReport;

/// Result of running one workload on one configuration with one medium.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentReport {
    /// Configuration label (Figure x-axis).
    pub label: &'static str,
    /// NVM medium.
    pub kind: NvmKind,
    /// End-to-end bandwidth, MB/s (Figures 7a/8a).
    pub bandwidth_mb_s: f64,
    /// Bandwidth remaining in the media, MB/s (Figures 7b/8b).
    pub remaining_mb_s: f64,
    /// Channel-level utilization, `[0, 1]` (Figure 9a).
    pub channel_util: f64,
    /// Package-level utilization, `[0, 1]` (Figure 9b).
    pub package_util: f64,
    /// Execution-state breakdown percentages in Figure-10 legend order.
    pub breakdown_pct: [f64; 6],
    /// PAL1..PAL4 percentages (Figures 10b/10d).
    pub pal_pct: [f64; 4],
    /// Full device report for deeper digging.
    pub run: RunReport,
}

/// Runs `config` with `kind` media against the application's POSIX trace:
/// mutates the trace through the configuration's file system, then replays
/// the block trace on the configured device.
pub fn run_experiment(
    config: &SystemConfig,
    kind: NvmKind,
    posix: &PosixTrace,
) -> ExperimentReport {
    run_experiment_with_faults(config, kind, posix, nvmtypes::FaultPlan::none())
}

/// Like [`run_experiment`], but injecting deterministic faults from
/// `plan`. `FaultPlan::none()` reproduces [`run_experiment`] exactly,
/// byte for byte.
pub fn run_experiment_with_faults(
    config: &SystemConfig,
    kind: NvmKind,
    posix: &PosixTrace,
    plan: nvmtypes::FaultPlan,
) -> ExperimentReport {
    run_experiment_observed(config, kind, posix, plan, &mut simobs::Tracer::off())
}

/// The fully observed experiment pipeline: the file-system transform,
/// every device layer and the run summary report through one tracer.
/// With [`simobs::Tracer::off`] this *is* [`run_experiment_with_faults`]
/// — the tracer only reads values each layer has already computed, so
/// the report is byte-identical whichever sink is attached.
pub fn run_experiment_observed(
    config: &SystemConfig,
    kind: NvmKind,
    posix: &PosixTrace,
    plan: nvmtypes::FaultPlan,
    obs: &mut simobs::Tracer,
) -> ExperimentReport {
    let block = config.fs.transform_observed(posix, obs);
    let device = config.device_with_faults(kind, plan);
    let run = device.run_observed(&block, obs);
    ExperimentReport {
        label: config.label,
        kind,
        bandwidth_mb_s: run.bandwidth_mb_s,
        remaining_mb_s: run.media.remaining_mb_s,
        channel_util: run.media.channel_util,
        package_util: run.media.package_util,
        breakdown_pct: run.media.breakdown.percent(),
        pal_pct: run.pal.percent(),
        run,
    }
}

/// Runs every `(config, kind)` pair in parallel with rayon; results are in
/// `configs`-major order.
pub fn run_sweep(
    configs: &[SystemConfig],
    kinds: &[NvmKind],
    posix: &PosixTrace,
) -> Vec<ExperimentReport> {
    let pairs: Vec<(SystemConfig, NvmKind)> = configs
        .iter()
        .flat_map(|c| kinds.iter().map(move |&k| (*c, k)))
        .collect();
    pairs
        .into_par_iter()
        .map(|(c, k)| run_experiment(&c, k, posix))
        .collect()
}

/// Looks a report up by label and medium.
pub fn find<'a>(
    reports: &'a [ExperimentReport],
    label: &str,
    kind: NvmKind,
) -> Option<&'a ExperimentReport> {
    reports.iter().find(|r| r.label == label && r.kind == kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::synthetic_ooc_trace;
    use nvmtypes::MIB;

    #[test]
    fn single_experiment_produces_sane_numbers() {
        let trace = synthetic_ooc_trace(16 * MIB, 2 * MIB, 3);
        let rep = run_experiment(&SystemConfig::cnl_ufs(), NvmKind::Tlc, &trace);
        assert!(rep.bandwidth_mb_s > 100.0);
        assert!(rep.channel_util > 0.0 && rep.channel_util <= 1.0);
        assert!((rep.breakdown_pct.iter().sum::<f64>() - 100.0).abs() < 1e-6);
        assert!((rep.pal_pct.iter().sum::<f64>() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn sweep_covers_all_pairs_in_order() {
        let trace = synthetic_ooc_trace(8 * MIB, MIB, 3);
        let configs = [SystemConfig::cnl_ufs(), SystemConfig::cnl_native16()];
        let kinds = [NvmKind::Slc, NvmKind::Pcm];
        let reports = run_sweep(&configs, &kinds, &trace);
        assert_eq!(reports.len(), 4);
        assert_eq!(reports[0].label, "CNL-UFS");
        assert_eq!(reports[0].kind, NvmKind::Slc);
        assert_eq!(reports[3].label, "CNL-NATIVE-16");
        assert_eq!(reports[3].kind, NvmKind::Pcm);
        assert!(find(&reports, "CNL-UFS", NvmKind::Pcm).is_some());
        assert!(find(&reports, "missing", NvmKind::Pcm).is_none());
    }

    #[test]
    fn cnl_beats_ion_on_the_same_workload() {
        // The paper's headline direction, at reduced scale.
        let trace = synthetic_ooc_trace(24 * MIB, 2 * MIB, 9);
        let ion = run_experiment(&SystemConfig::ion_gpfs(), NvmKind::Slc, &trace);
        let cnl = run_experiment(&SystemConfig::cnl_ufs(), NvmKind::Slc, &trace);
        assert!(
            cnl.bandwidth_mb_s > ion.bandwidth_mb_s,
            "cnl {} vs ion {}",
            cnl.bandwidth_mb_s,
            ion.bandwidth_mb_s
        );
    }
}
