//! PCI Express link models.
//!
//! The paper's second device-level observation (§3.3): PCIe 2.0 runs at
//! 5 GT/s per lane with the same 8b/10b encoding as SATA — a needless 20%
//! line overhead — while PCIe 3.0 runs 8 GT/s per lane with 128b/130b
//! encoding (~1.5% overhead). Typical contemporary PCIe SSDs used only 4–8
//! of the 16 available lanes.

use crate::link::Link;
use serde::{Deserialize, Serialize};

/// PCIe generation (encoding + per-lane signalling rate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PcieGen {
    /// PCIe 2.0: 5 GT/s per lane, 8b/10b encoding.
    Gen2,
    /// PCIe 3.0: 8 GT/s per lane, 128b/130b encoding.
    Gen3,
    /// PCIe 4.0: 16 GT/s per lane, 128b/130b encoding (a further-future
    /// what-if beyond the paper's horizon).
    Gen4,
}

impl PcieGen {
    /// Raw signalling rate per lane in gigatransfers (bits) per second.
    pub fn gt_per_s(self) -> f64 {
        match self {
            PcieGen::Gen2 => 5.0,
            PcieGen::Gen3 => 8.0,
            PcieGen::Gen4 => 16.0,
        }
    }

    /// Encoding efficiency: payload bits per line bit.
    pub fn encoding_efficiency(self) -> f64 {
        match self {
            PcieGen::Gen2 => 8.0 / 10.0,
            PcieGen::Gen3 | PcieGen::Gen4 => 128.0 / 130.0,
        }
    }

    /// Effective payload bytes per nanosecond per lane.
    pub fn lane_bytes_per_ns(self) -> f64 {
        // GT/s are bits; /8 for bytes; 1 Gb/s == 0.125 B/ns.
        self.gt_per_s() * self.encoding_efficiency() / 8.0
    }

    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            PcieGen::Gen2 => "PCIe2.0",
            PcieGen::Gen3 => "PCIe3.0",
            PcieGen::Gen4 => "PCIe4.0",
        }
    }
}

/// Builds a PCIe link of `lanes` lanes.
///
/// Per-request cost covers DMA descriptor setup and completion signalling;
/// it is the same for both generations (the paper treats re-encoding
/// *computation* time as marginal and focuses on bandwidth).
pub fn pcie(gen: PcieGen, lanes: u32) -> Link {
    assert!(
        matches!(lanes, 1 | 2 | 4 | 8 | 16),
        "PCIe lane widths are powers of two up to 16"
    );
    let name: &'static str = match (gen, lanes) {
        (PcieGen::Gen2, 4) => "PCIe2.0x4",
        (PcieGen::Gen2, 8) => "PCIe2.0x8",
        (PcieGen::Gen2, 16) => "PCIe2.0x16",
        (PcieGen::Gen3, 4) => "PCIe3.0x4",
        (PcieGen::Gen3, 8) => "PCIe3.0x8",
        (PcieGen::Gen3, 16) => "PCIe3.0x16",
        (PcieGen::Gen4, 4) => "PCIe4.0x4",
        (PcieGen::Gen4, 8) => "PCIe4.0x8",
        (PcieGen::Gen4, 16) => "PCIe4.0x16",
        (PcieGen::Gen2, _) => "PCIe2.0",
        (PcieGen::Gen3, _) => "PCIe3.0",
        (PcieGen::Gen4, _) => "PCIe4.0",
    };
    Link {
        name,
        bytes_per_ns: gen.lane_bytes_per_ns() * f64::from(lanes),
        per_request_ns: 1_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen2_lane_is_500_mb_s() {
        // 5 GT/s * 0.8 / 8 = 0.5 B/ns = 500 MB/s per lane.
        assert!((PcieGen::Gen2.lane_bytes_per_ns() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gen3_lane_is_about_985_mb_s() {
        let bw = PcieGen::Gen3.lane_bytes_per_ns() * 1e3;
        assert!((bw - 984.615).abs() < 0.01, "got {bw}");
    }

    #[test]
    fn gen2_x4_is_the_2_gb_s_ceiling_from_the_paper() {
        // §3.3: "since typical PCIe-based SSDs only provide four PCIe lanes,
        // this results in approximately a 2GBps maximum throughput".
        let l = pcie(PcieGen::Gen2, 4);
        assert!((l.bytes_per_ns - 2.0).abs() < 1e-9);
    }

    #[test]
    fn gen3_x16_is_nearly_16_gb_s() {
        let l = pcie(PcieGen::Gen3, 16);
        assert!(l.bytes_per_ns > 15.5 && l.bytes_per_ns < 16.0);
    }

    #[test]
    fn encoding_overhead_ordering() {
        // 8b/10b wastes far more than 128b/130b (25% extra vs 1.5%).
        assert!(PcieGen::Gen2.encoding_efficiency() < PcieGen::Gen3.encoding_efficiency());
    }

    #[test]
    fn gen4_doubles_gen3() {
        let r = PcieGen::Gen4.lane_bytes_per_ns() / PcieGen::Gen3.lane_bytes_per_ns();
        assert!((r - 2.0).abs() < 1e-12);
        assert!(pcie(PcieGen::Gen4, 16).bytes_per_ns > 31.0);
    }

    #[test]
    #[should_panic(expected = "lane widths")]
    fn rejects_bogus_lane_count() {
        pcie(PcieGen::Gen2, 3);
    }
}
