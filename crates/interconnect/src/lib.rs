//! # interconnect — host-side link and bus models
//!
//! Models every wire between the out-of-core application and the NVM dies
//! that the paper varies (§3.3, Figure 5):
//!
//! * **PCIe** 2.0 (5 GT/s, 8b/10b encoding — 20% line overhead) and 3.0
//!   (8 GT/s, 128b/130b — 1.5% overhead), at 4/8/16 lanes.
//! * **SATA-6G bridges** inside "bridged" PCIe SSDs built from SATA-era
//!   controllers: extra protocol-conversion latency and 8b/10b framing.
//! * **ONFi NVM buses**: the state-of-the-art ONFi-3 400 MHz SDR bus and
//!   the paper's proposed DDR-800 (DDR3-1600-like) future bus.
//! * **Cluster fabrics**: QDR 4X InfiniBand (the Carver machine's fabric)
//!   and 8G Fibre Channel.
//!
//! All models reduce to a [`Link`]: an effective payload bandwidth plus a
//! per-request latency, which the SSD simulator treats as a serially
//! reusable resource. [`LinkChain`] composes links end-to-end
//! (min-bandwidth, sum-latency), which is how the ION-remote data path
//! (SSD → ION PCIe → InfiniBand → compute node) is expressed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fabric;
pub mod faults;
pub mod link;
pub mod onfi;
pub mod pcie;
pub mod sata;

pub use fabric::{fibre_channel_8g, infiniband_fdr_4x, infiniband_qdr_4x};
pub use faults::{LinkFaultSim, LinkFaultStats};
pub use link::{Link, LinkChain};
pub use onfi::{ddr800, sdr400, NvmBusSpeed};
pub use pcie::{pcie, PcieGen};
pub use sata::sata_6g_bridge;
