//! SATA-6G bridge hop inside "bridged" PCIe SSDs.
//!
//! §3.3, Figure 5a: ad-hoc PCIe SSDs are frequently built from SATA-era
//! NAND controllers sitting behind a SATA-host/SATA-device pair and a PCIe
//! endpoint. Every request pays protocol re-encoding, and the SATA link's
//! 8b/10b encoding caps each internal controller at 600 MB/s of payload.

use crate::link::Link;

/// One internal SATA-6G controller link of a bridged PCIe SSD.
///
/// `controllers` is how many such internal controllers the device stripes
/// across (each serves a subset of the channels); the returned link models
/// their aggregate with the bridge's per-request conversion cost.
pub fn sata_6g_bridge(controllers: u32) -> Link {
    assert!(
        controllers > 0,
        "a bridged SSD has at least one internal controller"
    );
    // 6 Gb/s * 8/10 encoding = 4.8 Gb/s = 0.6 B/ns payload per controller.
    let per_controller = 6.0 * (8.0 / 10.0) / 8.0;
    Link {
        name: "SATA6G-bridge",
        bytes_per_ns: per_controller * f64::from(controllers),
        // Protocol conversion (SATA FIS <-> PCIe TLP) costs a few µs per
        // command on commodity bridge chips.
        per_request_ns: 3_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_controller_is_600_mb_s() {
        let l = sata_6g_bridge(1);
        assert!((l.mb_s() - 600.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_scales_with_controllers() {
        let l = sata_6g_bridge(8);
        assert!((l.bytes_per_ns - 4.8).abs() < 1e-12);
    }

    #[test]
    fn bridge_costs_more_per_request_than_native_pcie() {
        use crate::pcie::{pcie, PcieGen};
        assert!(sata_6g_bridge(8).per_request_ns > pcie(PcieGen::Gen3, 8).per_request_ns);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_controllers_rejected() {
        sata_6g_bridge(0);
    }
}
