//! NVM bus (channel) interface speeds.
//!
//! §3.3, third problem: even ONFi major-revision 3 "leaves bandwidth on the
//! table". ONFi 3 is a 400 MHz single-data-rate 8-bit bus (400 MB/s per
//! channel — only equal to 200 MHz DDR2). The paper evaluates a future
//! DDR3-1600-like bus, which we model as 800 MHz dual-data-rate
//! (1600 MB/s per channel).

use nvmtypes::BusTiming;
use serde::{Deserialize, Serialize};

/// The two NVM bus speeds the paper evaluates (Table 2's
/// "Interface/Bus Speed" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NvmBusSpeed {
    /// ONFi-3: 400 MHz SDR, 8-bit — 400 MB/s per channel.
    Sdr400,
    /// Future DDR3-1600-like: 800 MHz DDR, 8-bit — 1600 MB/s per channel.
    Ddr800,
}

impl NvmBusSpeed {
    /// The concrete bus timing.
    pub fn timing(self) -> BusTiming {
        match self {
            NvmBusSpeed::Sdr400 => sdr400(),
            NvmBusSpeed::Ddr800 => ddr800(),
        }
    }

    /// Table-2 style label.
    pub fn label(self) -> &'static str {
        match self {
            NvmBusSpeed::Sdr400 => "SDR 400MHz",
            NvmBusSpeed::Ddr800 => "DDR 800MHz",
        }
    }
}

/// ONFi-3 bus: 400 MHz SDR x 8 bits = 400 MB/s (0.4 B/ns) per channel.
pub fn sdr400() -> BusTiming {
    BusTiming {
        name: "ONFi3-SDR-400",
        bytes_per_ns: 0.4,
    }
}

/// Future DDR bus: 800 MHz DDR x 8 bits = 1600 MB/s (1.6 B/ns) per channel.
pub fn ddr800() -> BusTiming {
    BusTiming {
        name: "DDR-800",
        bytes_per_ns: 1.6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sdr400_is_400_mb_s_per_channel() {
        assert!((sdr400().bytes_per_ns - 0.4).abs() < 1e-12);
    }

    #[test]
    fn ddr800_is_4x_onfi3() {
        assert!((ddr800().bytes_per_ns / sdr400().bytes_per_ns - 4.0).abs() < 1e-12);
    }

    #[test]
    fn page_transfer_times() {
        // An 8 KiB TLC page takes 20.48 µs on ONFi-3, 5.12 µs on DDR-800.
        assert_eq!(sdr400().transfer_ns(8192), 20_480);
        assert_eq!(ddr800().transfer_ns(8192), 5_120);
    }

    #[test]
    fn speed_enum_round_trip() {
        assert_eq!(NvmBusSpeed::Sdr400.timing(), sdr400());
        assert_eq!(NvmBusSpeed::Ddr800.timing(), ddr800());
        assert_eq!(NvmBusSpeed::Sdr400.label(), "SDR 400MHz");
    }
}
