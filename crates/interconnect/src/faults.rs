//! Link-level fault injection: CRC errors, bounded-backoff replay and
//! link retrains on the host interconnect.
//!
//! PCIe and SATA both guarantee delivery at the link layer: a transfer
//! hit by a CRC error is *replayed*, not lost, so faults show up as
//! added latency, never as data loss. This module models that — each
//! host-link transfer may be struck by a CRC error (Bernoulli, from the
//! plan's dedicated `STREAM_LINK` stream), forcing a re-transfer plus a
//! bounded exponential backoff; every `retrain_every`-th error forces a
//! full link retrain (speed renegotiation), which stalls the lane for
//! much longer.
//!
//! Determinism: draws happen in transfer order from a split stream, and
//! a zero-rate profile never advances the stream (see
//! [`nvmtypes::fault::FaultRng::gen_bool`]), keeping
//! [`LinkFaultProfile::none`] runs byte-identical to pre-fault builds.

use nvmtypes::fault::{FaultRng, LinkFaultProfile};
use nvmtypes::Nanos;
use serde::Serialize;

/// Cap on the exponential-backoff shift so pathological `max_replays`
/// configs cannot overflow the shift.
const MAX_BACKOFF_SHIFT: u32 = 16;

/// Accumulated link-fault accounting for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct LinkFaultStats {
    /// CRC errors detected (each forces one replay).
    pub crc_errors: u64,
    /// Transfer replays performed.
    pub replays: u64,
    /// Time lost to re-transfers and backoff, ns.
    pub replay_ns: Nanos,
    /// Link retrains performed.
    pub retrains: u64,
    /// Time lost to retrains, ns.
    pub retrain_ns: Nanos,
}

impl LinkFaultStats {
    /// Total time the link faults cost, ns.
    pub fn total_ns(&self) -> Nanos {
        self.replay_ns + self.retrain_ns
    }
}

/// Per-run link fault process over one host link (or chain).
#[derive(Debug, Clone)]
pub struct LinkFaultSim {
    profile: LinkFaultProfile,
    rng: FaultRng,
    stats: LinkFaultStats,
}

impl LinkFaultSim {
    /// Builds the process; `rng` should be the `STREAM_LINK` split of
    /// the plan's root generator.
    pub fn new(profile: LinkFaultProfile, rng: FaultRng) -> LinkFaultSim {
        LinkFaultSim {
            profile,
            rng,
            stats: LinkFaultStats::default(),
        }
    }

    /// Samples the fault process for one transfer whose clean duration
    /// is `base_ns`; returns the *extra* nanoseconds the transfer costs
    /// (0 when the transfer goes through first try).
    ///
    /// Each replay re-arms the error process, but the ladder is bounded
    /// by `max_replays`: after that many replays the link layer is
    /// assumed to have pushed the transfer through (delivery is
    /// guaranteed; only latency is at stake).
    pub fn transfer_penalty(&mut self, base_ns: Nanos) -> Nanos {
        if self.profile.is_none() {
            return 0;
        }
        let mut extra: Nanos = 0;
        let mut attempt: u32 = 0;
        while attempt < self.profile.max_replays && self.rng.gen_bool(self.profile.crc_error_prob) {
            self.stats.crc_errors += 1;
            self.stats.replays += 1;
            let backoff = self.profile.replay_backoff_ns << attempt.min(MAX_BACKOFF_SHIFT);
            let replay_cost = base_ns + backoff;
            extra += replay_cost;
            self.stats.replay_ns += replay_cost;
            if self.profile.retrain_every > 0
                && self.stats.crc_errors % self.profile.retrain_every == 0
            {
                self.stats.retrains += 1;
                extra += self.profile.retrain_ns;
                self.stats.retrain_ns += self.profile.retrain_ns;
            }
            attempt += 1;
        }
        extra
    }

    /// [`LinkFaultSim::transfer_penalty`] plus a [`simobs::Layer::Link`]
    /// span over the replay window when tracing is enabled. `start` is
    /// when the clean transfer would have completed: the penalty
    /// nanoseconds are appended there. The tracer observes the sampled
    /// penalty and feeds nothing back, so enabling it cannot perturb the
    /// fault stream.
    pub fn transfer_penalty_traced(
        &mut self,
        base_ns: Nanos,
        start: Nanos,
        obs: &mut simobs::Tracer,
    ) -> Nanos {
        let before = self.stats;
        let extra = self.transfer_penalty(base_ns);
        if extra > 0 && obs.enabled() {
            obs.span(
                simobs::Layer::Link,
                "link_replay",
                start,
                start + extra,
                [
                    ("replays", self.stats.replays - before.replays),
                    ("retrains", self.stats.retrains - before.retrains),
                ],
            );
            obs.count("link.replays", self.stats.replays - before.replays);
            obs.count("link.retrains", self.stats.retrains - before.retrains);
            obs.count("link.penalty_ns", extra);
        }
        extra
    }

    /// The accounting so far.
    pub fn stats(&self) -> LinkFaultStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmtypes::fault::{FaultPlan, STREAM_LINK};

    fn rng() -> FaultRng {
        FaultPlan {
            seed: 17,
            ..FaultPlan::none()
        }
        .rng()
        .split(STREAM_LINK)
    }

    #[test]
    fn zero_profile_costs_nothing_and_consumes_nothing() {
        let mut sim = LinkFaultSim::new(LinkFaultProfile::none(), rng());
        for _ in 0..100 {
            assert_eq!(sim.transfer_penalty(10_000), 0);
        }
        assert_eq!(sim.stats(), LinkFaultStats::default());
        let fresh = LinkFaultSim::new(LinkFaultProfile::none(), rng());
        assert_eq!(sim.rng, fresh.rng, "stream advanced on zero rate");
    }

    #[test]
    fn penalties_are_deterministic() {
        let profile = LinkFaultProfile {
            crc_error_prob: 0.2,
            retrain_every: 4,
            ..LinkFaultProfile::none()
        };
        let mut a = LinkFaultSim::new(profile, rng());
        let mut b = LinkFaultSim::new(profile, rng());
        for i in 0..500u64 {
            assert_eq!(a.transfer_penalty(1_000 + i), b.transfer_penalty(1_000 + i));
        }
        assert_eq!(a.stats(), b.stats());
        assert!(
            a.stats().crc_errors > 0,
            "rate 0.2 should fire in 500 tries"
        );
    }

    #[test]
    fn replays_are_bounded_even_at_certain_error() {
        let profile = LinkFaultProfile {
            crc_error_prob: 1.0,
            max_replays: 3,
            replay_backoff_ns: 100,
            retrain_every: 0,
            retrain_ns: 0,
        };
        let mut sim = LinkFaultSim::new(profile, rng());
        let extra = sim.transfer_penalty(1_000);
        // 3 replays: re-transfer each, backoff 100, 200, 400.
        assert_eq!(extra, 3 * 1_000 + 100 + 200 + 400);
        assert_eq!(sim.stats().replays, 3);
    }

    #[test]
    fn retrain_fires_every_nth_error() {
        let profile = LinkFaultProfile {
            crc_error_prob: 1.0,
            max_replays: 1,
            replay_backoff_ns: 0,
            retrain_every: 2,
            retrain_ns: 1_000_000,
        };
        let mut sim = LinkFaultSim::new(profile, rng());
        let mut total = 0;
        for _ in 0..6 {
            total += sim.transfer_penalty(500);
        }
        assert_eq!(sim.stats().crc_errors, 6);
        assert_eq!(sim.stats().retrains, 3);
        assert_eq!(total, 6 * 500 + 3 * 1_000_000);
        assert_eq!(sim.stats().total_ns(), total);
    }
}
