//! Cluster fabrics: the network hops of the ION-remote data path.
//!
//! Carver (§2.2, Figure 3) connects compute nodes to I/O nodes with QDR 4X
//! InfiniBand ("4GB/sec" in the figure) and attaches external RAID storage
//! to the IONs over Fibre Channel.

use crate::link::Link;

/// QDR 4X InfiniBand: 4 lanes x 10 Gb/s signalling with 8b/10b encoding
/// = 32 Gb/s = 4 GB/s payload. Per-message cost covers the verbs round
/// trip plus the parallel-file-system client/server exchange that every
/// GPFS block access pays.
pub fn infiniband_qdr_4x() -> Link {
    Link {
        name: "IB-QDR-4X",
        bytes_per_ns: 4.0,
        per_request_ns: 25_000,
    }
}

/// FDR 4X InfiniBand (the generation after the paper's QDR): 4 x 14 Gb/s
/// with 64b/66b encoding = ~6.8 GB/s payload.
pub fn infiniband_fdr_4x() -> Link {
    // 4 lanes x 14.0625 Gb/s x 64/66 encoding = 54.5 Gb/s = ~6.8 B/ns.
    Link {
        name: "IB-FDR-4X",
        bytes_per_ns: 4.0 * 14.0625 * (64.0 / 66.0) / 8.0,
        per_request_ns: 20_000,
    }
}

/// 8G Fibre Channel: 8.5 Gb/s signalling, 8b/10b = 680 MB/s payload.
/// Used between IONs and external RAID enclosures; not on the SSD path,
/// but needed to model the magnetic-storage baseline.
pub fn fibre_channel_8g() -> Link {
    Link {
        name: "FC-8G",
        bytes_per_ns: 0.85 * 0.8,
        per_request_ns: 10_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qdr_4x_is_4_gb_s() {
        assert!((infiniband_qdr_4x().bytes_per_ns - 4.0).abs() < 1e-12);
    }

    #[test]
    fn fibre_channel_is_680_mb_s() {
        assert!((fibre_channel_8g().mb_s() - 680.0).abs() < 1e-9);
    }

    #[test]
    fn network_is_faster_than_fc_but_has_higher_per_message_cost_than_pcie() {
        use crate::pcie::{pcie, PcieGen};
        let ib = infiniband_qdr_4x();
        assert!(ib.bytes_per_ns > fibre_channel_8g().bytes_per_ns);
        assert!(ib.per_request_ns > pcie(PcieGen::Gen2, 8).per_request_ns);
    }

    #[test]
    fn fdr_is_about_6_8_gb_s_and_faster_than_qdr() {
        let fdr = infiniband_fdr_4x();
        assert!(
            (fdr.bytes_per_ns - 6.818).abs() < 0.01,
            "got {}",
            fdr.bytes_per_ns
        );
        assert!(fdr.bytes_per_ns > infiniband_qdr_4x().bytes_per_ns);
    }

    #[test]
    fn figure1_premise_nvm_outpaces_network() {
        // The paper's Figure-1 premise: a modern PCIe-3.0 x16 SSD interface
        // exceeds a QDR-4X InfiniBand point-to-point link.
        use crate::pcie::{pcie, PcieGen};
        assert!(pcie(PcieGen::Gen3, 16).bytes_per_ns > infiniband_qdr_4x().bytes_per_ns);
    }
}
