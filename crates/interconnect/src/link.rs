//! Generic link model and end-to-end composition.

use nvmtypes::{transfer_time, Nanos};
use serde::Serialize;

/// A point-to-point data link with an effective payload bandwidth and a
/// fixed per-request cost.
///
/// `bytes_per_ns` is the *post-encoding* payload rate: constructors fold
/// line-encoding overheads (8b/10b, 128b/130b) and protocol framing
/// efficiency into it, so the simulator never needs to know about encodings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Link {
    /// Human-readable name, e.g. `"PCIe2.0x8"`.
    pub name: &'static str,
    /// Effective payload bandwidth in bytes per nanosecond (== GB/s).
    pub bytes_per_ns: f64,
    /// Fixed per-request cost in ns (DMA setup, protocol round trip,
    /// bridge conversion, switch traversal...).
    pub per_request_ns: Nanos,
}

impl Link {
    /// Constructs a link directly from an effective MB/s figure.
    pub fn from_mb_s(name: &'static str, mb_s: f64, per_request_ns: Nanos) -> Link {
        Link {
            name,
            bytes_per_ns: nvmtypes::bytes_per_ns_from_mb_s(mb_s),
            per_request_ns,
        }
    }

    /// Time to move one request of `bytes` across the link, including the
    /// per-request cost.
    pub fn request_ns(&self, bytes: u64) -> Nanos {
        self.per_request_ns + transfer_time(bytes, self.bytes_per_ns)
    }

    /// Effective bandwidth in MB/s (for reporting).
    pub fn mb_s(&self) -> f64 {
        self.bytes_per_ns * 1e3
    }
}

/// A path composed of several links crossed in sequence (e.g. device DMA,
/// then a cluster fabric hop for ION-remote storage).
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct LinkChain {
    /// Links in traversal order.
    pub links: Vec<Link>,
}

impl LinkChain {
    /// A chain of one link.
    pub fn single(link: Link) -> LinkChain {
        LinkChain { links: vec![link] }
    }

    /// Appends a hop to the chain.
    pub fn then(mut self, link: Link) -> LinkChain {
        self.links.push(link);
        self
    }

    /// Collapses the chain into one effective link: bandwidth of the
    /// narrowest hop, per-request latency of all hops summed.
    ///
    /// This is the store-and-forward approximation the simulator uses; it
    /// is exact for bandwidth and conservative (additive) for latency.
    ///
    /// # Panics
    /// Panics if the chain is empty.
    pub fn effective(&self) -> Link {
        assert!(
            !self.links.is_empty(),
            "cannot collapse an empty link chain"
        );
        let bytes_per_ns = self
            .links
            .iter()
            .map(|l| l.bytes_per_ns)
            .fold(f64::INFINITY, f64::min);
        let per_request_ns = self.links.iter().map(|l| l.per_request_ns).sum();
        Link {
            name: "chain",
            bytes_per_ns,
            per_request_ns,
        }
    }

    /// Name of the narrowest hop — the bottleneck of the path.
    pub fn bottleneck(&self) -> &'static str {
        self.links
            .iter()
            .min_by(|a, b| a.bytes_per_ns.total_cmp(&b.bytes_per_ns))
            .map(|l| l.name)
            .unwrap_or("empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_time_includes_setup() {
        let l = Link {
            name: "t",
            bytes_per_ns: 1.0,
            per_request_ns: 100,
        };
        assert_eq!(l.request_ns(1000), 1100);
    }

    #[test]
    fn from_mb_s_round_trips() {
        let l = Link::from_mb_s("t", 4000.0, 0);
        assert!((l.mb_s() - 4000.0).abs() < 1e-9);
        assert!((l.bytes_per_ns - 4.0).abs() < 1e-12);
    }

    #[test]
    fn chain_takes_min_bandwidth_and_sums_latency() {
        let fast = Link {
            name: "fast",
            bytes_per_ns: 4.0,
            per_request_ns: 500,
        };
        let slow = Link {
            name: "slow",
            bytes_per_ns: 1.0,
            per_request_ns: 1300,
        };
        let eff = LinkChain::single(fast).then(slow).effective();
        assert!((eff.bytes_per_ns - 1.0).abs() < 1e-12);
        assert_eq!(eff.per_request_ns, 1800);
    }

    #[test]
    fn bottleneck_names_narrowest_hop() {
        let fast = Link {
            name: "fast",
            bytes_per_ns: 4.0,
            per_request_ns: 0,
        };
        let slow = Link {
            name: "slow",
            bytes_per_ns: 1.0,
            per_request_ns: 0,
        };
        let chain = LinkChain::single(fast).then(slow);
        assert_eq!(chain.bottleneck(), "slow");
    }

    #[test]
    #[should_panic(expected = "empty link chain")]
    fn empty_chain_panics() {
        LinkChain::default().effective();
    }
}
