//! Per-run results: the numbers every figure of the paper is drawn from.

use crate::ftl::WearStats;
use flashsim::{EnergyReport, MediaReport, PalHistogram};
use interconnect::LinkFaultStats;
use nvmtypes::Nanos;
use serde::Serialize;

/// Fault and recovery accounting for one run. All-zero (the `Default`)
/// when the run's [`nvmtypes::FaultPlan`] is `none()`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ReliabilityStats {
    /// Pages whose read needed help beyond the inline ECC tier.
    pub read_errors: u64,
    /// Escalating read-retry senses performed.
    pub ecc_retries: u64,
    /// Pages no retry tier could correct (data lost; block retired).
    pub uncorrectable: u64,
    /// Page programs that failed and were retried.
    pub program_retries: u64,
    /// Block erases that failed (block retired).
    pub erase_failures: u64,
    /// Read-disturb refresh programs performed.
    pub disturb_refreshes: u64,
    /// Blocks retired and remapped to spares by the FTL.
    pub bad_blocks_remapped: u64,
    /// Spare blocks left in the over-provisioning pool at run end.
    pub spare_blocks_left: u64,
    /// Time lost to media-side recovery (retries, refreshes,
    /// re-programs, re-erases), ns.
    pub media_recovery_ns: Nanos,
    /// Host-link CRC/replay/retrain accounting.
    pub link: LinkFaultStats,
}

impl ReliabilityStats {
    /// True iff any fault or recovery event occurred.
    pub fn any(&self) -> bool {
        self.read_errors > 0
            || self.ecc_retries > 0
            || self.uncorrectable > 0
            || self.program_retries > 0
            || self.erase_failures > 0
            || self.disturb_refreshes > 0
            || self.bad_blocks_remapped > 0
            || self.link.crc_errors > 0
            || self.link.retrains > 0
    }

    /// Total time recovery cost the run, ns (media + link).
    pub fn total_recovery_ns(&self) -> Nanos {
        self.media_recovery_ns + self.link.total_ns()
    }
}

/// Request-latency distribution summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct LatencyStats {
    /// Median request latency, ns.
    pub p50: Nanos,
    /// 95th percentile, ns.
    pub p95: Nanos,
    /// 99th percentile, ns.
    pub p99: Nanos,
    /// Worst request, ns.
    pub max: Nanos,
}

impl LatencyStats {
    /// Summarises a set of per-request latencies (consumes and sorts).
    pub fn from_latencies(mut lat: Vec<Nanos>) -> LatencyStats {
        if lat.is_empty() {
            return LatencyStats::default();
        }
        lat.sort_unstable();
        let pick = |q_num: usize, q_den: usize| {
            let idx = (lat.len() * q_num / q_den).min(lat.len() - 1);
            lat[idx]
        };
        LatencyStats {
            p50: pick(1, 2),
            p95: pick(95, 100),
            p99: pick(99, 100),
            max: pick(1, 1),
        }
    }
}

/// Results of replaying one block trace through one device configuration.
/// `PartialEq` compares every field (the bench's observer-effect check
/// relies on this being exhaustive — a new field is compared by default).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RunReport {
    /// End-to-end simulated time, ns.
    pub makespan: Nanos,
    /// Requests processed.
    pub requests: u64,
    /// Total bytes moved, including file-system metadata/journal traffic.
    pub total_bytes: u64,
    /// Application-payload bytes (non-sync requests).
    pub data_bytes: u64,
    /// End-to-end throughput over all bytes, MB/s (Figures 7a/8a).
    pub bandwidth_mb_s: f64,
    /// End-to-end throughput counting application payload only, MB/s.
    pub data_bandwidth_mb_s: f64,
    /// Time the host link spent transferring, ns.
    pub host_busy: Nanos,
    /// Portion of host-transfer time during which the media was completely
    /// idle — the network-starvation signature of ION-remote storage.
    pub dma_media_idle: Nanos,
    /// Media-side report: utilizations, execution breakdown, headroom.
    pub media: MediaReport,
    /// Parallelism-level distribution over requests (Figures 10b/10d).
    pub pal: PalHistogram,
    /// Wear accounting from the FTL's log allocator.
    pub wear: WearStats,
    /// Energy accounting for the run.
    pub energy: EnergyReport,
    /// Per-request latency percentiles.
    pub latency: LatencyStats,
    /// Full per-request latency distribution: the precision HDR
    /// histogram behind the p50/p99/p999 exports. Always populated
    /// (traced or not) from exactly the same values as
    /// [`RunReport::latency`], so attaching a tracer cannot change it;
    /// batch runners merge these across shards byte-identically
    /// ([`simobs::HdrHistogram::merge`]).
    pub latency_hdr: simobs::HdrHistogram,
    /// Fault/recovery accounting (all-zero under `FaultPlan::none()`).
    pub reliability: ReliabilityStats,
    /// Exact per-layer latency attribution: the components sum to the
    /// sum of per-request latencies ([`simobs::LatencyAttribution::is_exact`]),
    /// and recovery time appears in exactly one component. Note the
    /// attribution's `recovery_ns` can be smaller than
    /// [`ReliabilityStats::total_recovery_ns`]: recovery on dies that
    /// overlapped other media service is capped at the request's media
    /// wall, so it is never double-counted against die/channel time.
    pub attribution: simobs::LatencyAttribution,
}

impl RunReport {
    /// The bandwidth-remaining headroom metric (Figures 7b/8b), MB/s.
    pub fn remaining_mb_s(&self) -> f64 {
        self.media.remaining_mb_s
    }

    /// One-line human-readable summary. Fault-free runs render exactly
    /// as they did before fault injection existed; runs that saw faults
    /// append the recovery counters.
    pub fn summary(&self) -> String {
        let mut line = format!(
            "{:>8.1} MB/s  ({} reqs, {:.1}% chan, {:.1}% pkg, PAL4 {:.1}%)",
            self.bandwidth_mb_s,
            self.requests,
            self.media.channel_util * 100.0,
            self.media.package_util * 100.0,
            self.pal.percent()[3],
        );
        if self.reliability.any() {
            let r = &self.reliability;
            line.push_str(&format!(
                "  [faults: {} retries, {} crc, {} bad blocks, {:.2} ms recovery]",
                r.ecc_retries,
                r.link.crc_errors,
                r.bad_blocks_remapped,
                nvmtypes::approx_f64(r.total_recovery_ns()) / 1e6,
            ));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_latencies_are_zero() {
        assert_eq!(
            LatencyStats::from_latencies(vec![]),
            LatencyStats::default()
        );
    }

    #[test]
    fn percentiles_are_ordered() {
        let lat: Vec<Nanos> = (1..=1000).collect();
        let s = LatencyStats::from_latencies(lat);
        assert_eq!(s.p50, 501);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        assert_eq!(s.max, 1000);
    }

    #[test]
    fn single_sample() {
        let s = LatencyStats::from_latencies(vec![42]);
        assert_eq!(s.p50, 42);
        assert_eq!(s.max, 42);
    }
}
