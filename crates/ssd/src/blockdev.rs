//! The stable block-device contract UFS mounts on.
//!
//! Everywhere else in this crate the device is a *timing* model: it
//! replays traces and reports nanoseconds, but stores no bytes. A real
//! journaled file system needs the opposite — durable sector contents
//! with power-loss semantics — so this module provides the
//! contents-plane counterpart: a sector-addressed [`BlockDevice`] trait
//! and the deterministic [`SimBlockDevice`] the crash-consistency
//! harness drives (docs/UFS.md, docs/FAULT_MODEL.md).
//!
//! The two planes meet at the request stream: UFS records every sector
//! operation it issues as a [`nvmtypes::HostRequest`], and that block
//! trace replays through [`crate::SsdDevice`] for timing — same split
//! the paper makes between file-system behaviour and device service.
//!
//! Power-loss semantics ([`nvmtypes::CrashPoint`]): a scheduled sector
//! write either *tears* (a prefix of the new bytes lands, the rest of
//! the sector keeps its old contents — how a real NVM page behaves when
//! the program pulse is interrupted) or *drops* (nothing lands). Either
//! way the device is dead afterwards: every subsequent operation returns
//! [`SimError::PowerLoss`], and the harness remounts from the surviving
//! media image.

use nvmtypes::convert::{u64_from_usize, usize_from};
use nvmtypes::{CrashPoint, CrashVerdict, SimError};

/// Sector size of the stable store, bytes. Matches the 4 KiB flash page
/// of the paper's device so one sector write is one NVM program.
pub const SECTOR_BYTES: u64 = 4096;

/// [`SECTOR_BYTES`] as `usize` for buffer arithmetic (kept in lockstep
/// by a test).
pub const SECTOR_USIZE: usize = 4096;

/// A sector-addressed stable store with power-loss semantics.
///
/// The contract every implementation upholds:
///
/// * reads and writes move exactly [`SECTOR_BYTES`] bytes;
/// * a successful `write_sector` is durable — there is no volatile
///   cache between the caller and the media (UFS issues its own
///   ordering, so a cache would only hide bugs);
/// * after the first [`SimError::PowerLoss`], every subsequent
///   operation also fails with it (a dead device stays dead).
pub trait BlockDevice {
    /// Total sectors.
    fn sectors(&self) -> u64;

    /// Reads sector `lba` into `out` (`out.len() == SECTOR_USIZE`).
    fn read_sector(&self, lba: u64, out: &mut [u8]) -> Result<(), SimError>;

    /// Writes sector `lba` from `data` (`data.len() == SECTOR_USIZE`).
    fn write_sector(&mut self, lba: u64, data: &[u8]) -> Result<(), SimError>;

    /// Sector writes fully persisted so far.
    fn writes_persisted(&self) -> u64;
}

/// Deterministic in-memory block device with an optional crash point.
///
/// ```
/// use nvmtypes::CrashPoint;
/// use ssd::blockdev::{BlockDevice, SimBlockDevice, SECTOR_USIZE};
///
/// let mut dev = SimBlockDevice::new(8).with_crash_point(Some(CrashPoint::at_write(2, false, 1)));
/// let sector = [7u8; SECTOR_USIZE];
/// assert!(dev.write_sector(0, &sector).is_ok());
/// let lost = dev.write_sector(1, &sector).expect_err("power fails at write 2");
/// assert!(lost.is_power_loss());
/// // The surviving media image remounts on a fresh device.
/// let dev2 = SimBlockDevice::from_media(dev.into_media()).expect("image is sector-aligned");
/// let mut buf = [0u8; SECTOR_USIZE];
/// dev2.read_sector(0, &mut buf).expect("persisted sector reads back");
/// assert_eq!(buf, sector);
/// ```
#[derive(Debug, Clone)]
pub struct SimBlockDevice {
    media: Vec<u8>,
    crash: Option<CrashPoint>,
    dead: bool,
    writes_persisted: u64,
}

impl SimBlockDevice {
    /// A zero-filled device of `sectors` sectors, no crash scheduled.
    pub fn new(sectors: u64) -> SimBlockDevice {
        SimBlockDevice {
            media: vec![0; usize_from(sectors * SECTOR_BYTES)],
            crash: None,
            dead: false,
            writes_persisted: 0,
        }
    }

    /// Installs (or clears) the power-loss schedule. `None` is the
    /// crash-free build: no hook, no counter branch on the write path
    /// beyond the `Option` check — the byte-identity pin of
    /// docs/FAULT_MODEL.md compares this against a zero-rate plan.
    #[must_use]
    pub fn with_crash_point(mut self, crash: Option<CrashPoint>) -> SimBlockDevice {
        self.crash = crash;
        self
    }

    /// Adopts a surviving media image (a remount after power loss).
    /// The image length must be sector-aligned.
    pub fn from_media(media: Vec<u8>) -> Result<SimBlockDevice, SimError> {
        if !u64_from_usize(media.len()).is_multiple_of(SECTOR_BYTES) {
            return Err(SimError::invalid_config(
                "blockdev.media",
                format!(
                    "image of {} bytes is not a whole number of {SECTOR_BYTES}-byte sectors",
                    media.len()
                ),
            ));
        }
        Ok(SimBlockDevice {
            media,
            crash: None,
            dead: false,
            writes_persisted: 0,
        })
    }

    /// Surrenders the media image (what survives a crash).
    pub fn into_media(self) -> Vec<u8> {
        self.media
    }

    /// Borrows the media image.
    pub fn media(&self) -> &[u8] {
        &self.media
    }

    /// True once a scheduled power loss has fired.
    pub fn power_lost(&self) -> bool {
        self.dead
    }

    fn dead_err(&self) -> SimError {
        SimError::PowerLoss {
            writes_persisted: self.writes_persisted,
        }
    }

    fn range(&self, lba: u64, len: usize, what: &str) -> Result<std::ops::Range<usize>, SimError> {
        if len != SECTOR_USIZE {
            return Err(SimError::invalid_config(
                format!("blockdev.{what}"),
                format!("buffer of {len} bytes; sector I/O moves exactly {SECTOR_BYTES}"),
            ));
        }
        if lba >= self.sectors() {
            return Err(SimError::invalid_config(
                format!("blockdev.{what}"),
                format!("lba {lba} beyond device of {} sectors", self.sectors()),
            ));
        }
        let start = usize_from(lba * SECTOR_BYTES);
        Ok(start..start + SECTOR_USIZE)
    }
}

impl BlockDevice for SimBlockDevice {
    fn sectors(&self) -> u64 {
        u64_from_usize(self.media.len()) / SECTOR_BYTES
    }

    fn read_sector(&self, lba: u64, out: &mut [u8]) -> Result<(), SimError> {
        if self.dead {
            return Err(self.dead_err());
        }
        let range = self.range(lba, out.len(), "read")?;
        out.copy_from_slice(&self.media[range]);
        Ok(())
    }

    fn write_sector(&mut self, lba: u64, data: &[u8]) -> Result<(), SimError> {
        if self.dead {
            return Err(self.dead_err());
        }
        let range = self.range(lba, data.len(), "write")?;
        let verdict = match &mut self.crash {
            Some(cp) => cp.on_write(SECTOR_BYTES),
            None => CrashVerdict::Persist,
        };
        match verdict {
            CrashVerdict::Persist => {
                self.media[range].copy_from_slice(data);
                self.writes_persisted += 1;
                Ok(())
            }
            CrashVerdict::Torn { keep_bytes } => {
                // The interrupted program pulse lands a prefix of the new
                // data; the sector tail keeps its previous contents.
                let keep = usize_from(keep_bytes).min(SECTOR_USIZE);
                let start = range.start;
                self.media[start..start + keep].copy_from_slice(&data[..keep]);
                self.dead = true;
                Err(self.dead_err())
            }
            CrashVerdict::Dropped => {
                self.dead = true;
                Err(self.dead_err())
            }
        }
    }

    fn writes_persisted(&self) -> u64 {
        self.writes_persisted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sector(fill: u8) -> Vec<u8> {
        vec![fill; SECTOR_USIZE]
    }

    #[test]
    fn sector_constants_agree() {
        assert_eq!(u64_from_usize(SECTOR_USIZE), SECTOR_BYTES);
    }

    #[test]
    fn reads_see_exactly_what_writes_persisted() {
        let mut dev = SimBlockDevice::new(4);
        dev.write_sector(2, &sector(0xAB)).expect("write persists");
        let mut buf = sector(0);
        dev.read_sector(2, &mut buf).expect("read succeeds");
        assert_eq!(buf, sector(0xAB));
        dev.read_sector(1, &mut buf).expect("read succeeds");
        assert_eq!(buf, sector(0), "untouched sector stays zero");
        assert_eq!(dev.writes_persisted(), 1);
    }

    #[test]
    fn out_of_range_and_misshapen_io_are_typed_errors() {
        let mut dev = SimBlockDevice::new(2);
        assert!(dev.write_sector(2, &sector(1)).is_err());
        assert!(dev.write_sector(0, &[0u8; 100]).is_err());
        let mut short = [0u8; 7];
        assert!(dev.read_sector(0, &mut short).is_err());
        let mut buf = sector(0);
        assert!(dev.read_sector(9, &mut buf).is_err());
    }

    #[test]
    fn dropped_power_loss_persists_a_clean_prefix() {
        let mut dev =
            SimBlockDevice::new(8).with_crash_point(Some(CrashPoint::at_write(3, false, 1)));
        dev.write_sector(0, &sector(1)).expect("write 1 persists");
        dev.write_sector(1, &sector(2)).expect("write 2 persists");
        let err = dev.write_sector(2, &sector(3)).expect_err("write 3 dies");
        assert!(err.is_power_loss());
        assert!(dev.power_lost());
        // Dead device: reads and writes both refuse.
        let mut buf = sector(0);
        assert!(dev.read_sector(0, &mut buf).is_err());
        assert!(dev.write_sector(3, &sector(4)).is_err());
        // Survivors: writes 1 and 2 whole, write 3 absent.
        let media = dev.into_media();
        assert_eq!(&media[..SECTOR_USIZE], sector(1).as_slice());
        assert_eq!(&media[SECTOR_USIZE..2 * SECTOR_USIZE], sector(2).as_slice());
        assert_eq!(
            &media[2 * SECTOR_USIZE..3 * SECTOR_USIZE],
            sector(0).as_slice()
        );
    }

    #[test]
    fn torn_power_loss_persists_a_partial_sector() {
        // Sweep seeds until a strictly-internal tear shows up, then pin
        // its shape: new-data prefix, old-data tail.
        let mut saw_internal_tear = false;
        for seed in 0..64 {
            let mut dev =
                SimBlockDevice::new(2).with_crash_point(Some(CrashPoint::at_write(2, true, seed)));
            dev.write_sector(1, &sector(0x55))
                .expect("write 1 persists");
            let err = dev
                .write_sector(1, &sector(0xFF))
                .expect_err("write 2 tears");
            assert!(err.is_power_loss());
            let media = dev.into_media();
            let s = &media[SECTOR_USIZE..2 * SECTOR_USIZE];
            let keep = s.iter().take_while(|&&b| b == 0xFF).count();
            assert!(
                s[keep..].iter().all(|&b| b == 0x55),
                "tail must keep the old contents (seed {seed})"
            );
            if keep > 0 && keep < SECTOR_USIZE {
                saw_internal_tear = true;
            }
        }
        assert!(saw_internal_tear, "no seed produced an internal tear");
    }

    #[test]
    fn crash_free_hook_is_identical_to_no_hook() {
        // The byte-identity pin: a zero crash profile builds no hook, and
        // a device with `None` behaves identically to the pre-hook code.
        let script: Vec<(u64, u8)> = (0u8..32)
            .map(|i| (u64::from(i % 8), i.wrapping_mul(37)))
            .collect();
        let run = |mut dev: SimBlockDevice| -> (Vec<u8>, u64) {
            for &(lba, fill) in &script {
                dev.write_sector(lba, &sector(fill))
                    .expect("no crash scheduled");
            }
            let writes = dev.writes_persisted();
            (dev.into_media(), writes)
        };
        let plain = run(SimBlockDevice::new(8));
        let hooked = run(
            SimBlockDevice::new(8).with_crash_point(CrashPoint::from_profile(
                &nvmtypes::CrashFaultProfile::none(),
                nvmtypes::FaultPlan::none()
                    .rng()
                    .split(nvmtypes::fault::STREAM_CRASH),
            )),
        );
        assert_eq!(plain, hooked);
    }

    #[test]
    fn from_media_round_trips_and_rejects_ragged_images() {
        let mut dev = SimBlockDevice::new(3);
        dev.write_sector(1, &sector(9)).expect("write persists");
        let image = dev.into_media();
        let dev2 = SimBlockDevice::from_media(image.clone()).expect("aligned image");
        assert_eq!(dev2.sectors(), 3);
        assert_eq!(dev2.media(), image.as_slice());
        assert!(SimBlockDevice::from_media(vec![0; 100]).is_err());
    }
}
