//! Device-level configuration.

use crate::mapping::{Dim, DEFAULT_ORDER};
use flashsim::MediaConfig;
use interconnect::LinkChain;
use nvmtypes::{FaultPlan, Nanos};
use serde::Serialize;

/// How logical requests are translated to NVM transactions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum FtlMode {
    /// A conventional in-device flash translation layer (Figure 4a):
    /// firmware latency per request, internal transaction-size splitting,
    /// log-structured write allocation with erase-before-write.
    Traditional {
        /// Firmware processing latency per host request, ns.
        firmware_ns: Nanos,
        /// Largest contiguous NVM transaction the controller issues;
        /// bigger requests are split and each split pays `firmware_ns`.
        max_transaction_bytes: u64,
    },
    /// The paper's Unified File System direct mode (Figure 4b): the FTL's
    /// roles are elevated to the host, requests pass through unsplit as raw
    /// NVM transactions with negligible device-side processing.
    Ufs {
        /// Residual per-request processing latency, ns.
        firmware_ns: Nanos,
    },
}

impl FtlMode {
    /// A typical traditional FTL: 20 µs of firmware work per request,
    /// 2 MiB internal transactions (the controller's DMA segment limit).
    pub fn traditional_default() -> FtlMode {
        FtlMode::Traditional {
            firmware_ns: 20_000,
            max_transaction_bytes: 2 << 20,
        }
    }

    /// UFS direct mode with 2 µs residual processing.
    pub fn ufs_default() -> FtlMode {
        FtlMode::Ufs { firmware_ns: 2_000 }
    }

    /// Per-request firmware latency.
    pub fn firmware_ns(&self) -> Nanos {
        match *self {
            FtlMode::Traditional { firmware_ns, .. } | FtlMode::Ufs { firmware_ns } => firmware_ns,
        }
    }

    /// Internal transaction-size cap, if any.
    pub fn max_transaction_bytes(&self) -> Option<u64> {
        match *self {
            FtlMode::Traditional {
                max_transaction_bytes,
                ..
            } => Some(max_transaction_bytes),
            FtlMode::Ufs { .. } => None,
        }
    }
}

/// Full configuration of a simulated SSD and its host attachment.
#[derive(Debug, Clone, Serialize)]
pub struct SsdConfig {
    /// Media side (geometry, Table-1 timing, channel bus).
    pub media: MediaConfig,
    /// The data path between device buffers and the application's memory
    /// (PCIe; plus SATA bridge and/or cluster fabric hops as configured).
    pub host: LinkChain,
    /// Native-command-queueing depth the device sustains; the effective
    /// queue depth of a run is `min(ncq_depth, workload queue depth)`.
    pub ncq_depth: u32,
    /// Translation mode.
    pub ftl: FtlMode,
    /// Physical striping order.
    pub stripe_order: [Dim; 4],
    /// Physically-addressed queueing (PAQ, the paper's [22]): when `true`,
    /// die-ops of concurrent requests are serviced out of order across
    /// dies; when `false`, media service is serialised per request.
    pub paq: bool,
    /// Fault-injection plan. Defaults to [`FaultPlan::none`], under
    /// which every run is byte-identical to a build without fault
    /// hooks (pinned by `tests/determinism.rs`).
    pub fault_plan: FaultPlan,
}

impl SsdConfig {
    /// A device with defaults matching the paper's base CNL setup.
    pub fn new(media: MediaConfig, host: LinkChain) -> SsdConfig {
        SsdConfig {
            media,
            host,
            ncq_depth: 32,
            ftl: FtlMode::traditional_default(),
            stripe_order: DEFAULT_ORDER,
            paq: true,
            fault_plan: FaultPlan::none(),
        }
    }

    /// Switches the device to UFS direct mode.
    pub fn with_ufs(mut self) -> SsdConfig {
        self.ftl = FtlMode::ufs_default();
        self
    }

    /// Overrides the translation mode.
    pub fn with_ftl(mut self, ftl: FtlMode) -> SsdConfig {
        self.ftl = ftl;
        self
    }

    /// Disables PAQ (for the queueing ablation).
    pub fn without_paq(mut self) -> SsdConfig {
        self.paq = false;
        self
    }

    /// Installs a fault-injection plan (see `nvmtypes::fault`).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> SsdConfig {
        self.fault_plan = plan;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interconnect::{pcie, PcieGen};
    use nvmtypes::{BusTiming, NvmKind};

    fn cfg() -> SsdConfig {
        let media = MediaConfig::tiny(
            NvmKind::Tlc,
            BusTiming {
                name: "t",
                bytes_per_ns: 0.4,
            },
        );
        SsdConfig::new(media, LinkChain::single(pcie(PcieGen::Gen2, 8)))
    }

    #[test]
    fn defaults() {
        let c = cfg();
        assert!(c.paq);
        assert_eq!(c.ncq_depth, 32);
        assert_eq!(c.ftl.max_transaction_bytes(), Some(2 << 20));
    }

    #[test]
    fn ufs_mode_removes_split_and_most_firmware() {
        let c = cfg().with_ufs();
        assert_eq!(c.ftl.max_transaction_bytes(), None);
        assert!(c.ftl.firmware_ns() < FtlMode::traditional_default().firmware_ns());
    }

    #[test]
    fn builders_compose() {
        let c = cfg().with_ufs().without_paq();
        assert!(!c.paq);
        assert!(matches!(c.ftl, FtlMode::Ufs { .. }));
    }
}
