//! The closed-loop device engine: queueing, translation, media dispatch,
//! host DMA, and run accounting.

use crate::config::SsdConfig;
use crate::ftl::Ftl;
use crate::mapping::{DecomposeScratch, StripeMap};
use crate::recovery::{erase_with_recovery, read_with_recovery, write_with_recovery};
use crate::report::{LatencyStats, ReliabilityStats, RunReport};
use flashsim::intervals::{merge, uncovered_len, Interval};
use flashsim::stats::RawStats;
use flashsim::{DieOp, MediaFaultState, MediaSim, PalHistogram, PalLevel};
use interconnect::LinkFaultSim;
use nvmtypes::convert::{u32_from, u64_from_usize, usize_from_u32};
use nvmtypes::fault::{STREAM_LINK, STREAM_MEDIA};
use nvmtypes::{HostRequest, IoOp, Nanos};
use ooctrace::BlockTrace;
use simobs::{LatencyAttribution, Layer, RequestBreakdown, Tracer};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A simulated SSD (or network-attached SSD) ready to replay block traces.
///
/// Each call to [`SsdDevice::run`] replays one trace against a fresh device
/// state with a **closed-loop** issue discipline: the trace's queue depth
/// (capped by the device's NCQ depth) bounds how many requests are
/// outstanding; a new request issues when a slot frees. Requests flagged
/// [`HostRequest::sync`] are dependency barriers: nothing later may issue
/// until they complete — this is how file-system metadata lookups and
/// journal commits serialise the device (§3.2).
///
/// ```
/// use flashsim::MediaConfig;
/// use interconnect::{pcie, LinkChain, PcieGen};
/// use nvmtypes::{BusTiming, HostRequest, NvmKind};
/// use ooctrace::BlockTrace;
/// use ssd::{SsdConfig, SsdDevice};
///
/// let media = MediaConfig::paper(NvmKind::Slc, BusTiming { name: "sdr", bytes_per_ns: 0.4 });
/// let host = LinkChain::single(pcie(PcieGen::Gen2, 8));
/// let device = SsdDevice::new(SsdConfig::new(media, host).with_ufs());
/// let trace = BlockTrace::from_requests(
///     (0..16).map(|i| HostRequest::read(i * (1 << 20), 1 << 20)).collect(),
///     16,
/// );
/// let report = device.run(&trace);
/// assert!(report.bandwidth_mb_s > 500.0);
/// assert_eq!(report.total_bytes, 16 << 20);
/// ```
#[derive(Debug, Clone)]
pub struct SsdDevice {
    cfg: SsdConfig,
    /// Stripe-rows pre-erased before the run (write workloads).
    pub pre_erased_rows: u64,
}

/// The media half of one request's timeline, as scheduled by the
/// dispatcher: when the earliest die-op began service and when the last
/// one completed. The gap between the dispatch start and `service_start`
/// is firmware/queueing time, not media time — the attribution split
/// depends on that boundary.
#[derive(Debug, Clone, Copy)]
struct MediaPhase {
    /// Earliest `DieOpOutcome::start` across the request's die-ops
    /// (equals the dispatch start when the request produced no ops).
    service_start: Nanos,
    /// Latest completion across the request's die-ops.
    end: Nanos,
}

/// Per-request PAL tracking state, reused across requests.
pub(crate) struct PalTracker {
    /// Bitmask of dies-in-channel touched, per channel.
    chan_dies: Vec<u32>,
    touched: Vec<u32>,
    multiplane: bool,
}

impl PalTracker {
    fn new(channels: usize) -> PalTracker {
        PalTracker {
            chan_dies: vec![0; channels],
            touched: Vec::new(),
            multiplane: false,
        }
    }

    fn reset(&mut self) {
        for &c in &self.touched {
            self.chan_dies[usize_from_u32(c)] = 0;
        }
        self.touched.clear();
        self.multiplane = false;
    }

    fn observe(&mut self, channel: u32, die_in_channel: u32, planes: u32) {
        if self.chan_dies[usize_from_u32(channel)] == 0 {
            self.touched.push(channel);
        }
        self.chan_dies[usize_from_u32(channel)] |= 1 << die_in_channel;
        if planes > 1 {
            self.multiplane = true;
        }
    }

    fn classify(&self) -> PalLevel {
        let die_interleaved = self
            .touched
            .iter()
            .any(|&c| self.chan_dies[usize_from_u32(c)].count_ones() > 1);
        PalLevel::classify(die_interleaved, self.multiplane)
    }
}

/// The mutable per-run engine: device media, translation state, fault
/// processes aside, and every piece of run accounting — extracted from
/// the request-servicing loop so the single-trace closed loop
/// ([`SsdDevice::run_observed`]) and the multi-tenant shared-fleet loop
/// ([`crate::qos`]) push requests through the *same* servicing code.
/// One tenant through the QoS path and the legacy path therefore
/// produce byte-identical reports by construction.
pub(crate) struct EngineState {
    /// The media simulator; `pub(crate)` so the QoS layer can bracket
    /// each tenant's dispatch with an arbitration tag.
    pub(crate) media: MediaSim,
    map: StripeMap,
    ftl: Ftl,
    host: interconnect::Link,
    paq: bool,
    firmware: Nanos,
    split_bytes: u64,
    page_size: u64,
    /// Fleet-level reliability accounting; the QoS layer folds
    /// per-tenant link-fault stats in before [`EngineState::finish`].
    pub(crate) rel: ReliabilityStats,
    host_free: Nanos,
    last_media_end: Nanos,
    host_busy: Nanos,
    dma_intervals: Vec<Interval>,
    pal_hist: PalHistogram,
    pal: PalTracker,
    latencies: Vec<Nanos>,
    // Precision latency distribution, fed on both the traced and
    // untraced paths from the same values — the observer-freedom
    // contract extends to it unchanged.
    latency_hdr: simobs::HdrHistogram,
    attribution: LatencyAttribution,
    makespan: Nanos,
    // Reused per-request working memory for stripe decomposition: the
    // service loop runs per event, so its buffers are hoisted here
    // (simlint `hotpath_alloc` keeps this path allocation-free).
    dmap: DecomposeScratch,
}

impl SsdDevice {
    /// New device for a configuration.
    pub fn new(cfg: SsdConfig) -> SsdDevice {
        // Steady state: the log allocator must erase before every new
        // block-row it enters (a fresh-from-trim device would set this
        // high).
        SsdDevice {
            cfg,
            pre_erased_rows: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SsdConfig {
        &self.cfg
    }

    /// Replays `trace` against a fresh device state.
    pub fn run(&self, trace: &BlockTrace) -> RunReport {
        self.run_observed(trace, &mut Tracer::off())
    }

    /// [`SsdDevice::run`] with an observer attached: when `obs` is
    /// enabled, the engine emits per-request spans, media die-op spans,
    /// FTL decision markers, host-DMA and link-replay spans, and latency
    /// metrics — all keyed to *simulated* nanoseconds. The tracer only
    /// reads values the engine has already computed and feeds nothing
    /// back, so any sink produces a byte-identical [`RunReport`] to
    /// [`Tracer::off`] (pinned by `tests/determinism.rs`).
    pub fn run_observed(&self, trace: &BlockTrace, obs: &mut Tracer) -> RunReport {
        let cfg = &self.cfg;
        let qd = usize_from_u32(cfg.ncq_depth.min(trace.queue_depth).max(1));
        let mut state = EngineState::new(self, trace.len());

        // Fault-injection state: absent entirely under a zero-rate plan,
        // so the fault-free path is byte-identical to the pre-fault code.
        let (mut media_faults, mut link_faults) = fault_states(&cfg.fault_plan, &cfg.media);

        let mut inflight: BinaryHeap<Reverse<Nanos>> = BinaryHeap::with_capacity(qd + 1);
        let mut prev_issue: Nanos = 0;

        for req in &trace.requests {
            // Closed-loop arrival.
            let mut issue = prev_issue;
            if inflight.len() >= qd {
                if let Some(Reverse(c)) = inflight.pop() {
                    issue = issue.max(c);
                }
            }

            let (completion, _) =
                state.service_one(req, issue, &mut media_faults, &mut link_faults, obs);
            if req.sync {
                // Dependency barrier: nothing later may issue until this
                // request (a metadata lookup or journal commit) completes.
                // Already-inflight requests keep going.
                prev_issue = completion;
            } else {
                inflight.push(Reverse(completion));
                prev_issue = issue;
            }
        }

        if let Some(lf) = &link_faults {
            state.rel.link = lf.stats();
        }
        state.finish(
            cfg,
            trace.total_bytes(),
            trace.data_bytes(),
            trace.len(),
            obs,
        )
    }
}

/// Builds the per-run fault processes for one fault plan against one
/// media configuration: `None` under a zero-rate plan so the fault-free
/// path never even constructs them. The QoS layer calls this once per
/// tenant — each tenant's plan owns an independent root stream.
pub(crate) fn fault_states(
    plan: &nvmtypes::fault::FaultPlan,
    media_cfg: &flashsim::MediaConfig,
) -> (Option<MediaFaultState>, Option<LinkFaultSim>) {
    let fault_root = plan.rng();
    let media = if plan.media.is_none() {
        None
    } else {
        Some(MediaFaultState::new(
            plan.media,
            media_cfg.timing.kind,
            u64::from(media_cfg.geometry.pages_per_block),
            fault_root.split(STREAM_MEDIA),
        ))
    };
    let link = if plan.link.is_none() {
        None
    } else {
        Some(LinkFaultSim::new(plan.link, fault_root.split(STREAM_LINK)))
    };
    (media, link)
}

impl EngineState {
    /// Fresh per-run state for one device. `requests_hint` pre-sizes the
    /// per-request vectors.
    pub(crate) fn new(dev: &SsdDevice, requests_hint: usize) -> EngineState {
        let cfg = &dev.cfg;
        let geometry = cfg.media.geometry;
        EngineState {
            media: MediaSim::new(cfg.media),
            map: StripeMap::new(geometry, cfg.stripe_order),
            ftl: Ftl::new(cfg.ftl, geometry, dev.pre_erased_rows)
                .with_page_size(cfg.media.timing.page_size),
            host: cfg.host.effective(),
            paq: cfg.paq,
            firmware: cfg.ftl.firmware_ns(),
            split_bytes: cfg.ftl.max_transaction_bytes().unwrap_or(u64::MAX),
            page_size: u64::from(cfg.media.timing.page_size),
            rel: ReliabilityStats::default(),
            host_free: 0,
            last_media_end: 0,
            host_busy: 0,
            dma_intervals: Vec::with_capacity(requests_hint),
            pal_hist: PalHistogram::default(),
            pal: PalTracker::new(usize_from_u32(geometry.channels)),
            latencies: Vec::with_capacity(requests_hint),
            latency_hdr: simobs::HdrHistogram::new(),
            attribution: LatencyAttribution::default(),
            makespan: 0,
            dmap: DecomposeScratch::new(),
        }
    }

    /// Raw die-side vs channel-side activity evidence at one instant; the
    /// per-request deltas drive the die/channel attribution split.
    fn media_weights(stats: &RawStats) -> (u64, u64) {
        (
            stats.cell_activation + stats.cell_contention,
            stats.channel_activation + stats.flash_bus_activation + stats.channel_contention,
        )
    }

    /// Services one request issued at `issue` end to end — media
    /// dispatch, host DMA, PAL classification, latency recording and
    /// exact attribution — returning its completion time and the
    /// breakdown that was absorbed into the run's attribution (already
    /// collapsed to `fs_meta` for sync requests). The caller owns the
    /// issue discipline: closed-loop slots, barriers and (in the QoS
    /// layer) fair-queueing order all happen outside.
    pub(crate) fn service_one(
        &mut self,
        req: &HostRequest,
        issue: Nanos,
        media_faults: &mut Option<MediaFaultState>,
        link_faults: &mut Option<LinkFaultSim>,
        obs: &mut Tracer,
    ) -> (Nanos, RequestBreakdown) {
        self.pal.reset();
        // Snapshots bracketing the media phase: the deltas drive the
        // die/channel split and the recovery carve-out below.
        let (die_w0, chan_w0) = Self::media_weights(self.media.stats());
        let recovery0 = self.rel.media_recovery_ns;
        let (completion, breakdown) = match req.op {
            IoOp::Read => {
                let phase = self.dispatch_media(req, issue, media_faults, obs);
                // Device buffer -> host DMA after media completes;
                // CRC errors replay the transfer (added latency only).
                let dma_start = phase.end.max(self.host_free);
                let base_dma = self.host.request_ns(req.len);
                let penalty = link_faults.as_mut().map_or(0, |lf| {
                    lf.transfer_penalty_traced(base_dma, dma_start + base_dma, obs)
                });
                let dma_end = dma_start + base_dma + penalty;
                self.host_free = dma_end;
                self.host_busy += dma_end - dma_start;
                self.dma_intervals.push((dma_start, dma_end));
                obs.span(
                    Layer::Link,
                    "host_dma",
                    dma_start,
                    dma_start + base_dma,
                    [("bytes", req.len), ("", 0)],
                );
                // Exact decomposition of dma_end - issue: everything
                // before media service and between media completion
                // and the DMA grant is queueing; the media wall nets
                // out recovery, then splits die/channel.
                let (die_w, chan_w) = Self::media_weights(self.media.stats());
                let service_wall = phase.end - phase.service_start;
                let recovery_media = (self.rel.media_recovery_ns - recovery0).min(service_wall);
                let (die_ns, channel_ns) = RequestBreakdown::split_service(
                    service_wall - recovery_media,
                    die_w - die_w0,
                    chan_w - chan_w0,
                );
                let bd = RequestBreakdown {
                    queue_ns: (phase.service_start - issue) + (dma_start - phase.end),
                    die_ns,
                    channel_ns,
                    link_ns: base_dma,
                    fs_meta_ns: 0,
                    recovery_ns: recovery_media + penalty,
                    total_ns: dma_end - issue,
                };
                (dma_end, bd)
            }
            IoOp::Write => {
                // Host -> device buffer DMA before media programs.
                let dma_start = issue.max(self.host_free);
                let base_dma = self.host.request_ns(req.len);
                let penalty = link_faults.as_mut().map_or(0, |lf| {
                    lf.transfer_penalty_traced(base_dma, dma_start + base_dma, obs)
                });
                let dma_end = dma_start + base_dma + penalty;
                self.host_free = dma_end;
                self.host_busy += dma_end - dma_start;
                self.dma_intervals.push((dma_start, dma_end));
                obs.span(
                    Layer::Link,
                    "host_dma",
                    dma_start,
                    dma_start + base_dma,
                    [("bytes", req.len), ("", 0)],
                );
                let phase = self.dispatch_media(req, dma_end, media_faults, obs);
                let (die_w, chan_w) = Self::media_weights(self.media.stats());
                let service_wall = phase.end - phase.service_start;
                let recovery_media = (self.rel.media_recovery_ns - recovery0).min(service_wall);
                let (die_ns, channel_ns) = RequestBreakdown::split_service(
                    service_wall - recovery_media,
                    die_w - die_w0,
                    chan_w - chan_w0,
                );
                let bd = RequestBreakdown {
                    queue_ns: (dma_start - issue) + (phase.service_start - dma_end),
                    die_ns,
                    channel_ns,
                    link_ns: base_dma,
                    fs_meta_ns: 0,
                    recovery_ns: recovery_media + penalty,
                    total_ns: phase.end - issue,
                };
                (phase.end, bd)
            }
        };
        self.pal_hist.add(self.pal.classify());
        let total_latency = completion.saturating_sub(issue);
        self.latencies.push(total_latency);
        self.latency_hdr.record(total_latency);
        // Sync requests *are* file-system overhead end to end
        // (metadata lookups, journal commits): the whole latency is
        // fs_meta rather than a split of its internals.
        let absorbed = if req.sync {
            RequestBreakdown {
                fs_meta_ns: total_latency,
                total_ns: total_latency,
                ..RequestBreakdown::default()
            }
        } else {
            breakdown
        };
        self.attribution.absorb(absorbed);
        if obs.enabled() {
            obs.span(
                Layer::Ssd,
                match req.op {
                    IoOp::Read => "read",
                    IoOp::Write => "write",
                },
                issue,
                completion,
                [("bytes", req.len), ("sync", u64::from(req.sync))],
            );
            obs.count("ssd.requests", 1);
            if req.sync {
                obs.count("ssd.sync_requests", 1);
            }
            obs.observe_ns("ssd.latency_ns", total_latency);
            obs.observe_hdr_ns("ssd.latency_ns", total_latency);
        }
        self.makespan = self.makespan.max(completion);
        (completion, absorbed)
    }

    /// Rolls the accumulated state up into the [`RunReport`]. The caller
    /// sets `rel.link` first (one fault process on the legacy path; a
    /// per-tenant aggregate on the QoS path).
    pub(crate) fn finish(
        self,
        cfg: &SsdConfig,
        total_bytes: u64,
        data_bytes: u64,
        requests: usize,
        obs: &mut Tracer,
    ) -> RunReport {
        // Host-DMA accounting. A request's DMA phase never overlaps its
        // own media phase (reads transfer after sensing, writes before
        // programming), so the lifecycle bucket of Figure 10 is the full
        // host-transfer time; `dma_media_idle` additionally measures how
        // much of it the device spent fully idle (the network-starvation
        // signature of the ION configurations).
        let mut rel = self.rel;
        let makespan = self.makespan;
        let stats = self.media.into_stats();
        let busy = merge(
            stats
                .die_intervals
                .iter()
                .map(|&(_, s, e)| (s, e))
                .collect(),
        );
        let dma_media_idle: Nanos = self
            .dma_intervals
            .iter()
            .map(|&(s, e)| uncovered_len(s, e, &busy))
            .sum();

        rel.spare_blocks_left = self.ftl.spare_blocks_left();
        let energy = flashsim::energy::assess(&stats, &cfg.media, makespan);
        let media_report = stats.finalize(&cfg.media, makespan, self.host_busy);
        if obs.enabled() {
            obs.span(
                Layer::Run,
                "device_run",
                0,
                makespan,
                [
                    ("requests", u64_from_usize(requests)),
                    ("bytes", total_bytes),
                ],
            );
            obs.count("ssd.bytes", total_bytes);
            obs.gauge("run.makespan_ns", makespan);
        }
        RunReport {
            makespan,
            requests: u64_from_usize(requests),
            total_bytes,
            data_bytes,
            bandwidth_mb_s: nvmtypes::mb_per_s(total_bytes, makespan),
            data_bandwidth_mb_s: nvmtypes::mb_per_s(data_bytes, makespan),
            host_busy: self.host_busy,
            dma_media_idle,
            media: media_report,
            pal: self.pal_hist,
            wear: self.ftl.wear().clone(),
            energy,
            latency: LatencyStats::from_latencies(self.latencies),
            latency_hdr: self.latency_hdr,
            reliability: rel,
            attribution: self.attribution,
        }
    }

    /// Translates one request and executes its die-ops; returns the media
    /// phase (earliest service start, last completion).
    fn dispatch_media(
        &mut self,
        req: &HostRequest,
        start: Nanos,
        faults: &mut Option<MediaFaultState>,
        obs: &mut Tracer,
    ) -> MediaPhase {
        let geometry = *self.map.geometry();
        let channels = geometry.channels;
        let planes_per_die = u64::from(geometry.planes_per_die);
        let page_size = self.page_size;
        let mut media_end = start;
        let mut first_service: Nanos = Nanos::MAX;
        let mut offset = req.offset;
        let mut remaining = req.len;
        let mut split_idx: u64 = 0;
        let capacity_pages = geometry.total_pages();

        while remaining > 0 {
            let chunk = remaining.min(self.split_bytes);
            split_idx += 1;
            // Each internal transaction pays firmware processing.
            let mut t0 = start + self.firmware * split_idx;
            if !self.paq {
                // Without physically-addressed queueing the controller
                // serialises media service per transaction.
                t0 = t0.max(self.last_media_end);
            }
            let piece = HostRequest {
                op: req.op,
                offset,
                len: chunk,
                sync: req.sync,
            };
            let first = piece.first_page(u32_from(page_size)) % capacity_pages;
            let count = piece.page_count(u32_from(page_size));

            let (lpn, erase_rows, gc_moves) = match req.op {
                IoOp::Read => (self.ftl.translate_read(first, count) % capacity_pages, 0, 0),
                IoOp::Write => {
                    let placement = self.ftl.translate_write(first, count);
                    (
                        placement.start_lpn % capacity_pages,
                        placement.rows_to_erase,
                        placement.gc_moves,
                    )
                }
            };

            if gc_moves > 0 {
                obs.instant(Layer::Ftl, "gc", t0, [("moves", gc_moves), ("", 0)]);
                // Garbage collection ahead of the host data: read the
                // survivors, rewrite them at the frontier.
                let gc_pages = (gc_moves * 4096).div_ceil(page_size).max(1);
                self.map.decompose_into(lpn, gc_pages, &mut self.dmap);
                for i in 0..self.dmap.runs.len() {
                    let run = self.dmap.runs[i];
                    let read_op = DieOp::read(run.die, run.planes, run.pages, run.start_row);
                    let read_out = match faults {
                        Some(fs) => read_with_recovery(
                            &mut self.media,
                            &read_op,
                            t0,
                            fs,
                            &mut self.ftl,
                            &mut self.rel,
                            obs,
                        ),
                        None => self.media.execute_traced(t0, &read_op, obs),
                    };
                    first_service = first_service.min(read_out.start);
                    media_end = media_end.max(read_out.end);
                    let write_op = DieOp::write(run.die, run.planes, run.pages, run.start_row);
                    let write_out = match faults {
                        Some(fs) => write_with_recovery(
                            &mut self.media,
                            &write_op,
                            read_out.end,
                            fs,
                            &mut self.rel,
                            obs,
                        ),
                        None => self.media.execute_traced(read_out.end, &write_op, obs),
                    };
                    media_end = media_end.max(write_out.end);
                }
            }

            if erase_rows > 0 {
                obs.instant(
                    Layer::Ftl,
                    "erase_rows",
                    t0,
                    [("rows", erase_rows), ("", 0)],
                );
                // Erase the new block-row(s) on every die before programming.
                for die in 0..geometry.total_dies() {
                    let blocks = erase_rows * planes_per_die;
                    let erase_op = DieOp::erase(nvmtypes::DieIndex(die), blocks);
                    let erase_out = match faults {
                        Some(fs) => erase_with_recovery(
                            &mut self.media,
                            &erase_op,
                            t0,
                            fs,
                            &mut self.ftl,
                            &mut self.rel,
                            obs,
                        ),
                        None => self.media.execute_traced(t0, &erase_op, obs),
                    };
                    first_service = first_service.min(erase_out.start);
                    media_end = media_end.max(erase_out.end);
                }
            }

            self.map.decompose_into(lpn, count, &mut self.dmap);
            for i in 0..self.dmap.runs.len() {
                let run = self.dmap.runs[i];
                let out = match req.op {
                    IoOp::Read => {
                        let op = DieOp::read(run.die, run.planes, run.pages, run.start_row);
                        match faults {
                            Some(fs) => read_with_recovery(
                                &mut self.media,
                                &op,
                                t0,
                                fs,
                                &mut self.ftl,
                                &mut self.rel,
                                obs,
                            ),
                            None => self.media.execute_traced(t0, &op, obs),
                        }
                    }
                    IoOp::Write => {
                        let op = DieOp::write(run.die, run.planes, run.pages, run.start_row);
                        match faults {
                            Some(fs) => write_with_recovery(
                                &mut self.media,
                                &op,
                                t0,
                                fs,
                                &mut self.rel,
                                obs,
                            ),
                            None => self.media.execute_traced(t0, &op, obs),
                        }
                    }
                };
                first_service = first_service.min(out.start);
                media_end = media_end.max(out.end);
                self.pal
                    .observe(run.die.channel(&geometry), run.die.0 / channels, run.planes);
            }

            offset += chunk;
            remaining -= chunk;
        }
        self.last_media_end = self.last_media_end.max(media_end);
        MediaPhase {
            service_start: if first_service == Nanos::MAX {
                start
            } else {
                first_service
            },
            end: media_end,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashsim::MediaConfig;
    use interconnect::{pcie, LinkChain, PcieGen};
    use nvmtypes::{BusTiming, NvmKind, MIB};

    fn sdr400() -> BusTiming {
        BusTiming {
            name: "ONFi3-SDR-400",
            bytes_per_ns: 0.4,
        }
    }

    fn paper_device(kind: NvmKind) -> SsdDevice {
        let media = MediaConfig::paper(kind, sdr400());
        let cfg = SsdConfig::new(media, LinkChain::single(pcie(PcieGen::Gen2, 8)));
        SsdDevice::new(cfg)
    }

    fn seq_read_trace(total: u64, req: u64, qd: u32) -> BlockTrace {
        let mut reqs = Vec::new();
        let mut off = 0;
        while off < total {
            reqs.push(HostRequest::read(off, req.min(total - off)));
            off += req;
        }
        BlockTrace::from_requests(reqs, qd)
    }

    #[test]
    fn sequential_read_delivers_positive_bandwidth() {
        let dev = paper_device(NvmKind::Tlc);
        let rep = dev.run(&seq_read_trace(64 * MIB, MIB, 32));
        assert!(rep.bandwidth_mb_s > 100.0, "got {}", rep.bandwidth_mb_s);
        assert_eq!(rep.total_bytes, 64 * MIB);
        assert!(rep.makespan > 0);
    }

    #[test]
    fn ufs_outperforms_traditional_ftl_on_large_requests() {
        let media = MediaConfig::paper(NvmKind::Tlc, sdr400());
        let host = LinkChain::single(pcie(PcieGen::Gen2, 8));
        let trad = SsdDevice::new(SsdConfig::new(media, host.clone()));
        let ufs = SsdDevice::new(SsdConfig::new(media, host).with_ufs());
        let trace = seq_read_trace(64 * MIB, 4 * MIB, 32);
        let a = trad.run(&trace);
        let b = ufs.run(&trace);
        assert!(
            b.bandwidth_mb_s > a.bandwidth_mb_s,
            "ufs {} vs trad {}",
            b.bandwidth_mb_s,
            a.bandwidth_mb_s
        );
    }

    #[test]
    fn ufs_large_requests_reach_pal4() {
        let dev = SsdDevice::new(
            SsdConfig::new(
                MediaConfig::paper(NvmKind::Tlc, sdr400()),
                LinkChain::single(pcie(PcieGen::Gen2, 8)),
            )
            .with_ufs(),
        );
        let rep = dev.run(&seq_read_trace(64 * MIB, 4 * MIB, 32));
        let p = rep.pal.percent();
        assert!(p[3] > 90.0, "PAL4 was {p:?}");
    }

    #[test]
    fn tiny_requests_stay_at_low_pal() {
        // Single-page reads never interleave dies or planes.
        let dev = paper_device(NvmKind::Tlc);
        let reqs: Vec<HostRequest> = (0..64).map(|i| HostRequest::read(i * 8192, 8192)).collect();
        let rep = dev.run(&BlockTrace::from_requests(reqs, 8));
        let p = rep.pal.percent();
        assert!(p[0] > 99.0, "PAL1 was {p:?}");
    }

    #[test]
    fn deeper_queue_helps_small_requests() {
        let dev = paper_device(NvmKind::Tlc);
        let shallow = dev.run(&seq_read_trace(32 * MIB, 128 * 1024, 2));
        let deep = dev.run(&seq_read_trace(32 * MIB, 128 * 1024, 32));
        assert!(
            deep.bandwidth_mb_s > shallow.bandwidth_mb_s * 1.5,
            "deep {} vs shallow {}",
            deep.bandwidth_mb_s,
            shallow.bandwidth_mb_s
        );
    }

    #[test]
    fn sync_requests_act_as_barriers() {
        let dev = paper_device(NvmKind::Tlc);
        let total = 32 * MIB;
        let plain = dev.run(&seq_read_trace(total, 256 * 1024, 16));
        // Same workload with a sync metadata read every 8 data requests.
        let mut reqs = Vec::new();
        let mut off = 0;
        let mut i = 0;
        while off < total {
            if i % 8 == 7 {
                reqs.push(HostRequest::read(off, 4096).synchronous());
            }
            reqs.push(HostRequest::read(off, 256 * 1024));
            off += 256 * 1024;
            i += 1;
        }
        let stalled = dev.run(&BlockTrace::from_requests(reqs, 16));
        assert!(
            stalled.data_bandwidth_mb_s < plain.data_bandwidth_mb_s * 0.8,
            "stalled {} vs plain {}",
            stalled.data_bandwidth_mb_s,
            plain.data_bandwidth_mb_s
        );
    }

    #[test]
    fn pcm_obscures_request_size_differences() {
        // §4.3: PCM's read speed hides file-system differences behind the
        // interface ceiling.
        let dev = paper_device(NvmKind::Pcm);
        let small = dev.run(&seq_read_trace(32 * MIB, 64 * 1024, 4));
        let large = dev.run(&seq_read_trace(32 * MIB, 2 * MIB, 4));
        let ratio = large.bandwidth_mb_s / small.bandwidth_mb_s;
        assert!(ratio < 1.5, "PCM ratio {ratio} too large");
        // While on TLC the same change matters a lot: 150 µs senses starve
        // a shallow queue of small requests.
        let tlc = paper_device(NvmKind::Tlc);
        let ts = tlc.run(&seq_read_trace(32 * MIB, 64 * 1024, 4));
        let tl = tlc.run(&seq_read_trace(32 * MIB, 2 * MIB, 4));
        let tlc_ratio = tl.bandwidth_mb_s / ts.bandwidth_mb_s;
        assert!(tlc_ratio > 2.0 * ratio, "tlc {tlc_ratio} vs pcm {ratio}");
    }

    #[test]
    fn writes_trigger_erases_and_wear() {
        let mut dev = paper_device(NvmKind::Slc);
        dev.pre_erased_rows = 0;
        let mut reqs = Vec::new();
        for i in 0..64u64 {
            reqs.push(HostRequest::write(i * MIB, MIB));
        }
        let rep = dev.run(&BlockTrace::from_requests(reqs, 8));
        assert!(rep.wear.erases > 0);
        assert!(rep.bandwidth_mb_s > 0.0);
    }

    #[test]
    fn paq_improves_concurrent_service() {
        let media = MediaConfig::paper(NvmKind::Tlc, sdr400());
        let host = LinkChain::single(pcie(PcieGen::Gen2, 8));
        let with_paq = SsdDevice::new(SsdConfig::new(media, host.clone()));
        let without = SsdDevice::new(SsdConfig::new(media, host).without_paq());
        let trace = seq_read_trace(32 * MIB, 128 * 1024, 32);
        let a = with_paq.run(&trace);
        let b = without.run(&trace);
        assert!(
            a.bandwidth_mb_s > b.bandwidth_mb_s,
            "paq {} vs nopaq {}",
            a.bandwidth_mb_s,
            b.bandwidth_mb_s
        );
    }

    #[test]
    fn breakdown_buckets_are_all_populated_for_mixed_load() {
        let dev = paper_device(NvmKind::Tlc);
        let rep = dev.run(&seq_read_trace(32 * MIB, 256 * 1024, 16));
        let b = &rep.media.breakdown;
        assert!(b.cell_activation > 0);
        assert!(b.channel_activation > 0);
        assert!(b.flash_bus_activation > 0);
        assert!((b.percent().iter().sum::<f64>() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn latency_percentiles_reflect_media_speed() {
        // Single-page reads at queue depth 1: latency is sense-dominated,
        // so the Table-1 hierarchy shows through directly.
        let slc = paper_device(NvmKind::Slc);
        let tlc = paper_device(NvmKind::Tlc);
        let trace = |page: u64| {
            ooctrace::BlockTrace::from_requests(
                (0..64).map(|i| HostRequest::read(i * page, page)).collect(),
                1,
            )
        };
        let a = slc.run(&trace(2048));
        let b = tlc.run(&trace(8192));
        assert!(a.latency.p50 > 0);
        assert!(
            b.latency.p50 > a.latency.p50,
            "TLC p50 {} vs SLC {}",
            b.latency.p50,
            a.latency.p50
        );
        assert!(b.latency.p99 >= b.latency.p50);
        assert!(b.latency.max >= b.latency.p99);
    }

    #[test]
    fn report_conserves_bytes() {
        let dev = paper_device(NvmKind::Mlc);
        let trace = seq_read_trace(16 * MIB, MIB, 8);
        let rep = dev.run(&trace);
        // Media moved at least the payload (page-aligned over-read allowed).
        assert!(rep.media.bytes >= rep.total_bytes);
        assert_eq!(rep.requests, trace.len() as u64);
    }
}
