//! Device-level recovery mechanics: the ECC read-retry ladder, program
//! retries, erase retries and bad-block retirement.
//!
//! The media layer (`flashsim::fault`) decides *what* goes wrong; this
//! module decides *what the controller does about it* and what it
//! costs. Every recovery action is expressed as additional [`DieOp`]s
//! executed through the same [`MediaSim`] resource-reservation engine
//! as the original operation, so recovery traffic contends for dies and
//! channel buses exactly like regular traffic — and, because the
//! engine's per-resource `free_at` times are monotone, retries can only
//! *delay* an operation, never make one finish earlier, and a die's
//! completions stay in issue order (pinned by `tests/prop_faults.rs`).

use crate::ftl::Ftl;
use crate::report::ReliabilityStats;
use flashsim::{DieOp, DieOpOutcome, MediaFaultState, MediaSim};
use nvmtypes::Nanos;
use simobs::{Layer, Tracer};

/// Executes a read op and, if the fault state decrees errors, walks the
/// escalating ECC read-retry ladder: tier `t` re-senses the page after
/// an extra `t * tier_extra_ns` reference-shift delay. Pages that
/// exhaust every tier are uncorrectable: the block is retired via
/// [`Ftl::note_bad_block`]. Read-disturb refreshes re-program one page.
/// Returns the primary op's service start and the final completion time
/// (after all recovery traffic).
#[allow(clippy::too_many_arguments)]
pub fn read_with_recovery(
    media: &mut MediaSim,
    op: &DieOp,
    start: Nanos,
    faults: &mut MediaFaultState,
    ftl: &mut Ftl,
    rel: &mut ReliabilityStats,
    obs: &mut Tracer,
) -> DieOpOutcome {
    let out = media.execute_traced(start, op, obs);
    let mut end = out.end;
    let sample = faults.sample_read(op);
    if sample.is_clean() {
        return out;
    }
    let before_retries = rel.ecc_retries;
    let profile = *faults.profile();
    let retry_op = DieOp::read(op.die, 1, 1, op.start_page);
    for &tier in &sample.corrected_tiers {
        rel.read_errors += 1;
        for t in 1..=tier {
            let r = media.execute(end + profile.tier_extra_ns * u64::from(t), &retry_op);
            end = r.end;
            rel.ecc_retries += 1;
        }
    }
    for _page in 0..sample.uncorrectable {
        rel.read_errors += 1;
        rel.uncorrectable += 1;
        // The full ladder is burned before the controller gives up.
        for t in 1..=profile.ecc_tiers {
            let r = media.execute(end + profile.tier_extra_ns * u64::from(t), &retry_op);
            end = r.end;
            rel.ecc_retries += 1;
        }
        if ftl.note_bad_block() {
            rel.bad_blocks_remapped += 1;
        }
    }
    for _refresh in 0..sample.disturb_refreshes {
        // Refresh: re-program the disturbed page before it degrades.
        let w = media.execute(end, &DieOp::write(op.die, 1, 1, op.start_page));
        end = w.end;
        rel.disturb_refreshes += 1;
    }
    rel.media_recovery_ns += end - out.end;
    if end > out.end && obs.enabled() {
        obs.span(
            Layer::Ssd,
            "ecc_recovery",
            out.end,
            end,
            [
                ("retries", rel.ecc_retries - before_retries),
                ("refreshes", sample.disturb_refreshes),
            ],
        );
    }
    DieOpOutcome {
        start: out.start,
        end,
    }
}

/// Executes a write op; failed page programs are retried once each (the
/// controller re-programs into the same block). Returns the primary op's
/// service start and the final completion time.
pub fn write_with_recovery(
    media: &mut MediaSim,
    op: &DieOp,
    start: Nanos,
    faults: &mut MediaFaultState,
    rel: &mut ReliabilityStats,
    obs: &mut Tracer,
) -> DieOpOutcome {
    let out = media.execute_traced(start, op, obs);
    let mut end = out.end;
    let fails = faults.sample_program(op);
    if fails == 0 {
        return out;
    }
    for _page in 0..fails {
        let w = media.execute(end, &DieOp::write(op.die, 1, 1, op.start_page));
        end = w.end;
        rel.program_retries += 1;
    }
    rel.media_recovery_ns += end - out.end;
    if end > out.end && obs.enabled() {
        obs.span(
            Layer::Ssd,
            "program_retry",
            out.end,
            end,
            [("retries", fails), ("", 0)],
        );
    }
    DieOpOutcome {
        start: out.start,
        end,
    }
}

/// Executes an erase op; failed block erases retire their block (remap
/// to spare) and re-erase a replacement. Returns the primary op's
/// service start and the final completion time.
pub fn erase_with_recovery(
    media: &mut MediaSim,
    op: &DieOp,
    start: Nanos,
    faults: &mut MediaFaultState,
    ftl: &mut Ftl,
    rel: &mut ReliabilityStats,
    obs: &mut Tracer,
) -> DieOpOutcome {
    let out = media.execute_traced(start, op, obs);
    let mut end = out.end;
    let fails = faults.sample_erase(op.die.0, op.pages);
    if fails == 0 {
        return out;
    }
    for _block in 0..fails {
        rel.erase_failures += 1;
        if ftl.note_bad_block() {
            rel.bad_blocks_remapped += 1;
        }
        // Erase the replacement spare block before use.
        let e = media.execute(end, &DieOp::erase(op.die, 1));
        end = e.end;
    }
    rel.media_recovery_ns += end - out.end;
    if end > out.end && obs.enabled() {
        obs.span(
            Layer::Ssd,
            "erase_retry",
            out.end,
            end,
            [("failures", fails), ("", 0)],
        );
    }
    DieOpOutcome {
        start: out.start,
        end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FtlMode;
    use flashsim::MediaConfig;
    use nvmtypes::fault::{FaultPlan, MediaFaultProfile, STREAM_MEDIA};
    use nvmtypes::{BusTiming, DieIndex, NvmKind, SsdGeometry};

    fn harness(profile: MediaFaultProfile) -> (MediaSim, MediaFaultState, Ftl) {
        let media = MediaConfig::tiny(
            NvmKind::Tlc,
            BusTiming {
                name: "t",
                bytes_per_ns: 0.4,
            },
        );
        let rng = FaultPlan {
            seed: 5,
            ..FaultPlan::none()
        }
        .rng()
        .split(STREAM_MEDIA);
        let faults = MediaFaultState::new(
            profile,
            NvmKind::Tlc,
            u64::from(media.geometry.pages_per_block),
            rng,
        );
        let ftl = Ftl::new(FtlMode::ufs_default(), SsdGeometry::tiny(), 0).with_page_size(8192);
        (MediaSim::new(media), faults, ftl)
    }

    #[test]
    fn clean_reads_cost_exactly_the_base_op() {
        let (mut media, mut faults, mut ftl) = harness(MediaFaultProfile::none());
        let (mut media2, _, _) = harness(MediaFaultProfile::none());
        let op = DieOp::read(DieIndex(0), 2, 8, 0);
        let mut rel = ReliabilityStats::default();
        let mut obs = Tracer::off();
        let out = read_with_recovery(
            &mut media,
            &op,
            0,
            &mut faults,
            &mut ftl,
            &mut rel,
            &mut obs,
        );
        let base = media2.execute(0, &op);
        assert_eq!(out, base);
        assert_eq!(rel, ReliabilityStats::default());
    }

    #[test]
    fn errored_reads_pay_escalating_retries() {
        let profile = MediaFaultProfile {
            page_error_prob: 1.0, // every page errs
            ..MediaFaultProfile::none()
        };
        let (mut media, mut faults, mut ftl) = harness(profile);
        let op = DieOp::read(DieIndex(0), 1, 4, 0);
        let mut rel = ReliabilityStats::default();
        let mut obs = Tracer::off();
        let out = read_with_recovery(
            &mut media,
            &op,
            0,
            &mut faults,
            &mut ftl,
            &mut rel,
            &mut obs,
        );
        let (mut clean_media, _, _) = harness(profile);
        let base = clean_media.execute(0, &op);
        assert_eq!(rel.read_errors, 4);
        assert!(rel.ecc_retries >= 4);
        assert!(rel.media_recovery_ns > 0);
        assert_eq!(
            out.start, base.start,
            "recovery must not move the service start"
        );
        assert!(out.end > base.end, "retries must extend the completion");
    }

    #[test]
    fn uncorrectable_pages_retire_blocks() {
        let profile = MediaFaultProfile {
            page_error_prob: 1.0,
            ecc_tiers: 0, // no ladder: every error is uncorrectable
            ..MediaFaultProfile::none()
        };
        let (mut media, mut faults, mut ftl) = harness(profile);
        let op = DieOp::read(DieIndex(0), 1, 3, 0);
        let mut rel = ReliabilityStats::default();
        let mut obs = Tracer::off();
        let _out = read_with_recovery(
            &mut media,
            &op,
            0,
            &mut faults,
            &mut ftl,
            &mut rel,
            &mut obs,
        );
        assert_eq!(rel.uncorrectable, 3);
        assert_eq!(rel.bad_blocks_remapped, 3);
        assert_eq!(ftl.bad_blocks(), 3);
    }

    #[test]
    fn program_and_erase_failures_accumulate() {
        let profile = MediaFaultProfile {
            program_fail_prob: 1.0,
            erase_fail_prob: 1.0,
            ..MediaFaultProfile::none()
        };
        let (mut media, mut faults, mut ftl) = harness(profile);
        let mut rel = ReliabilityStats::default();
        let mut obs = Tracer::off();
        let w = DieOp::write(DieIndex(0), 1, 2, 0);
        let we = write_with_recovery(&mut media, &w, 0, &mut faults, &mut rel, &mut obs).end;
        assert_eq!(rel.program_retries, 2);
        let e = DieOp::erase(DieIndex(0), 2);
        let ee = erase_with_recovery(
            &mut media,
            &e,
            we,
            &mut faults,
            &mut ftl,
            &mut rel,
            &mut obs,
        )
        .end;
        assert_eq!(rel.erase_failures, 2);
        assert_eq!(rel.bad_blocks_remapped, 2);
        assert!(ee > we);
    }

    #[test]
    fn recovery_spans_land_on_the_ssd_layer() {
        let profile = MediaFaultProfile {
            page_error_prob: 1.0,
            ..MediaFaultProfile::none()
        };
        let (mut media, mut faults, mut ftl) = harness(profile);
        let op = DieOp::read(DieIndex(0), 1, 4, 0);
        let mut rel = ReliabilityStats::default();
        let mut obs = Tracer::ring(256);
        let out = read_with_recovery(
            &mut media,
            &op,
            0,
            &mut faults,
            &mut ftl,
            &mut rel,
            &mut obs,
        );
        let log = obs.finish();
        let rec = log
            .events
            .iter()
            .find(|e| e.layer == Layer::Ssd && e.name == "ecc_recovery")
            .expect("recovery span emitted");
        assert_eq!(rec.ts + rec.dur, out.end);
        assert!(log
            .events
            .iter()
            .any(|e| e.layer == Layer::Media && e.name == "die_read"));
    }
}
