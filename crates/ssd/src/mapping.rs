//! Physical striping layout and request decomposition.
//!
//! Consecutive logical pages are spread across the device's parallelism
//! dimensions in a configurable order. One *stripe* covers every
//! `(channel, package, die, plane)` slot exactly once; logical page `lpn`
//! occupies slot `lpn % stripe_width` of row `lpn / stripe_width`.
//!
//! The default order — channel first, then plane, then die, then package —
//! is the page-allocation strategy that makes small requests stripe over
//! channels (PAL1), medium requests engage multi-plane mode (PAL3), and
//! only large requests reach die interleaving (PAL4), which is exactly the
//! progression the paper observes between striped parallel-file-system
//! traffic and large UFS transactions (§4.5).

use nvmtypes::convert::{u32_from, u64_from_usize, usize_from_u32};
use nvmtypes::{DieIndex, SsdGeometry};
use serde::{Deserialize, Serialize};

/// A parallelism dimension of the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dim {
    /// Channel (shared bus) index.
    Channel,
    /// Package within a channel.
    Package,
    /// Die within a package.
    Die,
    /// Plane within a die.
    Plane,
}

/// The default allocation order: stripe channels fastest, then planes,
/// then dies, then packages.
pub const DEFAULT_ORDER: [Dim; 4] = [Dim::Channel, Dim::Plane, Dim::Die, Dim::Package];

/// The work a single die receives from one host request: `pages` pages
/// engaging `planes` distinct planes, starting around plane-row
/// `start_row`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DieRun {
    /// Target die.
    pub die: DieIndex,
    /// Distinct planes engaged (1..=planes_per_die).
    pub planes: u32,
    /// Pages moved on this die.
    pub pages: u64,
    /// Representative page index within the plane (drives program-latency
    /// classes and PCM read jitter).
    pub start_row: u64,
}

/// Reusable working memory for [`StripeMap::decompose_into`]: per-die
/// accumulators plus the output run list, sized once and reused across
/// every request of a run so the per-event service loop allocates
/// nothing.
#[derive(Debug, Default, Clone)]
pub struct DecomposeScratch {
    /// Pages accumulated per die (dense, indexed by flat die index).
    pages: Vec<u64>,
    /// Distinct-plane bitmask per die.
    plane_mask: Vec<u32>,
    /// The decomposed runs — the output of the last `decompose_into`.
    pub runs: Vec<DieRun>,
}

impl DecomposeScratch {
    /// Fresh, empty scratch; buffers grow on first use and stay.
    pub fn new() -> DecomposeScratch {
        DecomposeScratch::default()
    }

    /// Resets the accumulators for `n_dies` dies without shrinking.
    fn reset(&mut self, n_dies: usize) {
        self.pages.clear();
        self.pages.resize(n_dies, 0);
        self.plane_mask.clear();
        self.plane_mask.resize(n_dies, 0);
        self.runs.clear();
    }
}

/// Deterministic logical-page → physical-slot mapping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct StripeMap {
    geometry: SsdGeometry,
    order: [Dim; 4],
    sizes: [u64; 4],
}

impl StripeMap {
    /// Builds a map for `geometry` striping in `order` (fastest-varying
    /// dimension first).
    ///
    /// # Panics
    /// Panics if `order` repeats a dimension.
    pub fn new(geometry: SsdGeometry, order: [Dim; 4]) -> StripeMap {
        let mut seen = [false; 4];
        for d in order {
            let i = match d {
                Dim::Channel => 0,
                Dim::Package => 1,
                Dim::Die => 2,
                Dim::Plane => 3,
            };
            assert!(!seen[i], "stripe order repeats {:?}", d);
            seen[i] = true;
        }
        let size_of = |d: Dim| -> u64 {
            match d {
                Dim::Channel => u64::from(geometry.channels),
                Dim::Package => u64::from(geometry.packages_per_channel),
                Dim::Die => u64::from(geometry.dies_per_package),
                Dim::Plane => u64::from(geometry.planes_per_die),
            }
        };
        StripeMap {
            geometry,
            order,
            sizes: order.map(size_of),
        }
    }

    /// Map with the default order.
    pub fn default_order(geometry: SsdGeometry) -> StripeMap {
        StripeMap::new(geometry, DEFAULT_ORDER)
    }

    /// The device geometry.
    pub fn geometry(&self) -> &SsdGeometry {
        &self.geometry
    }

    /// Number of `(channel, package, die, plane)` slots in one stripe.
    pub fn stripe_width(&self) -> u64 {
        self.sizes.iter().product()
    }

    /// Physical slot of stripe position `pos` (`0 <= pos < stripe_width`):
    /// returns the die and the plane within it.
    pub fn locate(&self, pos: u64) -> (DieIndex, u32) {
        debug_assert!(pos < self.stripe_width());
        let mut rem = pos;
        let (mut ch, mut pkg, mut die, mut plane) = (0u64, 0u64, 0u64, 0u64);
        for (i, d) in self.order.iter().enumerate() {
            let idx = rem % self.sizes[i];
            rem /= self.sizes[i];
            match d {
                Dim::Channel => ch = idx,
                Dim::Package => pkg = idx,
                Dim::Die => die = idx,
                Dim::Plane => plane = idx,
            }
        }
        (
            DieIndex::from_parts(&self.geometry, u32_from(ch), u32_from(pkg), u32_from(die)),
            u32_from(plane),
        )
    }

    /// Decomposes the contiguous logical page run `[start_lpn,
    /// start_lpn + count)` into per-die work. Runs are returned in
    /// ascending die order; each die's `planes` is the number of distinct
    /// planes its pages land on.
    ///
    /// Convenience wrapper that allocates; the per-event service loop
    /// uses [`StripeMap::decompose_into`] with a hoisted
    /// [`DecomposeScratch`] instead.
    pub fn decompose(&self, start_lpn: u64, count: u64) -> Vec<DieRun> {
        let mut scratch = DecomposeScratch::new();
        self.decompose_into(start_lpn, count, &mut scratch);
        scratch.runs
    }

    /// Allocation-free decomposition: accumulates into `scratch` and
    /// leaves the result in `scratch.runs` (cleared first). Buffers are
    /// resized to the die count once and reused thereafter.
    pub fn decompose_into(&self, start_lpn: u64, count: u64, scratch: &mut DecomposeScratch) {
        let n_dies = usize_from_u32(self.geometry.total_dies());
        scratch.reset(n_dies);
        if count == 0 {
            return;
        }
        let w = self.stripe_width();
        let full_rows = count / w;
        let rem = count % w;
        let planes_per_die = self.geometry.planes_per_die;

        if full_rows > 0 {
            // Every slot is hit `full_rows` times: each die gets
            // planes_per_die slots per stripe.
            for d in 0..n_dies {
                scratch.pages[d] += full_rows * u64::from(planes_per_die);
                scratch.plane_mask[d] |= (1u32 << planes_per_die) - 1;
            }
        }
        for i in 0..rem {
            let pos = (start_lpn + full_rows * w + i) % w;
            let (die, plane) = self.locate(pos);
            scratch.pages[usize_from_u32(die.0)] += 1;
            scratch.plane_mask[usize_from_u32(die.0)] |= 1 << plane;
        }

        let start_row = start_lpn / w;
        for d in 0..n_dies {
            if scratch.pages[d] > 0 {
                scratch.runs.push(DieRun {
                    die: DieIndex(u32_from(u64_from_usize(d))),
                    planes: scratch.plane_mask[d].count_ones().max(1),
                    pages: scratch.pages[d],
                    start_row,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmtypes::NvmKind;

    fn paper_map() -> StripeMap {
        StripeMap::default_order(SsdGeometry::paper(NvmKind::Tlc))
    }

    #[test]
    fn stripe_width_is_all_slots() {
        assert_eq!(paper_map().stripe_width(), 8 * 8 * 2 * 2);
    }

    #[test]
    fn locate_covers_every_slot_once() {
        let m = StripeMap::default_order(SsdGeometry::tiny());
        let mut seen = std::collections::HashSet::new();
        for pos in 0..m.stripe_width() {
            let (die, plane) = m.locate(pos);
            assert!(seen.insert((die, plane)), "slot repeated at pos {pos}");
        }
        assert_eq!(seen.len() as u64, m.stripe_width());
    }

    #[test]
    fn default_order_strides_channels_first() {
        let m = paper_map();
        let g = *m.geometry();
        // Positions 0..8 land on distinct channels, same plane/die/package.
        for pos in 0..8 {
            let (die, plane) = m.locate(pos);
            assert_eq!(die.channel(&g), pos as u32);
            assert_eq!(plane, 0);
        }
        // Position 8 wraps to plane 1 of channel 0.
        let (die, plane) = m.locate(8);
        assert_eq!(die.channel(&g), 0);
        assert_eq!(plane, 1);
    }

    #[test]
    fn small_request_is_channel_striped_single_plane() {
        // 8 TLC pages (64 KiB): one page per channel, plane 0 only.
        let runs = paper_map().decompose(0, 8);
        assert_eq!(runs.len(), 8);
        for r in &runs {
            assert_eq!(r.pages, 1);
            assert_eq!(r.planes, 1);
        }
    }

    #[test]
    fn medium_request_reaches_multiplane() {
        // 16 pages (128 KiB): both planes of package-0 dies, no die interleave.
        let runs = paper_map().decompose(0, 16);
        assert_eq!(runs.len(), 8);
        for r in &runs {
            assert_eq!(r.pages, 2);
            assert_eq!(r.planes, 2);
        }
    }

    #[test]
    fn large_request_reaches_die_interleaving() {
        // 32 pages: two dies per channel engaged.
        let runs = paper_map().decompose(0, 32);
        assert_eq!(runs.len(), 16);
        let g = *paper_map().geometry();
        let mut per_channel = std::collections::HashMap::new();
        for r in &runs {
            *per_channel.entry(r.die.channel(&g)).or_insert(0u32) += 1;
        }
        assert!(per_channel.values().all(|&c| c == 2));
    }

    #[test]
    fn full_stripe_touches_every_die() {
        let m = paper_map();
        let runs = m.decompose(0, m.stripe_width());
        assert_eq!(runs.len(), 128);
        for r in &runs {
            assert_eq!(r.pages, 2);
            assert_eq!(r.planes, 2);
        }
    }

    #[test]
    fn decomposition_conserves_pages() {
        let m = StripeMap::default_order(SsdGeometry::tiny());
        for start in [0u64, 3, 17, 250] {
            for count in [1u64, 5, 16, 33, 100] {
                let total: u64 = m.decompose(start, count).iter().map(|r| r.pages).sum();
                assert_eq!(total, count, "start={start} count={count}");
            }
        }
    }

    #[test]
    fn misaligned_piece_can_interleave_dies_without_multiplane() {
        // §4.5 PAL2: fragments that straddle the die boundary of the stripe
        // touch two dies, each on a single plane.
        let m = paper_map();
        // Positions 14..18: channels 6,7 on plane 1 (die 0) then channels
        // 0,1 on plane 0 (die 1).
        let runs = m.decompose(14, 4);
        assert_eq!(runs.len(), 4);
        assert!(runs.iter().all(|r| r.planes == 1));
        let g = *m.geometry();
        let chans: std::collections::HashSet<u32> =
            runs.iter().map(|r| r.die.channel(&g)).collect();
        assert_eq!(chans.len(), 4);
    }

    #[test]
    fn empty_decomposition() {
        assert!(paper_map().decompose(42, 0).is_empty());
    }

    #[test]
    fn scratch_reuse_matches_allocating_path() {
        // `decompose_into` with one reused scratch must agree with the
        // allocating wrapper across a sequence of differently-shaped
        // requests — stale accumulator state must not leak between calls.
        let m = paper_map();
        let mut scratch = DecomposeScratch::new();
        for (start, count) in [(0u64, 8u64), (14, 4), (0, 512), (42, 0), (3, 33)] {
            m.decompose_into(start, count, &mut scratch);
            assert_eq!(
                scratch.runs,
                m.decompose(start, count),
                "start={start} count={count}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "repeats")]
    fn rejects_duplicate_dims() {
        StripeMap::new(
            SsdGeometry::tiny(),
            [Dim::Channel, Dim::Channel, Dim::Die, Dim::Plane],
        );
    }
}
