//! Multi-tenant QoS: weighted fair queueing and admission control over
//! one shared device, with exact per-tenant latency attribution.
//!
//! The paper's studies replay one job at a time; a compute-local NVM
//! deployment actually multiplexes *many* jobs — eigensolver replays,
//! checkpoint bursts, key-value lookups — over the same fleet of
//! devices. This module adds that traffic layer inside the request
//! path (see docs/TENANCY.md):
//!
//! * **Fair queueing** — dispatch order across tenants follows
//!   start-time fair queueing (SFQ) over integer virtual time: each
//!   dispatched request advances its tenant's virtual finish tag by
//!   `bytes * SCALE / weight`, and the backlogged tenant with the
//!   smallest start tag dispatches next. Doubling a tenant's weight
//!   halves its virtual cost, so it wins dispatch slots — and therefore
//!   die service — twice as often under contention.
//! * **Admission control** — at most `max_active` tenants run
//!   concurrently; later arrivals queue FIFO (by arrival time, then
//!   tenant index) and are admitted when a running tenant's last
//!   request completes.
//! * **Attribution** — every request is serviced by the same
//!   [`EngineState::service_one`] code as the single-tenant engine, so
//!   the per-request breakdowns stay exact; the per-tenant rollups sum
//!   to the fleet totals, and the media engine's arbitration tags
//!   ([`flashsim::MediaSim::set_arbitration_tag`]) attribute die time
//!   tenant by tenant.
//!
//! Everything is integer/deterministic: no wall clock, no hash-order
//! iteration, ties broken by tenant index. A single tenant admitted at
//! time zero reproduces [`SsdDevice::run`] byte-for-byte (pinned by a
//! test below), because both paths are the same servicing code under
//! the same closed-loop issue discipline.

use crate::device::{fault_states, EngineState};
use crate::report::RunReport;
use crate::SsdDevice;
use flashsim::stats::TagStats;
use flashsim::MediaFaultState;
use interconnect::LinkFaultSim;
use nvmtypes::convert::usize_from_u32;
use nvmtypes::fault::FaultPlan;
use nvmtypes::{HostRequest, Nanos};
use ooctrace::BlockTrace;
use simobs::{HdrHistogram, LatencyAttribution, Tracer};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Virtual-time scale: one byte of service at weight 1 costs `SCALE`
/// virtual ticks, so integer division by small weights keeps precision.
const SCALE: u64 = 1 << 16;

/// Floor on a request's virtual cost (bytes): a zero-length or tiny
/// request still consumes a dispatch slot.
const MIN_COST_BYTES: u64 = 4096;

/// One tenant's workload as the traffic layer sees it: a block trace
/// replayed closed-loop, a fair-queueing weight, an arrival time, and
/// the tenant's own fault plan (fault processes are per-tenant so one
/// tenant's draws never perturb another's).
#[derive(Debug, Clone)]
pub struct TenantWorkload {
    /// The requests, replayed closed-loop at the trace's queue depth
    /// (capped by the device NCQ depth).
    pub trace: BlockTrace,
    /// Fair-queueing weight (clamped to at least 1). Relative: a
    /// weight-4 tenant gets 4x the dispatch share of a weight-1 tenant
    /// while both are backlogged.
    pub weight: u64,
    /// When the tenant shows up, in simulated ns.
    pub arrival_ns: Nanos,
    /// The tenant's fault plan (media/link streams split per tenant).
    pub fault_plan: FaultPlan,
}

impl TenantWorkload {
    /// A weight-1, arrival-0, fault-free tenant over `trace`.
    pub fn new(trace: BlockTrace) -> TenantWorkload {
        TenantWorkload {
            trace,
            weight: 1,
            arrival_ns: 0,
            fault_plan: FaultPlan::none(),
        }
    }
}

/// Admission-control policy for a shared run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QosPolicy {
    /// Maximum tenants running concurrently; `0` means unlimited.
    /// Tenants beyond the cap wait FIFO (arrival time, then index) and
    /// admit when a running tenant's last request completes.
    pub max_active: usize,
}

impl QosPolicy {
    /// No admission cap: every tenant is admitted at its arrival.
    pub fn unlimited() -> QosPolicy {
        QosPolicy { max_active: 0 }
    }

    /// Admit at most `n` tenants concurrently.
    pub fn max_active(n: usize) -> QosPolicy {
        QosPolicy { max_active: n }
    }
}

impl Default for QosPolicy {
    fn default() -> QosPolicy {
        QosPolicy::unlimited()
    }
}

/// Per-tenant results of a shared run.
#[derive(Debug, Clone)]
pub struct TenantRunStats {
    /// Index of the tenant in the input slice.
    pub tenant: u32,
    /// Requests the tenant completed.
    pub requests: u64,
    /// Host bytes the tenant moved.
    pub bytes: u64,
    /// When the tenant was admitted (>= its arrival).
    pub admitted_ns: Nanos,
    /// Completion time of the tenant's last request (0 for an empty
    /// trace: the tenant finished the moment it was admitted).
    pub finish_ns: Nanos,
    /// Full per-request latency distribution for this tenant alone.
    pub latency_hdr: HdrHistogram,
    /// Exact per-layer latency attribution for this tenant alone; the
    /// tenants' `total_ns` values sum to the fleet's.
    pub attribution: LatencyAttribution,
    /// Die time / die-ops / media bytes the tenant consumed, from the
    /// media engine's arbitration-tag accounting.
    pub media: TagStats,
}

/// A shared multi-tenant run: the fleet-level [`RunReport`] plus the
/// per-tenant rollups.
#[derive(Debug, Clone)]
pub struct SharedRunReport {
    /// Fleet-level report over all tenants' traffic, same accounting as
    /// [`SsdDevice::run`].
    pub fleet: RunReport,
    /// Per-tenant stats, indexed like the input slice.
    pub tenants: Vec<TenantRunStats>,
}

/// Mutable scheduler state for one tenant.
struct TenantState {
    weight: u64,
    /// `Some(t)` once admitted at `t`; `None` while waiting.
    admitted: Option<Nanos>,
    next: usize,
    qd: usize,
    inflight: BinaryHeap<Reverse<Nanos>>,
    prev_issue: Nanos,
    /// Virtual finish tag of the tenant's last dispatched request.
    vfinish: u64,
    finish: Nanos,
    done: bool,
    media_faults: Option<MediaFaultState>,
    link_faults: Option<LinkFaultSim>,
    stats: TenantRunStats,
}

impl TenantState {
    /// Earliest time the tenant's next request could issue, mirroring
    /// the closed-loop arrival rule of `run_observed` (peek only; the
    /// pop happens at dispatch).
    fn ready(&self) -> Nanos {
        let mut ready = self.prev_issue;
        if self.inflight.len() >= self.qd {
            if let Some(&Reverse(c)) = self.inflight.peek() {
                ready = ready.max(c);
            }
        }
        ready
    }
}

impl SsdDevice {
    /// Replays several tenants' traces against **one** shared device
    /// under weighted fair queueing and admission control, with an
    /// observer attached (pass [`Tracer::off`] when not tracing).
    ///
    /// Returns the fleet-level report (same accounting as
    /// [`SsdDevice::run`] over the union of the traffic) plus exact
    /// per-tenant stats. Deterministic for fixed inputs: byte-identical
    /// across re-runs and thread counts.
    ///
    /// # Panics
    /// Panics if `tenants` is empty.
    pub fn run_shared(
        &self,
        tenants: &[TenantWorkload],
        policy: &QosPolicy,
        obs: &mut Tracer,
    ) -> SharedRunReport {
        assert!(!tenants.is_empty(), "run_shared needs at least one tenant");
        let cfg = self.config();
        let total_requests: usize = tenants.iter().map(|t| t.trace.len()).sum();
        let mut state = EngineState::new(self, total_requests);
        let max_active = if policy.max_active == 0 {
            tenants.len()
        } else {
            policy.max_active
        };

        let mut ts: Vec<TenantState> = tenants
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let (media_faults, link_faults) = fault_states(&t.fault_plan, &cfg.media);
                let qd = usize_from_u32(cfg.ncq_depth.min(t.trace.queue_depth).max(1));
                TenantState {
                    weight: t.weight.max(1),
                    admitted: None,
                    next: 0,
                    qd,
                    inflight: BinaryHeap::with_capacity(qd + 1),
                    prev_issue: 0,
                    vfinish: 0,
                    finish: 0,
                    done: false,
                    media_faults,
                    link_faults,
                    stats: TenantRunStats {
                        tenant: u32::try_from(i).unwrap_or(u32::MAX),
                        requests: 0,
                        bytes: 0,
                        admitted_ns: 0,
                        finish_ns: 0,
                        latency_hdr: HdrHistogram::new(),
                        attribution: LatencyAttribution::default(),
                        media: TagStats::default(),
                    },
                }
            })
            .collect();

        // FIFO admission queue: arrival order, ties by index.
        let mut waiting: VecDeque<usize> = {
            let mut order: Vec<usize> = (0..tenants.len()).collect();
            order.sort_by_key(|&i| (tenants[i].arrival_ns, i));
            order.into()
        };
        let mut active: usize = 0;

        // Admits waiting tenants while slots are free at `at`. An
        // admitted tenant with an empty trace finishes instantly and
        // frees its slot for the next waiter.
        fn admit(
            waiting: &mut VecDeque<usize>,
            ts: &mut [TenantState],
            tenants: &[TenantWorkload],
            active: &mut usize,
            max_active: usize,
            at: Nanos,
        ) {
            while *active < max_active {
                let Some(&i) = waiting.front() else { break };
                let admitted_at = tenants[i].arrival_ns.max(at);
                waiting.pop_front();
                let t = &mut ts[i];
                t.admitted = Some(admitted_at);
                t.prev_issue = admitted_at;
                t.stats.admitted_ns = admitted_at;
                if tenants[i].trace.requests.is_empty() {
                    t.done = true;
                    t.finish = admitted_at;
                    t.stats.finish_ns = admitted_at;
                } else {
                    *active += 1;
                }
            }
        }

        admit(&mut waiting, &mut ts, tenants, &mut active, max_active, 0);

        // SFQ virtual time: the start tag of the last dispatched request.
        let mut vtime: u64 = 0;
        // The dispatch clock: advances to the earliest ready time when
        // no admitted tenant is ready "now". Requests never dispatch at
        // issue times beyond `now`, so a late-arriving tenant cannot
        // push media resources into its future and starve earlier work.
        let mut now: Nanos = 0;
        // The shared NCQ: the device serves at most `device_slots`
        // outstanding requests across ALL tenants. This is what makes
        // the fair queueing bite — when every slot is taken, the next
        // dispatch waits for the earliest fleet-wide completion, and the
        // scheduler hands the freed slot to the backlogged tenant with
        // the smallest start tag. (Sync barriers don't occupy slots,
        // mirroring the single-trace engine.)
        let device_slots = usize_from_u32(cfg.ncq_depth.max(1));
        let mut device_inflight: BinaryHeap<Reverse<Nanos>> =
            BinaryHeap::with_capacity(device_slots + 1);

        loop {
            if device_inflight.len() >= device_slots {
                if let Some(Reverse(c)) = device_inflight.pop() {
                    now = now.max(c);
                }
            }
            // Candidates: admitted, not done, with requests left.
            let mut best: Option<(u64, usize)> = None;
            let mut min_ready: Option<Nanos> = None;
            for (i, t) in ts.iter().enumerate() {
                if t.admitted.is_none() || t.done {
                    continue;
                }
                let ready = t.ready();
                min_ready = Some(min_ready.map_or(ready, |m: Nanos| m.min(ready)));
                if ready > now {
                    continue;
                }
                let start_tag = vtime.max(t.vfinish);
                if best.is_none_or(|(tag, idx)| (start_tag, i) < (tag, idx)) {
                    best = Some((start_tag, i));
                }
            }
            let (start_tag, i) = match (best, min_ready) {
                (Some(b), _) => b,
                (None, Some(m)) => {
                    // Nobody is ready yet: advance the clock.
                    now = m;
                    continue;
                }
                (None, None) => break,
            };

            let t = &mut ts[i];
            let req: HostRequest = tenants[i].trace.requests[t.next];
            t.next += 1;
            let mut issue = t.prev_issue;
            if t.inflight.len() >= t.qd {
                if let Some(Reverse(c)) = t.inflight.pop() {
                    issue = issue.max(c);
                }
            }

            state.media.set_arbitration_tag(Some(t.stats.tenant));
            let (completion, breakdown) =
                state.service_one(&req, issue, &mut t.media_faults, &mut t.link_faults, obs);
            state.media.set_arbitration_tag(None);

            vtime = start_tag;
            t.vfinish = start_tag + req.len.max(MIN_COST_BYTES) * SCALE / t.weight;
            t.finish = t.finish.max(completion);
            t.stats.requests += 1;
            t.stats.bytes += req.len;
            t.stats.latency_hdr.record(completion.saturating_sub(issue));
            t.stats.attribution.absorb(breakdown);
            if req.sync {
                t.prev_issue = completion;
            } else {
                t.inflight.push(Reverse(completion));
                t.prev_issue = issue;
                device_inflight.push(Reverse(completion));
            }

            if t.next == tenants[i].trace.requests.len() {
                t.done = true;
                t.stats.finish_ns = t.finish;
                let freed_at = t.finish;
                active -= 1;
                admit(
                    &mut waiting,
                    &mut ts,
                    tenants,
                    &mut active,
                    max_active,
                    freed_at,
                );
            }
        }

        // Fold per-tenant link-fault accounting into the fleet totals.
        for t in &ts {
            if let Some(lf) = &t.link_faults {
                let s = lf.stats();
                state.rel.link.crc_errors += s.crc_errors;
                state.rel.link.replays += s.replays;
                state.rel.link.replay_ns += s.replay_ns;
                state.rel.link.retrains += s.retrains;
                state.rel.link.retrain_ns += s.retrain_ns;
            }
        }

        // Pull the arbitration-tag attribution out before the engine
        // consumes the media simulator.
        let tag_busy = state.media.stats().tag_busy.clone();
        let total_bytes: u64 = tenants.iter().map(|t| t.trace.total_bytes()).sum();
        let data_bytes: u64 = tenants.iter().map(|t| t.trace.data_bytes()).sum();
        let fleet = state.finish(cfg, total_bytes, data_bytes, total_requests, obs);

        let tenant_stats = ts
            .into_iter()
            .map(|mut t| {
                if let Some(&m) = tag_busy.get(&t.stats.tenant) {
                    t.stats.media = m;
                }
                t.stats
            })
            .collect();

        SharedRunReport {
            fleet,
            tenants: tenant_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SsdConfig;
    use flashsim::MediaConfig;
    use interconnect::{pcie, LinkChain, PcieGen};
    use nvmtypes::{BusTiming, NvmKind, MIB};

    fn device() -> SsdDevice {
        let media = MediaConfig::paper(
            NvmKind::Tlc,
            BusTiming {
                name: "ONFi3-SDR-400",
                bytes_per_ns: 0.4,
            },
        );
        SsdDevice::new(SsdConfig::new(media, LinkChain::single(pcie(PcieGen::Gen2, 8))).with_ufs())
    }

    fn read_trace(total: u64, req: u64, qd: u32) -> BlockTrace {
        let mut reqs = Vec::new();
        let mut off = 0;
        while off < total {
            reqs.push(HostRequest::read(off, req.min(total - off)));
            off += req;
        }
        BlockTrace::from_requests(reqs, qd)
    }

    #[test]
    fn one_tenant_matches_the_legacy_path_exactly() {
        let dev = device();
        let trace = read_trace(16 * MIB, MIB, 8);
        let legacy = dev.run(&trace);
        let shared = dev.run_shared(
            &[TenantWorkload::new(trace)],
            &QosPolicy::unlimited(),
            &mut Tracer::off(),
        );
        assert_eq!(shared.fleet.makespan, legacy.makespan);
        assert_eq!(shared.fleet.total_bytes, legacy.total_bytes);
        assert_eq!(shared.fleet.latency_hdr, legacy.latency_hdr);
        assert_eq!(shared.fleet.pal, legacy.pal);
        assert_eq!(shared.fleet.attribution, legacy.attribution);
        assert_eq!(shared.fleet.media.breakdown, legacy.media.breakdown);
        assert_eq!(shared.tenants.len(), 1);
        assert_eq!(shared.tenants[0].requests, legacy.requests);
    }

    #[test]
    fn tenant_attributions_sum_to_the_fleet_total() {
        let dev = device();
        let tenants: Vec<TenantWorkload> = (0..4u64)
            .map(|i| {
                let mut t = TenantWorkload::new(read_trace(4 * MIB, 256 * 1024, 4));
                t.weight = 1 + i % 2;
                t
            })
            .collect();
        let shared = dev.run_shared(&tenants, &QosPolicy::unlimited(), &mut Tracer::off());
        assert!(shared.fleet.attribution.is_exact());
        let tenant_total: Nanos = shared.tenants.iter().map(|t| t.attribution.total_ns).sum();
        assert_eq!(tenant_total, shared.fleet.attribution.total_ns);
        let tenant_reqs: u64 = shared.tenants.iter().map(|t| t.requests).sum();
        assert_eq!(tenant_reqs, shared.fleet.requests);
        for t in &shared.tenants {
            assert!(t.attribution.is_exact());
            assert!(t.media.ops > 0, "tag accounting missing");
        }
    }

    #[test]
    fn higher_weight_wins_tail_latency_under_contention() {
        let dev = device();
        let mk = |weight| {
            let mut t = TenantWorkload::new(read_trace(8 * MIB, 128 * 1024, 16));
            t.weight = weight;
            t
        };
        let shared = dev.run_shared(
            &[mk(8), mk(1), mk(1), mk(1)],
            &QosPolicy::unlimited(),
            &mut Tracer::off(),
        );
        let heavy = shared.tenants[0].latency_hdr.percentiles();
        let light = shared.tenants[1].latency_hdr.percentiles();
        assert!(
            heavy.p99 < light.p99,
            "weight-8 p99 {} should beat weight-1 p99 {}",
            heavy.p99,
            light.p99
        );
    }

    #[test]
    fn admission_control_serializes_beyond_the_cap() {
        let dev = device();
        let tenants: Vec<TenantWorkload> = (0..4)
            .map(|_| TenantWorkload::new(read_trace(2 * MIB, 256 * 1024, 4)))
            .collect();
        let capped = dev.run_shared(&tenants, &QosPolicy::max_active(1), &mut Tracer::off());
        // With one slot, each tenant is admitted when the previous
        // finishes: admission times are strictly increasing.
        for w in capped.tenants.windows(2) {
            assert!(w[1].admitted_ns >= w[0].finish_ns);
        }
        let open = dev.run_shared(&tenants, &QosPolicy::unlimited(), &mut Tracer::off());
        assert!(open.tenants.iter().all(|t| t.admitted_ns == 0));
        // Alone on the device, the first tenant finishes sooner than it
        // does sharing with three others. (Fleet makespans are close:
        // the device is work-conserving, so serialized admission mostly
        // reorders who waits, not how much total work there is.)
        assert!(
            capped.tenants[0].finish_ns < open.tenants[0].finish_ns,
            "solo {} vs shared {}",
            capped.tenants[0].finish_ns,
            open.tenants[0].finish_ns
        );
    }

    #[test]
    fn shared_runs_are_deterministic() {
        let dev = device();
        let tenants: Vec<TenantWorkload> = (0..3u64)
            .map(|i| {
                let mut t = TenantWorkload::new(read_trace(4 * MIB, 256 * 1024, 4));
                t.arrival_ns = i * 1_000_000;
                t
            })
            .collect();
        let a = dev.run_shared(&tenants, &QosPolicy::max_active(2), &mut Tracer::off());
        let b = dev.run_shared(&tenants, &QosPolicy::max_active(2), &mut Tracer::off());
        assert_eq!(a.fleet.makespan, b.fleet.makespan);
        assert_eq!(a.fleet.latency_hdr, b.fleet.latency_hdr);
        for (x, y) in a.tenants.iter().zip(&b.tenants) {
            assert_eq!(x.latency_hdr, y.latency_hdr);
            assert_eq!(x.attribution, y.attribution);
            assert_eq!(x.media, y.media);
        }
    }

    #[test]
    #[should_panic(expected = "at least one tenant")]
    fn empty_tenant_set_is_rejected() {
        device().run_shared(&[], &QosPolicy::unlimited(), &mut Tracer::off());
    }
}
