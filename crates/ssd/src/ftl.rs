//! Flash translation layer state: write allocation, erase-before-write,
//! garbage collection and wear accounting.
//!
//! Reads translate at page granularity through the deterministic stripe
//! map (the mapping table of a page-mapped FTL is a bijection we can
//! compute instead of store). Writes in `Traditional` mode are
//! log-allocated: they land at the device's write frontier regardless of
//! their logical address, which is how real page-mapped FTLs absorb the
//! erase-before-write constraint.
//!
//! Space is managed in *stripe-rows*: one erase block on every
//! `(die, plane)` of the device (the natural allocation unit of the
//! striped log). The FTL tracks per-row valid-data counts at 4-KiB
//! mapping granularity; overwrites invalidate their previous location.
//! When the free-row pool runs dry, a greedy garbage collector picks the
//! row with the least valid data, migrates the survivors to the frontier,
//! and erases it — the classic page-mapped design, with the resulting
//! write amplification reported per run.
//!
//! In `Ufs` mode the application manages placement: writes translate
//! in-place just like reads, and erases are explicit application actions.

use crate::config::FtlMode;
use nvmtypes::convert::{approx_f64, u32_from, u64_from_usize, usize_from};
use nvmtypes::SsdGeometry;
use serde::Serialize;
use std::collections::BTreeMap;

/// Wear-levelling and garbage-collection statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct WearStats {
    /// Total block erases performed.
    pub erases: u64,
    /// Erase counts per stripe-row of blocks (all `(die, plane)` blocks of
    /// a row are erased together by the log allocator).
    pub per_row: Vec<u32>,
    /// 4-KiB units written by the host.
    pub host_units_written: u64,
    /// 4-KiB units rewritten by the garbage collector.
    pub gc_units_written: u64,
    /// Garbage-collection invocations.
    pub gc_runs: u64,
}

impl WearStats {
    /// Maximum per-row erase count (0 when nothing was erased).
    pub fn max_per_row(&self) -> u32 {
        self.per_row.iter().copied().max().unwrap_or(0)
    }

    /// Mean per-row erase count over rows that were erased at least once.
    pub fn mean_nonzero(&self) -> f64 {
        let nz: Vec<u32> = self.per_row.iter().copied().filter(|&c| c > 0).collect();
        if nz.is_empty() {
            0.0
        } else {
            approx_f64(nz.iter().map(|&c| u64::from(c)).sum::<u64>())
                / approx_f64(u64_from_usize(nz.len()))
        }
    }

    /// Write amplification factor: `(host + GC writes) / host writes`
    /// (1.0 when the host wrote nothing or GC never ran).
    pub fn waf(&self) -> f64 {
        if self.host_units_written == 0 {
            1.0
        } else {
            approx_f64(self.host_units_written + self.gc_units_written)
                / approx_f64(self.host_units_written)
        }
    }

    /// Wear-leveling pressure: the worst row's erase count relative to
    /// the mean over erased rows. 1.0 means perfectly level wear;
    /// higher values mean hot rows are aging ahead of the pack (and,
    /// under the fault model, will start throwing errors first).
    pub fn pressure(&self) -> f64 {
        let mean = self.mean_nonzero();
        if mean <= 0.0 {
            1.0
        } else {
            f64::from(self.max_per_row()) / mean
        }
    }
}

/// Outcome of translating one write: where the data lands and what
/// housekeeping the device must perform first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WritePlacement {
    /// First logical page (in stripe space) the write occupies.
    pub start_lpn: u64,
    /// Stripe-rows of blocks that must be erased before the write can
    /// proceed (each row is one block on every `(die, plane)`).
    pub rows_to_erase: u64,
    /// 4-KiB units the garbage collector migrated to make room (each is
    /// one media read plus one media write ahead of the host data).
    pub gc_moves: u64,
}

/// Mapping granularity: 4 KiB, independent of the media page size.
const UNIT: u64 = 4096;

/// FTL state for one simulated device.
#[derive(Debug, Clone)]
pub struct Ftl {
    mode: FtlMode,
    geometry: SsdGeometry,
    page_size: u64,
    /// Next free 4-KiB unit at the log frontier.
    frontier_unit: u64,
    /// Rows whose blocks are erased and ready (beyond the frontier row).
    free_rows: u64,
    /// Valid-unit count per row.
    row_valid: Vec<u32>,
    /// Logical 4-KiB unit -> physical unit. Ordered so GC migration
    /// and any future map iteration are deterministic run-to-run.
    map: BTreeMap<u64, u64>,
    /// GC trigger: collect when fewer than this many rows are free.
    pub gc_low_water_rows: u64,
    wear: WearStats,
    /// Blocks condemned by the fault model (erase failure or
    /// uncorrectable page) and retired.
    bad_blocks: u64,
    /// Spare blocks still available to absorb retirements (the
    /// over-provisioning pool).
    spare_blocks: u64,
    /// Reused survivor-key buffer for GC migration: collection runs on
    /// the per-event write path, so its scratch is hoisted here
    /// (simlint `hotpath_alloc`).
    gc_keys: Vec<u64>,
}

/// Over-provisioning reserved for bad-block remapping: 2% of the
/// device's blocks (1/50), the order real drives set aside.
const SPARE_FRACTION_DENOM: u64 = 50;

impl Ftl {
    /// New FTL with `pre_erased_rows` stripe-rows of blocks ready for
    /// writing (a freshly trimmed device would have many; a steady-state
    /// device few — 0 makes every new row pay its erase up front).
    pub fn new(mode: FtlMode, geometry: SsdGeometry, pre_erased_rows: u64) -> Ftl {
        let page_size = 4096; // placeholder; set via with_page_size
        let rows = u64::from(geometry.blocks_per_plane);
        let total_blocks = geometry.total_plane_slots() * rows;
        Ftl {
            mode,
            geometry,
            page_size,
            frontier_unit: 0,
            free_rows: pre_erased_rows.min(rows),
            row_valid: vec![0; usize_from(rows)],
            map: BTreeMap::new(),
            gc_low_water_rows: 1,
            wear: WearStats {
                per_row: Vec::new(),
                ..WearStats::default()
            },
            bad_blocks: 0,
            spare_blocks: (total_blocks / SPARE_FRACTION_DENOM).max(1),
            gc_keys: Vec::new(),
        }
    }

    /// Sets the media page size (used to convert page counts to units).
    pub fn with_page_size(mut self, page_size: u32) -> Ftl {
        self.page_size = u64::from(page_size);
        self
    }

    /// The translation mode.
    pub fn mode(&self) -> FtlMode {
        self.mode
    }

    /// 4-KiB units per stripe-row.
    fn units_per_row(&self) -> u64 {
        let row_bytes = self.geometry.total_plane_slots()
            * u64::from(self.geometry.pages_per_block)
            * self.page_size;
        (row_bytes / UNIT).max(1)
    }

    /// Total rows in the device.
    fn total_rows(&self) -> u64 {
        u64::from(self.geometry.blocks_per_plane)
    }

    /// Translates a read: page-granular identity through the stripe map.
    pub fn translate_read(&self, start_lpn: u64, _pages: u64) -> u64 {
        start_lpn
    }

    /// Translates a write of `pages` media pages logically at `start_lpn`.
    ///
    /// Traditional mode allocates at the log frontier, invalidates any
    /// previous locations of the logical range, and reports the erase and
    /// GC work the device owes before the host data can land. UFS mode
    /// writes in place and never implies erases.
    pub fn translate_write(&mut self, start_lpn: u64, pages: u64) -> WritePlacement {
        match self.mode {
            FtlMode::Ufs { .. } => WritePlacement {
                start_lpn,
                rows_to_erase: 0,
                gc_moves: 0,
            },
            FtlMode::Traditional { .. } => {
                let upr = self.units_per_row();
                let bytes = pages * self.page_size;
                let units = bytes.div_ceil(UNIT).max(1);
                self.wear.host_units_written += units;

                // Invalidate previous locations of this logical range.
                let logical0 = start_lpn * self.page_size / UNIT;
                for u in 0..units {
                    if let Some(old_phys) = self.map.remove(&(logical0 + u)) {
                        let row = usize_from(old_phys / upr);
                        if row < self.row_valid.len() && self.row_valid[row] > 0 {
                            self.row_valid[row] -= 1;
                        }
                    }
                }

                // How many fresh rows does this write enter?
                let end_unit = self.frontier_unit + units;
                let first_new_row = self.frontier_unit.div_ceil(upr);
                let rows_needed = end_unit.div_ceil(upr).saturating_sub(first_new_row);

                let mut rows_to_erase = 0;
                let mut gc_moves = 0;
                for _ in 0..rows_needed {
                    if self.free_rows < self.gc_low_water_rows {
                        gc_moves += self.collect_garbage();
                    }
                    if self.free_rows > 0 {
                        self.free_rows -= 1;
                    }
                    rows_to_erase += 1;
                    let row =
                        usize_from((self.frontier_unit / upr + rows_to_erase) % self.total_rows());
                    if self.wear.per_row.len() <= row {
                        self.wear.per_row.resize(row + 1, 0);
                    }
                    self.wear.per_row[row] += 1;
                    self.wear.erases += self.geometry.total_plane_slots();
                }

                // Place the data and record the mapping.
                let phys0 = self.frontier_unit;
                for u in 0..units {
                    let phys = phys0 + u;
                    self.map.insert(logical0 + u, phys);
                    let row = usize_from((phys / upr) % self.total_rows());
                    self.row_valid[row] += 1;
                }
                self.frontier_unit = (self.frontier_unit + units) % (self.total_rows() * upr);
                WritePlacement {
                    start_lpn: phys0 * UNIT / self.page_size,
                    rows_to_erase,
                    gc_moves,
                }
            }
        }
    }

    /// Greedy garbage collection: migrate the least-valid row's survivors
    /// to the frontier and free it. Returns the units migrated.
    fn collect_garbage(&mut self) -> u64 {
        let upr = self.units_per_row();
        let frontier_row = usize_from(self.frontier_unit / upr);
        // Victim: the non-frontier row with the fewest valid units.
        let victim = self
            .row_valid
            .iter()
            .enumerate()
            .filter(|&(row, _)| row != frontier_row)
            .min_by_key(|&(_, &valid)| valid)
            .map(|(row, _)| row);
        let Some(victim) = victim else { return 0 };
        let moves = u64::from(self.row_valid[victim]);
        self.wear.gc_units_written += moves;
        self.wear.gc_runs += 1;
        // Survivors logically move to the frontier row; for timing
        // purposes the device reads+writes `moves` units. Their map
        // entries now point at the frontier row.
        let mut remapped = 0;
        if moves > 0 {
            // Survivor keys buffered through the hoisted scratch: the map
            // cannot be mutated mid-iteration, and GC runs per event.
            self.gc_keys.clear();
            let map = &self.map;
            self.gc_keys.extend(
                map.iter()
                    .filter(|&(_, &phys)| usize_from(phys / upr) == victim)
                    .map(|(&l, _)| l),
            );
            for i in 0..self.gc_keys.len() {
                let l = self.gc_keys[i];
                let new_phys = u64_from_usize(frontier_row) * upr + remapped;
                self.map.insert(l, new_phys);
                remapped += 1;
            }
            let fr = frontier_row.min(self.row_valid.len() - 1);
            self.row_valid[fr] += u32_from(moves);
        }
        self.row_valid[victim] = 0;
        self.free_rows += 1;
        moves
    }

    /// Wear statistics accumulated so far.
    pub fn wear(&self) -> &WearStats {
        &self.wear
    }

    /// Retires a block condemned by the fault model (a failed erase or
    /// an uncorrectable page) and remaps it to a spare. Returns `true`
    /// if a spare absorbed it; `false` once the over-provisioning pool
    /// is exhausted — the device is then *failed* and the cluster layer
    /// should fall back to its degraded path.
    pub fn note_bad_block(&mut self) -> bool {
        self.bad_blocks += 1;
        if self.spare_blocks > 0 {
            self.spare_blocks -= 1;
            true
        } else {
            false
        }
    }

    /// Blocks retired so far.
    pub fn bad_blocks(&self) -> u64 {
        self.bad_blocks
    }

    /// Spare blocks still available for remapping.
    pub fn spare_blocks_left(&self) -> u64 {
        self.spare_blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ftl(pre: u64) -> Ftl {
        Ftl::new(FtlMode::traditional_default(), SsdGeometry::tiny(), pre).with_page_size(8192)
    }

    #[test]
    fn reads_are_identity() {
        let f = tiny_ftl(1);
        assert_eq!(f.translate_read(1234, 5), 1234);
    }

    #[test]
    fn writes_are_log_allocated() {
        let mut f = tiny_ftl(4);
        let a = f.translate_write(999, 10);
        let b = f.translate_write(0, 10);
        assert_eq!(a.start_lpn, 0);
        assert_eq!(b.start_lpn, 10);
        assert_eq!(a.gc_moves, 0);
    }

    #[test]
    fn unique_writes_have_unit_waf() {
        // tiny geometry: 16 slots x 32 pages x 8 KiB = 4 MiB/row = 1024 units.
        let mut f = tiny_ftl(0);
        for i in 0..256u64 {
            f.translate_write(i * 4, 4); // distinct logical ranges
        }
        assert!(f.wear().gc_runs == 0 || f.wear().gc_units_written == 0);
        assert!((f.wear().waf() - 1.0).abs() < 1e-9);
        assert!(f.wear().erases > 0);
    }

    #[test]
    fn overwrites_invalidate_and_gc_is_cheap() {
        let mut f = tiny_ftl(0);
        // Hammer the same 4-page logical range far beyond one row.
        for _ in 0..2_000u64 {
            f.translate_write(0, 4);
        }
        // Almost everything in reclaimed rows was invalid: WAF stays ~1.
        assert!(f.wear().waf() < 1.1, "waf {}", f.wear().waf());
        assert!(f.wear().erases > 0);
    }

    #[test]
    fn scattered_overwrites_raise_waf() {
        let g = SsdGeometry::tiny();
        let mut f = Ftl::new(FtlMode::traditional_default(), g, 0).with_page_size(8192);
        // Row = 1024 units of 4 KiB; device = 64 rows. Fill ~90% of the
        // device with unique data.
        let total_units = 64 * 1024u64;
        let fill = total_units * 9 / 10 / 8;
        for i in 0..fill {
            f.translate_write(i * 4, 4); // 4 pages = 8 units each
        }
        let before = f.wear().gc_units_written;
        // Now overwrite every other extent repeatedly: victims keep ~half
        // their data valid, so GC must migrate.
        for round in 0..4u64 {
            for i in (0..fill).step_by(2) {
                f.translate_write(i * 4 + round % 1, 4);
            }
        }
        assert!(f.wear().gc_runs > 0, "GC never ran");
        assert!(f.wear().gc_units_written > before, "GC migrated nothing");
        assert!(f.wear().waf() > 1.05, "waf {}", f.wear().waf());
    }

    #[test]
    fn ufs_mode_writes_in_place_without_erase_or_gc() {
        let mut f = Ftl::new(FtlMode::ufs_default(), SsdGeometry::tiny(), 0).with_page_size(8192);
        let p = f.translate_write(777, 100);
        assert_eq!(p.start_lpn, 777);
        assert_eq!(p.rows_to_erase, 0);
        assert_eq!(p.gc_moves, 0);
        assert_eq!(f.wear().erases, 0);
        assert!((f.wear().waf() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bad_blocks_consume_spares_until_exhausted() {
        let mut f = tiny_ftl(0);
        let spares = f.spare_blocks_left();
        assert!(spares >= 1);
        for _ in 0..spares {
            assert!(f.note_bad_block(), "spare pool should absorb this");
        }
        assert!(!f.note_bad_block(), "pool exhausted, device failed");
        assert_eq!(f.bad_blocks(), spares + 1);
        assert_eq!(f.spare_blocks_left(), 0);
    }

    #[test]
    fn wear_pressure_tracks_imbalance() {
        let mut even = WearStats::default();
        even.per_row = vec![3, 3, 3];
        assert!((even.pressure() - 1.0).abs() < 1e-12);
        let mut hot = WearStats::default();
        hot.per_row = vec![9, 1, 0, 2];
        assert!(hot.pressure() > 2.0);
        assert!((WearStats::default().pressure() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wear_spreads_across_rows() {
        let mut f = tiny_ftl(0);
        for i in 0..2048u64 {
            f.translate_write(i * 4, 4);
        }
        // Multiple rows were erased as the log advanced.
        let touched = f.wear().per_row.iter().filter(|&&c| c > 0).count();
        assert!(touched > 4, "only {touched} rows erased");
        assert!(f.wear().mean_nonzero() >= 1.0);
    }
}
