//! # ssd — the SSD assembly around the media simulator
//!
//! Where `flashsim` models dies and channels, this crate models the rest of
//! the device and its host attachment (§3.2–§3.3 of the paper):
//!
//! * [`mapping`] — the striping layout that spreads a contiguous logical
//!   page run over channels, planes, dies and packages, and its
//!   decomposition of host requests into per-die operations;
//! * [`ftl`] — the flash translation layer of a traditional SSD
//!   (firmware latency, transaction splitting, log-structured write
//!   allocation with erase-before-write and wear accounting) and the
//!   paper's **UFS direct mode**, which elevates the FTL into the host and
//!   passes application requests straight through as NVM transactions;
//! * [`device`] — the closed-loop request engine: an NCQ-style queue,
//!   PAQ-style out-of-order die service, host-side DMA over a
//!   [`interconnect::LinkChain`], sync/barrier semantics for metadata and
//!   journal traffic, and non-overlapped-DMA accounting;
//! * [`report`] — the per-run results every figure of the paper is
//!   computed from (bandwidth, utilization, execution breakdown, PAL
//!   histogram, bandwidth remaining);
//! * [`qos`] — the multi-tenant traffic layer: weighted fair queueing
//!   across tenants sharing one device, FIFO admission control, and
//!   exact per-tenant latency/die-time attribution (docs/TENANCY.md);
//! * [`recovery`] — device-side fault recovery: the escalating ECC
//!   read-retry ladder, program/erase retries and bad-block retirement,
//!   driven by the deterministic fault plan in `nvmtypes::fault` (see
//!   docs/FAULT_MODEL.md);
//! * [`blockdev`] — the stable sector-addressed [`blockdev::BlockDevice`]
//!   trait the UFS filesystem mounts on, plus [`blockdev::SimBlockDevice`],
//!   a deterministic in-memory device with power-loss and torn-write
//!   semantics driven by `nvmtypes::fault::CrashPoint`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blockdev;
pub mod config;
pub mod device;
pub mod ftl;
pub mod mapping;
pub mod qos;
pub mod recovery;
pub mod report;

pub use blockdev::{BlockDevice, SimBlockDevice, SECTOR_BYTES, SECTOR_USIZE};
pub use config::{FtlMode, SsdConfig};
pub use device::SsdDevice;
pub use mapping::{DieRun, Dim, StripeMap};
pub use qos::{QosPolicy, SharedRunReport, TenantRunStats, TenantWorkload};
pub use report::{LatencyStats, ReliabilityStats, RunReport};
