//! Property tests on the FTL's allocator, garbage collector and the
//! stripe map.

use nvmtypes::{NvmKind, SsdGeometry};
use proptest::prelude::*;
use ssd::mapping::{Dim, StripeMap};
use ssd::{FtlMode, SsdConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn stripe_orders_all_conserve_pages(
        perm in 0usize..24,
        start in 0u64..10_000,
        count in 1u64..2_000,
    ) {
        // Enumerate the 24 permutations of the four dimensions.
        let dims = [Dim::Channel, Dim::Package, Dim::Die, Dim::Plane];
        let mut order = dims;
        // Simple Lehmer decode of `perm`.
        let mut pool: Vec<Dim> = dims.to_vec();
        let mut p = perm;
        for slot in 0..4 {
            let idx = p % pool.len();
            p /= pool.len().max(1);
            order[slot] = pool.remove(idx);
        }
        let map = StripeMap::new(SsdGeometry::tiny(), order);
        let runs = map.decompose(start, count);
        let total: u64 = runs.iter().map(|r| r.pages).sum();
        prop_assert_eq!(total, count);
        // Every slot of a full stripe is hit exactly once.
        let full = map.decompose(0, map.stripe_width());
        let g = *map.geometry();
        prop_assert_eq!(full.len() as u32, g.total_dies());
    }

    #[test]
    fn ftl_write_placements_never_alias_within_a_row(
        writes in prop::collection::vec((0u64..512, 1u64..16), 1..40),
    ) {
        use ssd::ftl::Ftl;
        let mut ftl = Ftl::new(
            FtlMode::traditional_default(),
            SsdGeometry::tiny(),
            0,
        )
        .with_page_size(8192);
        let mut placements: Vec<(u64, u64)> = Vec::new();
        for &(lpn, pages) in &writes {
            let p = ftl.translate_write(lpn, pages);
            placements.push((p.start_lpn, pages));
        }
        // Log allocation: physical placements advance monotonically until
        // the log wraps, and never overlap each other.
        for w in placements.windows(2) {
            let (a_start, a_pages) = w[0];
            let (b_start, _) = w[1];
            if b_start > a_start {
                // Bytes -> 4 KiB units -> pages; end in page space.
                let a_units = (a_pages * 8192).div_ceil(4096);
                let a_end = a_start + a_units * 4096 / 8192;
                prop_assert!(b_start >= a_end, "overlap: {:?} then {:?}", w[0], w[1]);
            }
            // Otherwise the log wrapped, which is fine.
        }
        // WAF is always >= 1 and finite.
        let waf = ftl.wear().waf();
        prop_assert!(waf >= 1.0 && waf.is_finite());
    }
}

#[test]
fn ssd_config_builders_are_idempotent() {
    use flashsim::MediaConfig;
    use interconnect::{pcie, LinkChain, PcieGen};
    use nvmtypes::BusTiming;
    let media = MediaConfig::tiny(
        NvmKind::Slc,
        BusTiming {
            name: "t",
            bytes_per_ns: 0.4,
        },
    );
    let cfg = SsdConfig::new(media, LinkChain::single(pcie(PcieGen::Gen3, 8)))
        .with_ufs()
        .with_ufs()
        .without_paq()
        .without_paq();
    assert!(matches!(cfg.ftl, FtlMode::Ufs { .. }));
    assert!(!cfg.paq);
}
