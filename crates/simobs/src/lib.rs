//! # simobs — deterministic observability for the oocnvm simulator
//!
//! The paper's analysis lives on *attribution*: Figure 9's utilizations
//! and Figure 10's execution-state breakdown say where simulated time
//! goes. This crate is the shared layer that makes such attribution a
//! first-class, machine-readable output of every run instead of a
//! hand-rolled per-crate tally:
//!
//! * **tracing** ([`Tracer`], [`sink`]) — structured spans and instants
//!   keyed to *simulated* nanoseconds (never wall-clock), collected by a
//!   pluggable [`sink::Sink`]. The default collector is a bounded ring
//!   buffer ([`sink::RingSink`]); a disabled tracer ([`Tracer::off`])
//!   skips every event before any argument is materialised, so tracing
//!   compiles to a branch on the hot path and nothing more.
//! * **metrics** ([`metrics`]) — integer-only counters, gauges and
//!   fixed-bucket histograms. No floats, no wall clocks: equal runs
//!   produce equal metrics byte for byte.
//! * **hdr** ([`hdr`]) — precision log-bucketed latency histograms
//!   (HDR-style) with exact p50/p90/p99/p999 extraction and an
//!   associative merge, so per-shard distributions combine
//!   byte-identically at any thread count (`docs/PROFILING.md`).
//! * **attribution** ([`attrib`]) — the per-layer latency decomposition:
//!   each request's end-to-end nanoseconds split into queue / die /
//!   channel / link / fs-overhead / recovery components that sum
//!   *exactly* (integer arithmetic, no rounding residue).
//! * **export** ([`export`], [`json`]) — a Chrome trace-event JSON
//!   writer (loadable in Perfetto / `chrome://tracing`) and a compact
//!   text flamegraph-style rollup, plus a tiny deterministic JSON tree
//!   used by the report binaries (`obsreport`, `headline --json`,
//!   `reliability --json`).
//!
//! ## The determinism contract
//!
//! Enabling tracing must not change any simulation result byte (observer
//! effect = zero), and the same seed must produce byte-identical trace
//! output. Both halves are pinned by `tests/determinism.rs` and
//! `tests/obs.rs` in the workspace root; the crate holds its side of the
//! bargain by construction:
//!
//! * a [`Tracer`] only ever *reads* values the simulator already
//!   computed — it draws no randomness and owns no clock;
//! * every container is ordered ([`std::collections::BTreeMap`],
//!   [`std::collections::VecDeque`]), every metric is an integer, and
//!   export renders timestamps with integer division — no float
//!   formatting wobble can reach the output.
//!
//! See `docs/OBSERVABILITY.md` for the event taxonomy and span-naming
//! convention.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attrib;
pub mod event;
pub mod export;
pub mod hdr;
pub mod json;
pub mod metrics;
pub mod sink;

pub use attrib::{LatencyAttribution, RequestBreakdown};
pub use event::{Event, EventKind, Layer};
pub use export::{chrome_trace, rollup};
pub use hdr::{HdrHistogram, HdrPercentiles};
pub use metrics::{FixedHistogram, MetricSet};
pub use sink::{NullSink, RingSink, Sink, TraceLog, Tracer};
