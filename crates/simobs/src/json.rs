//! A tiny deterministic JSON tree: build, render, parse.
//!
//! The workspace builds offline against std-only shims — the vendored
//! `serde` is a marker-trait stub — so machine-readable output is
//! rendered by hand. This module keeps that honest: one value tree with
//! a canonical renderer (object keys stay in insertion order, numbers
//! are pre-rendered strings, so equal trees render byte-identically)
//! and a recursive-descent parser used by `obsreport` and the check
//! gate to prove the emitted text is well-formed JSON.

/// A JSON value. Numbers carry their exact rendered form: the producer
/// chooses the formatting once, and rendering can never re-round.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, pre-rendered (e.g. `"12"`, `"3.142"`).
    Num(String),
    /// A string (unescaped content; escaping happens at render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Integer number.
    pub fn u64(v: u64) -> Json {
        Json::Num(format!("{v}"))
    }

    /// Float with three decimals (the export's fixed precision).
    pub fn f64_3(v: f64) -> Json {
        Json::Num(format!("{v:.3}"))
    }

    /// String value.
    pub fn str(v: &str) -> Json {
        Json::Str(v.to_string())
    }

    /// Empty object builder.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds a field to an object (no-op on non-objects).
    pub fn field(mut self, key: &str, value: Json) -> Json {
        if let Json::Obj(fields) = &mut self {
            fields.push((key.to_string(), value));
        }
        self
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            Json::Null | Json::Bool(_) | Json::Num(_) | Json::Str(_) | Json::Arr(_) => None,
        }
    }

    /// Renders to a compact canonical string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(n),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders a machine-readable report in the workspace's versioned-JSON
/// convention: a leading `"format": "<schema>"` tag followed by the
/// payload's fields (object payloads merge; anything else nests under
/// `"payload"`), rendered canonically so equal reports are
/// byte-identical. Every `--json` emitter in the workspace — the bench
/// bins via `oocnvm_bench::json_report`, `obsreport`, `reliability`,
/// and `simlint --json` — goes through this one helper.
#[must_use]
pub fn report(schema: &str, payload: Json) -> String {
    let mut fields = vec![("format".to_string(), Json::str(schema))];
    match payload {
        Json::Obj(body) => fields.extend(body),
        other => fields.push(("payload".to_string(), other)),
    }
    Json::Obj(fields).render()
}

/// Splits a parsed report's leading `"format"` tag into its schema
/// family and version, e.g. `"oocnvm.headline/2"` →
/// `("oocnvm.headline", 2)`. Consumers use this to accept older
/// documents gracefully: a version bump adds fields, it never renames
/// the family, so `family` matching plus a `version` check is the whole
/// back-compat contract (see `docs/PROFILING.md`).
pub fn schema_version(doc: &Json) -> Option<(&str, u64)> {
    match doc.get("format") {
        Some(Json::Str(tag)) => {
            let (family, ver) = tag.rsplit_once('/')?;
            Some((family, ver.parse().ok()?))
        }
        _ => None,
    }
}

/// A parse failure: what was expected and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What the parser expected.
    pub expected: &'static str,
    /// Byte offset of the failure.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "expected {} at byte {}", self.expected, self.at)
    }
}

/// Parses a complete JSON document (validation-grade: structure and
/// escapes are checked; numbers are kept as text).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError {
            expected: "end of input",
            at: p.pos,
        });
    }
    Ok(value)
}

/// Recursion guard: deeper nesting than any simulator export produces.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn err(&self, expected: &'static str) -> JsonError {
        JsonError {
            expected,
            at: self.pos,
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, lit: &'static str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(lit))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("shallower nesting"));
        }
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => {
                self.expect_literal("true")?;
                Ok(Json::Bool(true))
            }
            Some(b'f') => {
                self.expect_literal("false")?;
                Ok(Json::Bool(false))
            }
            Some(b'n') => {
                self.expect_literal("null")?;
                Ok(Json::Null)
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("a JSON value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // consume '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("':'"));
            }
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b'}') {
                return Ok(Json::Obj(fields));
            }
            return Err(self.err("',' or '}'"));
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            return Err(self.err("',' or ']'"));
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        if !self.eat(b'"') {
            return Err(self.err("'\"'"));
        }
        let mut out = String::new();
        let mut chars = match std::str::from_utf8(&self.bytes[self.pos..]) {
            Ok(s) => s.char_indices(),
            Err(_) => return Err(self.err("valid UTF-8")),
        };
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    self.pos += i + 1;
                    return Ok(out);
                }
                '\\' => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'b')) => out.push('\u{8}'),
                    Some((_, 'f')) => out.push('\u{c}'),
                    Some((_, 'u')) => {
                        let mut code: u32 = 0;
                        for _ in 0..4 {
                            let Some((_, h)) = chars.next() else {
                                return Err(self.err("4 hex digits"));
                            };
                            let Some(d) = h.to_digit(16) else {
                                return Err(self.err("a hex digit"));
                            };
                            code = code * 16 + d;
                        }
                        match char::from_u32(code) {
                            Some(decoded) => out.push(decoded),
                            None => {
                                // Surrogate halves (valid JSON, used for
                                // astral-plane chars) are accepted as
                                // replacement: validation, not fidelity.
                                out.push('\u{fffd}');
                            }
                        }
                    }
                    _ => return Err(self.err("a valid escape")),
                },
                c if u32::from(c) < 0x20 => return Err(self.err("no raw control chars")),
                c => out.push(c),
            }
        }
        Err(self.err("closing '\"'"))
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        self.eat(b'-');
        let digits_start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("a digit"));
        }
        if self.eat(b'.') {
            let frac_start = self.pos;
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("a fraction digit"));
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("an exponent digit"));
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        Ok(Json::Num(text))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_canonical_and_reparses() {
        let doc = Json::obj()
            .field("schema", Json::str("x/1"))
            .field("n", Json::u64(42))
            .field("pi", Json::f64_3(3.14159))
            .field("flag", Json::Bool(true))
            .field("list", Json::Arr(vec![Json::u64(1), Json::Null]))
            .field("quote", Json::str("a\"b\\c\nd"));
        let text = doc.render();
        assert_eq!(doc.render(), text, "rendering is deterministic");
        let back = parse(&text).expect("reparses");
        assert_eq!(back.get("n"), Some(&Json::Num("42".into())));
        assert_eq!(back.get("pi"), Some(&Json::Num("3.142".into())));
        assert_eq!(back.get("quote"), Some(&Json::Str("a\"b\\c\nd".into())));
        assert_eq!(back, doc);
    }

    #[test]
    fn schema_version_splits_family_and_number() {
        let doc = parse(&report("oocnvm.headline/2", Json::obj())).expect("parses");
        assert_eq!(schema_version(&doc), Some(("oocnvm.headline", 2)));
        let v1 = parse("{\"format\":\"oocnvm.headline/1\"}").expect("parses");
        assert_eq!(schema_version(&v1), Some(("oocnvm.headline", 1)));
        assert_eq!(schema_version(&parse("{}").expect("parses")), None);
        assert_eq!(
            schema_version(&parse("{\"format\":\"no-slash\"}").expect("parses")),
            None
        );
    }

    #[test]
    fn parser_accepts_standard_documents() {
        for ok in [
            "null",
            "true",
            "-12.5e+3",
            "[]",
            "{}",
            "[1,2,[3]]",
            "{\"a\": {\"b\": [false, \"\\u0041\"]}}",
            "  {\"k\"\n:\t1}  ",
        ] {
            assert!(parse(ok).is_ok(), "should parse: {ok}");
        }
        assert_eq!(
            parse("\"\\u0041\""),
            Ok(Json::Str("A".into())),
            "unicode escape decodes"
        );
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "nul",
            "01x",
            "\"unterminated",
            "\"bad \\q escape\"",
            "1 2",
            "{\"a\":1,}",
        ] {
            assert!(parse(bad).is_err(), "should reject: {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err(), "recursion guard");
        let ok = "[".repeat(40) + &"]".repeat(40);
        assert!(parse(&ok).is_ok());
    }
}
