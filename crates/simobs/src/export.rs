//! Trace export: Chrome trace-event JSON (Perfetto / `chrome://tracing`
//! loadable) and a compact text flamegraph-style rollup.
//!
//! The Chrome format wants microsecond timestamps; simulated time is
//! nanoseconds. Timestamps are rendered with *integer* division as
//! `µs.³` (three fractional digits), so no float formatting can perturb
//! the output: equal logs render byte-identical JSON. The export header
//! (`otherData`) carries the emitted/dropped accounting from the
//! bounded sink, so a truncated trace is visibly truncated.

use crate::event::{EventKind, Layer};
use crate::json::Json;
use crate::sink::TraceLog;
use nvmtypes::{approx_f64, Nanos};

/// Version tag written into `otherData.format` — bump on layout change.
pub const TRACE_FORMAT: &str = "oocnvm.trace/1";

/// Renders nanoseconds as a Chrome-trace microsecond number with three
/// fractional digits, using integer math only.
fn us_num(ns: Nanos) -> Json {
    Json::Num(format!("{}.{:03}", ns / 1_000, ns % 1_000))
}

/// Exports a drained [`TraceLog`] as a Chrome trace-event JSON document.
///
/// One process (`pid` 1, named `oocnvm-sim`) with one thread lane per
/// [`Layer`]; spans use phase `"X"`, instants phase `"i"` with thread
/// scope. Counters and histograms ride along in `otherData` so a trace
/// file is self-contained.
pub fn chrome_trace(log: &TraceLog) -> String {
    let mut events = Vec::new();
    // Process/thread metadata first: Perfetto uses these to label lanes.
    events.push(
        Json::obj()
            .field("name", Json::str("process_name"))
            .field("ph", Json::str("M"))
            .field("pid", Json::u64(1))
            .field("tid", Json::u64(0))
            .field("args", Json::obj().field("name", Json::str("oocnvm-sim"))),
    );
    for layer in Layer::ALL {
        events.push(
            Json::obj()
                .field("name", Json::str("thread_name"))
                .field("ph", Json::str("M"))
                .field("pid", Json::u64(1))
                .field("tid", Json::u64(layer.tid()))
                .field("args", Json::obj().field("name", Json::str(layer.label()))),
        );
    }
    for ev in &log.events {
        let mut args = Json::obj();
        for &(key, value) in &ev.args {
            if !key.is_empty() {
                args = args.field(key, Json::u64(value));
            }
        }
        let mut entry = Json::obj()
            .field("name", Json::str(ev.name))
            .field("cat", Json::str(ev.layer.label()))
            .field(
                "ph",
                Json::str(match ev.kind {
                    EventKind::Span => "X",
                    EventKind::Instant => "i",
                }),
            )
            .field("ts", us_num(ev.ts));
        entry = match ev.kind {
            EventKind::Span => entry.field("dur", us_num(ev.dur)),
            EventKind::Instant => entry.field("s", Json::str("t")),
        };
        entry = entry
            .field("pid", Json::u64(1))
            .field("tid", Json::u64(ev.layer.tid()))
            .field("args", args);
        events.push(entry);
    }

    let mut counters = Json::obj();
    for (name, value) in log.metrics.counters() {
        counters = counters.field(name, Json::u64(value));
    }
    let mut gauges = Json::obj();
    for (name, value) in log.metrics.gauges() {
        gauges = gauges.field(name, Json::u64(value));
    }
    let mut hists = Json::obj();
    for (name, h) in log.metrics.histograms() {
        let buckets = Json::Arr(
            h.nonzero_buckets()
                .into_iter()
                .map(|(bound, count)| Json::Arr(vec![Json::u64(bound), Json::u64(count)]))
                .collect(),
        );
        hists = hists.field(
            name,
            Json::obj()
                .field("total", Json::u64(h.total()))
                .field("sum_ns", Json::u64(h.sum()))
                .field("max_ns", Json::u64(h.max()))
                .field("buckets", buckets),
        );
    }

    let mut other = Json::obj()
        .field("format", Json::str(TRACE_FORMAT))
        .field("emitted", Json::u64(log.emitted))
        .field("dropped", Json::u64(log.dropped))
        .field("counters", counters)
        .field("gauges", gauges)
        .field("histograms", hists);
    // Precision HDR histograms ride along only when present, so traces
    // from code that never observes into one render exactly as before.
    let mut hdrs = Json::obj();
    let mut any_hdr = false;
    for (name, h) in log.metrics.hdr_histograms() {
        hdrs = hdrs.field(name, h.to_json());
        any_hdr = true;
    }
    if any_hdr {
        other = other.field("hdr_histograms", hdrs);
    }

    Json::obj()
        .field("traceEvents", Json::Arr(events))
        .field("displayTimeUnit", Json::str("ns"))
        .field("otherData", other)
        .render()
}

/// Renders the compact flamegraph-style text rollup: cumulative span
/// time per `(layer, name)`, widest first within each layer, with the
/// emitted/dropped header and the counter block.
pub fn rollup(log: &TraceLog) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# simobs rollup: {} events collected, {} emitted, {} dropped\n",
        log.events.len(),
        log.emitted,
        log.dropped
    ));
    let mut totals = log.span_totals();
    // Layer track order, then cumulative time descending, then name:
    // a total order, so the rollup is deterministic.
    totals.sort_by(|a, b| {
        (a.0, std::cmp::Reverse(a.2), a.1).cmp(&(b.0, std::cmp::Reverse(b.2), b.1))
    });
    for (layer, name, cum, count) in totals {
        let label = format!("{}/{name}", layer.label());
        out.push_str(&format!(
            "{label:<28} {:>12.3} ms  x{count}\n",
            approx_f64(cum) / 1e6
        ));
    }
    let counters: Vec<(&str, u64)> = log.metrics.counters().collect();
    if !counters.is_empty() {
        out.push_str("# counters\n");
        for (name, value) in counters {
            out.push_str(&format!("{name:<28} {value:>12}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NO_ARGS;
    use crate::sink::Tracer;
    use crate::Layer;

    fn sample_log() -> TraceLog {
        let mut obs = Tracer::ring(16);
        obs.span(
            Layer::Media,
            "die_read",
            0,
            150_000,
            [("die", 0), ("pages", 1)],
        );
        obs.span(
            Layer::Link,
            "host_dma",
            150_000,
            160_500,
            [("bytes", 8192), ("", 0)],
        );
        obs.instant(Layer::Ftl, "gc", 42, NO_ARGS);
        obs.count("ssd.requests", 1);
        obs.observe_ns("ssd.latency_ns", 160_500);
        obs.finish()
    }

    #[test]
    fn chrome_trace_is_valid_json_with_integer_timestamps() {
        let text = chrome_trace(&sample_log());
        let doc = crate::json::parse(&text).expect("export must be valid JSON");
        let events = match doc.get("traceEvents") {
            Some(Json::Arr(items)) => items.clone(),
            other => panic!("traceEvents missing: {other:?}"),
        };
        // 1 process meta + one thread meta per layer + 3 events.
        assert_eq!(events.len(), 1 + Layer::ALL.len() + 3);
        assert!(text.contains("\"ts\":150.000"), "µs.³ timestamps");
        assert!(text.contains("\"dur\":10.500"));
        assert!(text.contains("\"ph\":\"X\"") && text.contains("\"ph\":\"i\""));
        assert!(text.contains("\"format\":\"oocnvm.trace/1\""));
        assert!(text.contains("\"dropped\":0"));
        assert!(text.contains("\"ssd.requests\":1"));
    }

    #[test]
    fn export_is_byte_deterministic() {
        let a = chrome_trace(&sample_log());
        let b = chrome_trace(&sample_log());
        assert_eq!(a, b);
        assert_eq!(rollup(&sample_log()), rollup(&sample_log()));
    }

    #[test]
    fn rollup_orders_by_layer_then_weight() {
        let text = rollup(&sample_log());
        assert!(text.starts_with("# simobs rollup: 3 events"));
        let media = text.find("media/die_read").expect("media line");
        let link = text.find("link/host_dma").expect("link line");
        assert!(media < link, "layer track order");
        assert!(text.contains("# counters"));
        assert!(text.contains("ssd.requests"));
    }

    #[test]
    fn hdr_histograms_export_only_when_observed() {
        let plain = chrome_trace(&sample_log());
        assert!(
            !plain.contains("hdr_histograms"),
            "no HDR block without observations"
        );
        let mut obs = Tracer::ring(16);
        obs.observe_hdr_ns("ssd.latency_ns", 123_456);
        obs.observe_hdr_ns("ssd.latency_ns", 654_321);
        let text = chrome_trace(&obs.finish());
        let doc = crate::json::parse(&text).expect("valid JSON");
        let hdr = doc
            .get("otherData")
            .and_then(|o| o.get("hdr_histograms"))
            .and_then(|h| h.get("ssd.latency_ns"))
            .expect("HDR block present");
        assert_eq!(hdr.get("count"), Some(&Json::u64(2)));
    }

    #[test]
    fn dropped_count_is_surfaced_in_the_header() {
        let mut obs = Tracer::ring(1);
        for i in 0..5 {
            obs.span(Layer::Run, "tick", i, i + 1, NO_ARGS);
        }
        let log = obs.finish();
        let json = chrome_trace(&log);
        assert!(json.contains("\"emitted\":5"));
        assert!(json.contains("\"dropped\":4"));
        assert!(rollup(&log).contains("5 emitted, 4 dropped"));
    }
}
