//! Integer-only metric primitives: counters, gauges, fixed-bucket
//! histograms.
//!
//! Everything here is deterministic by construction — `u64` arithmetic
//! over `BTreeMap`-ordered names, no floats, no clocks — so the metric
//! block of an export is byte-identical between equal runs. Names follow
//! the same `snake_case`, dot-scoped convention as span names
//! (`ssd.requests`, `media.die_ops`; see `docs/OBSERVABILITY.md`).

use crate::hdr::HdrHistogram;
use nvmtypes::Nanos;
use std::collections::BTreeMap;

/// Default histogram bucket bounds for nanosecond latencies: powers of
/// four from 1 µs to ~4.3 s. Fixed at compile time so two runs can never
/// disagree about bucketing.
pub const LATENCY_NS_BOUNDS: [u64; 12] = [
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_024_000,
    4_096_000,
    16_384_000,
    65_536_000,
    262_144_000,
    1_048_576_000,
    4_194_304_000,
];

/// A fixed-bucket integer histogram. Values above the last bound land in
/// an implicit overflow bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixedHistogram {
    bounds: &'static [u64],
    /// One count per bound, plus the overflow bucket.
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    max: u64,
}

impl FixedHistogram {
    /// New histogram over the given ascending bucket bounds.
    pub fn new(bounds: &'static [u64]) -> FixedHistogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds ascend");
        FixedHistogram {
            bounds,
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// The standard latency histogram ([`LATENCY_NS_BOUNDS`]).
    pub fn latency_ns() -> FixedHistogram {
        FixedHistogram::new(&LATENCY_NS_BOUNDS)
    }

    /// Records one value.
    pub fn observe(&mut self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        if let Some(c) = self.counts.get_mut(idx) {
            *c += 1;
        }
        self.total += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observed value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// `(upper_bound, count)` pairs for non-empty buckets; the overflow
    /// bucket reports `u64::MAX` as its bound.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (self.bounds.get(i).copied().unwrap_or(u64::MAX), c))
            .collect()
    }
}

/// A named set of counters, gauges and histograms, ordered by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricSet {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, FixedHistogram>,
    hdrs: BTreeMap<&'static str, HdrHistogram>,
}

impl MetricSet {
    /// New empty set.
    pub fn new() -> MetricSet {
        MetricSet::default()
    }

    /// Adds `delta` to counter `name` (created at zero).
    pub fn count(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Sets gauge `name` to `value` (last write wins).
    pub fn gauge(&mut self, name: &'static str, value: u64) {
        self.gauges.insert(name, value);
    }

    /// Records `value` into latency histogram `name` (created with
    /// [`FixedHistogram::latency_ns`] bounds).
    pub fn observe_ns(&mut self, name: &'static str, value: Nanos) {
        self.hists
            .entry(name)
            .or_insert_with(FixedHistogram::latency_ns)
            .observe(value);
    }

    /// Records `value` into the precision HDR histogram `name` (see
    /// [`crate::hdr`]): log-bucketed, exact p50/p90/p99/p999, merges
    /// associatively across shards.
    pub fn observe_hdr_ns(&mut self, name: &'static str, value: Nanos) {
        self.hdrs
            .entry(name)
            .or_insert_with(HdrHistogram::new)
            .record(value);
    }

    /// Counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if set.
    pub fn gauge_value(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.gauges.iter().map(|(&k, &v)| (k, v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &FixedHistogram)> + '_ {
        self.hists.iter().map(|(&k, v)| (k, v))
    }

    /// The HDR histogram `name`, if any values were observed into it.
    pub fn hdr(&self, name: &str) -> Option<&HdrHistogram> {
        self.hdrs.get(name)
    }

    /// All HDR histograms in name order.
    pub fn hdr_histograms(&self) -> impl Iterator<Item = (&'static str, &HdrHistogram)> + '_ {
        self.hdrs.iter().map(|(&k, v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_upper_bound() {
        let mut h = FixedHistogram::new(&[10, 100, 1000]);
        for v in [1, 10, 11, 100, 5000] {
            h.observe(v);
        }
        // <=10 -> bucket 0 (two), <=100 -> bucket 1 (two), overflow one.
        assert_eq!(h.total(), 5);
        assert_eq!(h.sum(), 1 + 10 + 11 + 100 + 5000);
        assert_eq!(h.max(), 5000);
        assert_eq!(h.nonzero_buckets(), vec![(10, 2), (100, 2), (u64::MAX, 1)]);
    }

    #[test]
    fn metric_set_is_name_ordered_and_additive() {
        let mut m = MetricSet::new();
        m.count("z.late", 1);
        m.count("a.early", 2);
        m.count("z.late", 3);
        m.gauge("depth", 7);
        m.gauge("depth", 9);
        m.observe_ns("lat", 5_000);
        let names: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a.early", "z.late"]);
        assert_eq!(m.counter("z.late"), 4);
        assert_eq!(m.gauge_value("depth"), Some(9));
        assert_eq!(m.counter("missing"), 0);
        let (name, h) = m.histograms().next().unwrap();
        assert_eq!(name, "lat");
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn hdr_histograms_ride_alongside_fixed_ones() {
        let mut m = MetricSet::new();
        assert!(m.hdr("ssd.latency_ns").is_none());
        m.observe_hdr_ns("ssd.latency_ns", 12_345);
        m.observe_hdr_ns("ssd.latency_ns", 54_321);
        let h = m.hdr("ssd.latency_ns").unwrap();
        assert_eq!(h.total(), 2);
        assert_eq!(h.max(), 54_321);
        let names: Vec<&str> = m.hdr_histograms().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["ssd.latency_ns"]);
    }
}
