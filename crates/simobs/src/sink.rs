//! Event collection: the [`Sink`] trait, the bounded [`RingSink`], the
//! zero-work [`NullSink`], and the [`Tracer`] handle the simulators
//! thread events through.
//!
//! The tracer is the only type instrumented code touches. Its disabled
//! form ([`Tracer::off`]) answers [`Tracer::enabled`] with `false` and
//! drops every record before argument evaluation, so the hot-path cost
//! of tracing-off is one branch — and, critically for the determinism
//! contract, a tracer never feeds anything *back* into the simulation:
//! it draws no randomness, owns no clock, and returns no values the
//! caller could use.

use crate::event::{Event, EventArgs, EventKind, Layer};
use crate::metrics::{FixedHistogram, MetricSet};
use nvmtypes::Nanos;
use std::collections::VecDeque;

/// Receives recorded events. Implementations must be deterministic:
/// equal event sequences must leave equal sink states.
pub trait Sink: std::fmt::Debug {
    /// Accepts one event.
    fn record(&mut self, event: &Event);
    /// Drains the collected events (oldest first) and the count of
    /// events dropped by bounding, if any.
    fn drain(&mut self) -> (Vec<Event>, u64);
}

/// A sink that discards everything (the tracing-off collector).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&mut self, _event: &Event) {}
    fn drain(&mut self) -> (Vec<Event>, u64) {
        (Vec::new(), 0)
    }
}

/// A bounded ring buffer: keeps the most recent `capacity` events,
/// counting (not silently losing) the oldest ones it evicts. The drop
/// count is surfaced in the export header so a truncated trace can
/// never masquerade as a complete one.
#[derive(Debug, Clone)]
pub struct RingSink {
    capacity: usize,
    buf: VecDeque<Event>,
    dropped: u64,
}

impl RingSink {
    /// New ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> RingSink {
        let capacity = capacity.max(1);
        RingSink {
            capacity,
            buf: VecDeque::with_capacity(capacity),
            dropped: 0,
        }
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Sink for RingSink {
    fn record(&mut self, event: &Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(*event);
    }

    fn drain(&mut self) -> (Vec<Event>, u64) {
        let events = self.buf.drain(..).collect();
        let dropped = self.dropped;
        self.dropped = 0;
        (events, dropped)
    }
}

/// Where a tracer sends its events.
#[derive(Debug)]
enum SinkSlot {
    /// Tracing disabled: every record call returns immediately.
    Off,
    /// The default bounded collector.
    Ring(RingSink),
    /// A caller-supplied sink.
    Custom(Box<dyn Sink>),
}

/// The handle instrumented code emits through.
///
/// ```
/// use simobs::{Layer, Tracer};
///
/// let mut obs = Tracer::ring(1024);
/// obs.span(Layer::Ssd, "read", 0, 2_000, [("bytes", 4096), ("", 0)]);
/// obs.count("ssd.requests", 1);
/// let log = obs.finish();
/// assert_eq!(log.events.len(), 1);
/// assert_eq!(log.metrics.counter("ssd.requests"), 1);
/// ```
#[derive(Debug)]
pub struct Tracer {
    slot: SinkSlot,
    emitted: u64,
    metrics: MetricSet,
}

impl Tracer {
    /// A disabled tracer: records nothing, allocates nothing.
    pub fn off() -> Tracer {
        Tracer {
            slot: SinkSlot::Off,
            emitted: 0,
            metrics: MetricSet::new(),
        }
    }

    /// A tracer collecting into a [`RingSink`] of `capacity` events.
    pub fn ring(capacity: usize) -> Tracer {
        Tracer {
            slot: SinkSlot::Ring(RingSink::new(capacity)),
            emitted: 0,
            metrics: MetricSet::new(),
        }
    }

    /// A tracer collecting into a caller-supplied sink.
    pub fn with_sink(sink: Box<dyn Sink>) -> Tracer {
        Tracer {
            slot: SinkSlot::Custom(sink),
            emitted: 0,
            metrics: MetricSet::new(),
        }
    }

    /// True when events are being collected. Instrumented code guards
    /// argument construction behind this so tracing-off costs one branch.
    #[inline]
    pub fn enabled(&self) -> bool {
        !matches!(self.slot, SinkSlot::Off)
    }

    #[inline]
    fn record(&mut self, event: Event) {
        match &mut self.slot {
            SinkSlot::Off => {}
            SinkSlot::Ring(ring) => {
                ring.record(&event);
                self.emitted += 1;
            }
            SinkSlot::Custom(sink) => {
                sink.record(&event);
                self.emitted += 1;
            }
        }
    }

    /// Records a span covering `[start, end]` simulated ns.
    #[inline]
    pub fn span(
        &mut self,
        layer: Layer,
        name: &'static str,
        start: Nanos,
        end: Nanos,
        args: EventArgs,
    ) {
        if self.enabled() {
            self.record(Event::span(layer, name, start, end).with_args(args));
        }
    }

    /// Records an instant marker at `ts` simulated ns.
    #[inline]
    pub fn instant(&mut self, layer: Layer, name: &'static str, ts: Nanos, args: EventArgs) {
        if self.enabled() {
            self.record(Event::instant(layer, name, ts).with_args(args));
        }
    }

    /// Adds `delta` to counter `name`. Metrics are kept even when event
    /// collection is off (they are cheap and deterministic), *unless*
    /// the tracer is fully disabled.
    #[inline]
    pub fn count(&mut self, name: &'static str, delta: u64) {
        if self.enabled() {
            self.metrics.count(name, delta);
        }
    }

    /// Sets gauge `name`.
    #[inline]
    pub fn gauge(&mut self, name: &'static str, value: u64) {
        if self.enabled() {
            self.metrics.gauge(name, value);
        }
    }

    /// Records `value` into histogram `name`.
    #[inline]
    pub fn observe_ns(&mut self, name: &'static str, value: Nanos) {
        if self.enabled() {
            self.metrics.observe_ns(name, value);
        }
    }

    /// Records `value` into the precision HDR histogram `name` (see
    /// [`crate::hdr`]). Like every tracer entry point, a disabled tracer
    /// skips the work entirely.
    #[inline]
    pub fn observe_hdr_ns(&mut self, name: &'static str, value: Nanos) {
        if self.enabled() {
            self.metrics.observe_hdr_ns(name, value);
        }
    }

    /// Events accepted by the sink so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Read access to the collected metrics.
    pub fn metrics(&self) -> &MetricSet {
        &self.metrics
    }

    /// Ends the session: drains the sink into a [`TraceLog`] ready for
    /// export.
    pub fn finish(self) -> TraceLog {
        let Tracer {
            slot,
            emitted,
            metrics,
        } = self;
        let (events, dropped) = match slot {
            SinkSlot::Off => (Vec::new(), 0),
            SinkSlot::Ring(mut ring) => ring.drain(),
            SinkSlot::Custom(mut sink) => sink.drain(),
        };
        TraceLog {
            events,
            emitted,
            dropped,
            metrics,
        }
    }
}

/// The drained result of one tracing session.
#[derive(Debug)]
pub struct TraceLog {
    /// Collected events, oldest first.
    pub events: Vec<Event>,
    /// Events emitted in total (collected + dropped).
    pub emitted: u64,
    /// Events the bounded sink evicted.
    pub dropped: u64,
    /// The metric set recorded alongside.
    pub metrics: MetricSet,
}

impl TraceLog {
    /// Total span duration per `(layer, name)` key, in event order of
    /// first appearance — the aggregation behind [`crate::rollup`].
    pub fn span_totals(&self) -> Vec<(Layer, &'static str, Nanos, u64)> {
        let mut keys: Vec<(Layer, &'static str)> = Vec::new();
        let mut totals: Vec<(Nanos, u64)> = Vec::new();
        for ev in &self.events {
            if !matches!(ev.kind, EventKind::Span) {
                continue;
            }
            let key = (ev.layer, ev.name);
            match keys.iter().position(|&k| k == key) {
                Some(i) => {
                    if let Some(t) = totals.get_mut(i) {
                        t.0 += ev.dur;
                        t.1 += 1;
                    }
                }
                None => {
                    keys.push(key);
                    totals.push((ev.dur, 1));
                }
            }
        }
        keys.into_iter()
            .zip(totals)
            .map(|((l, n), (d, c))| (l, n, d, c))
            .collect()
    }

    /// Latency histogram by name, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&FixedHistogram> {
        self.metrics
            .histograms()
            .find(|(n, _)| *n == name)
            .map(|(_, h)| h)
    }

    /// Precision HDR histogram by name, if recorded.
    pub fn hdr(&self, name: &str) -> Option<&crate::hdr::HdrHistogram> {
        self.metrics.hdr(name)
    }
}

/// A helper used by tests: a sink recording everything, unbounded.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    events: Vec<Event>,
}

impl Sink for VecSink {
    fn record(&mut self, event: &Event) {
        self.events.push(*event);
    }
    fn drain(&mut self) -> (Vec<Event>, u64) {
        (std::mem::take(&mut self.events), 0)
    }
}

/// Re-export for instrumented code that wants explicit no-args.
pub use crate::event::NO_ARGS as NO_EVENT_ARGS;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NO_ARGS;

    fn ev(ts: Nanos) -> Event {
        Event::span(Layer::Media, "op", ts, ts + 10)
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut ring = RingSink::new(3);
        for i in 0..10 {
            ring.record(&ev(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 7);
        let (events, dropped) = ring.drain();
        assert_eq!(dropped, 7);
        let ts: Vec<Nanos> = events.iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![7, 8, 9], "newest survive, oldest dropped");
    }

    #[test]
    fn off_tracer_records_nothing() {
        let mut obs = Tracer::off();
        assert!(!obs.enabled());
        obs.span(Layer::Ssd, "read", 0, 100, NO_ARGS);
        obs.count("c", 1);
        obs.observe_ns("h", 5);
        let log = obs.finish();
        assert!(log.events.is_empty());
        assert_eq!(log.emitted, 0);
        assert_eq!(log.metrics.counter("c"), 0);
    }

    #[test]
    fn finish_reports_emitted_vs_dropped() {
        let mut obs = Tracer::ring(2);
        for i in 0..5 {
            obs.instant(Layer::Run, "tick", i, NO_ARGS);
        }
        assert_eq!(obs.emitted(), 5);
        let log = obs.finish();
        assert_eq!(log.events.len(), 2);
        assert_eq!(log.emitted, 5);
        assert_eq!(log.dropped, 3);
    }

    #[test]
    fn span_totals_aggregate_by_layer_and_name() {
        let mut obs = Tracer::with_sink(Box::new(VecSink::default()));
        obs.span(Layer::Media, "die_read", 0, 10, NO_ARGS);
        obs.span(Layer::Media, "die_read", 10, 30, NO_ARGS);
        obs.span(Layer::Link, "host_dma", 0, 5, NO_ARGS);
        obs.instant(Layer::Ftl, "gc", 3, NO_ARGS);
        let log = obs.finish();
        let totals = log.span_totals();
        assert_eq!(
            totals,
            vec![
                (Layer::Media, "die_read", 30, 2),
                (Layer::Link, "host_dma", 5, 1),
            ]
        );
    }
}
