//! Per-layer latency attribution: where each request's end-to-end
//! nanoseconds went.
//!
//! The decomposition is *exact by construction*: the device engine cuts
//! each request's timeline at its scheduling checkpoints (issue, media
//! service start/end, DMA start/end), so the components of one request
//! sum to precisely its measured latency — integer arithmetic, no
//! rounding residue — and the run totals sum to the sum of per-request
//! latencies. Recovery time appears in exactly one component
//! ([`LatencyAttribution::recovery_ns`]): it is carved out of the media
//! service wall and the link transfer before the die/channel/link splits
//! are taken, never double-counted against them.

use nvmtypes::{approx_f64, Nanos};

/// One request's exact latency decomposition, produced by the device
/// engine; [`LatencyAttribution::absorb`] folds it into run totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestBreakdown {
    /// Host-side and controller-side waiting: closed-loop queueing,
    /// firmware processing, buffer turnaround between phases.
    pub queue_ns: Nanos,
    /// Media cell time: sensing/programming/erasing plus die-busy waits.
    pub die_ns: Nanos,
    /// Media channel time: data transfer, command cycles, bus waits.
    pub channel_ns: Nanos,
    /// Host-link transfer time (the clean DMA cost).
    pub link_ns: Nanos,
    /// Whole-request cost of file-system-generated traffic (metadata
    /// lookups, journal commits — the `sync` barrier requests).
    pub fs_meta_ns: Nanos,
    /// Fault recovery: ECC retry ladders, re-programs, re-erases, link
    /// CRC replays and retrains. Counted here and nowhere else.
    pub recovery_ns: Nanos,
    /// Measured end-to-end latency (issue to completion).
    pub total_ns: Nanos,
}

impl RequestBreakdown {
    /// Sum of the components; equals `total_ns` for engine-produced
    /// breakdowns.
    pub fn component_sum(&self) -> Nanos {
        self.queue_ns
            + self.die_ns
            + self.channel_ns
            + self.link_ns
            + self.fs_meta_ns
            + self.recovery_ns
    }

    /// Splits a media service wall (`service_ns`, already net of
    /// recovery) into die and channel shares, proportional to the raw
    /// activation+contention nanoseconds the media engine accounted to
    /// cells (`die_weight`) and to channels (`channel_weight`). The two
    /// shares sum to `service_ns` exactly; with no channel evidence the
    /// whole wall is die time (media service is cell-dominated).
    pub fn split_service(
        service_ns: Nanos,
        die_weight: u64,
        channel_weight: u64,
    ) -> (Nanos, Nanos) {
        let denom = die_weight + channel_weight;
        if denom == 0 {
            return (service_ns, 0);
        }
        let die = u128::from(service_ns) * u128::from(die_weight) / u128::from(denom);
        // The quotient is <= service_ns by construction, so the
        // conversion cannot actually fail; saturate defensively.
        let die = u64::try_from(die).unwrap_or(service_ns).min(service_ns);
        (die, service_ns - die)
    }
}

/// Run-level latency attribution: the sum of every request's
/// [`RequestBreakdown`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyAttribution {
    /// Total queue/firmware/turnaround wait, ns.
    pub queue_ns: Nanos,
    /// Total media cell time, ns.
    pub die_ns: Nanos,
    /// Total media channel time, ns.
    pub channel_ns: Nanos,
    /// Total host-link transfer time, ns.
    pub link_ns: Nanos,
    /// Total file-system-overhead request time, ns.
    pub fs_meta_ns: Nanos,
    /// Total recovery time, ns (exactly once; see module docs).
    pub recovery_ns: Nanos,
    /// Sum of measured end-to-end latencies, ns.
    pub total_ns: Nanos,
    /// Requests decomposed.
    pub requests: u64,
}

impl LatencyAttribution {
    /// Folds one request's breakdown into the run totals.
    pub fn absorb(&mut self, req: RequestBreakdown) {
        self.queue_ns += req.queue_ns;
        self.die_ns += req.die_ns;
        self.channel_ns += req.channel_ns;
        self.link_ns += req.link_ns;
        self.fs_meta_ns += req.fs_meta_ns;
        self.recovery_ns += req.recovery_ns;
        self.total_ns += req.total_ns;
        self.requests += 1;
    }

    /// Sum of the six components.
    pub fn component_sum(&self) -> Nanos {
        self.queue_ns
            + self.die_ns
            + self.channel_ns
            + self.link_ns
            + self.fs_meta_ns
            + self.recovery_ns
    }

    /// True when the components sum exactly to the measured total — the
    /// invariant the engine maintains and the tests pin.
    pub fn is_exact(&self) -> bool {
        self.component_sum() == self.total_ns
    }

    /// `(label, ns)` pairs in report order.
    pub fn components(&self) -> [(&'static str, Nanos); 6] {
        [
            ("queue", self.queue_ns),
            ("die", self.die_ns),
            ("channel", self.channel_ns),
            ("link", self.link_ns),
            ("fs_meta", self.fs_meta_ns),
            ("recovery", self.recovery_ns),
        ]
    }

    /// Human-readable attribution table (one line per component with
    /// percent of total).
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "latency attribution over {} requests ({:.3} ms total):\n",
            self.requests,
            approx_f64(self.total_ns) / 1e6
        ));
        for (label, ns) in self.components() {
            let pct = if self.total_ns == 0 {
                0.0
            } else {
                approx_f64(ns) / approx_f64(self.total_ns) * 100.0
            };
            out.push_str(&format!(
                "  {label:<9} {:>14.3} ms  {pct:>5.1}%\n",
                approx_f64(ns) / 1e6
            ));
        }
        out.push_str(&format!(
            "  components sum to total exactly: {}\n",
            if self.is_exact() { "OK" } else { "FAIL" }
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_exact_and_proportional() {
        let (die, chan) = RequestBreakdown::split_service(1000, 3, 1);
        assert_eq!(die + chan, 1000);
        assert_eq!(die, 750);
        let (die, chan) = RequestBreakdown::split_service(999, 1, 2);
        assert_eq!(die + chan, 999);
        assert_eq!(die, 333);
        // No evidence: all die.
        assert_eq!(RequestBreakdown::split_service(77, 0, 0), (77, 0));
        // Zero wall: zero split.
        assert_eq!(RequestBreakdown::split_service(0, 5, 5), (0, 0));
    }

    #[test]
    fn absorb_accumulates_and_stays_exact() {
        let mut a = LatencyAttribution::default();
        a.absorb(RequestBreakdown {
            queue_ns: 10,
            die_ns: 20,
            channel_ns: 5,
            link_ns: 15,
            fs_meta_ns: 0,
            recovery_ns: 50,
            total_ns: 100,
        });
        a.absorb(RequestBreakdown {
            fs_meta_ns: 40,
            total_ns: 40,
            ..RequestBreakdown::default()
        });
        assert_eq!(a.requests, 2);
        assert_eq!(a.total_ns, 140);
        assert!(a.is_exact());
        assert!(a.table().contains("OK"));
        let labels: Vec<&str> = a.components().iter().map(|&(l, _)| l).collect();
        assert_eq!(
            labels,
            vec!["queue", "die", "channel", "link", "fs_meta", "recovery"]
        );
    }
}
