//! The event model: which layer spoke, when (in simulated time), and
//! what about.
//!
//! Events are small `Copy` records with `&'static str` names so that
//! recording one costs two pointer-sized copies and no allocation. The
//! span-naming convention (see `docs/OBSERVABILITY.md`) is
//! `snake_case`, scoped by [`Layer`]: the pair `(layer, name)` is the
//! aggregation key of the flamegraph rollup.

use nvmtypes::Nanos;

/// The instrumented layer an event belongs to. Maps to the `tid` lane of
/// the Chrome trace so each layer renders as its own track in Perfetto.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Layer {
    /// NVM media: die-op scheduling in `flashsim` (sense/program/erase).
    Media,
    /// Flash-translation decisions in `ssd`: GC, erase-ahead, remaps.
    Ftl,
    /// Device engine in `ssd`: request lifecycle, recovery ladders.
    Ssd,
    /// Host interconnect: DMA transfers, CRC replays, retrains.
    Link,
    /// File-system request transformation in `oocfs`.
    Fs,
    /// Out-of-core application: LOBPCG iteration phases.
    Solver,
    /// Whole-run markers emitted by the drivers.
    Run,
    /// The journaled UFS filesystem in `ufs`: mounts, journal commits,
    /// crash recovery.
    Ufs,
}

impl Layer {
    /// Every layer, in track order.
    pub const ALL: [Layer; 8] = [
        Layer::Media,
        Layer::Ftl,
        Layer::Ssd,
        Layer::Link,
        Layer::Fs,
        Layer::Solver,
        Layer::Run,
        Layer::Ufs,
    ];

    /// Track label, also the `cat` field of exported events.
    pub fn label(self) -> &'static str {
        match self {
            Layer::Media => "media",
            Layer::Ftl => "ftl",
            Layer::Ssd => "ssd",
            Layer::Link => "link",
            Layer::Fs => "fs",
            Layer::Solver => "solver",
            Layer::Run => "run",
            Layer::Ufs => "ufs",
        }
    }

    /// Stable thread-id lane for the Chrome trace (1-based; tid 0 is
    /// reserved so Perfetto never merges a layer into the process row).
    pub fn tid(self) -> u64 {
        match self {
            Layer::Media => 1,
            Layer::Ftl => 2,
            Layer::Ssd => 3,
            Layer::Link => 4,
            Layer::Fs => 5,
            Layer::Solver => 6,
            Layer::Run => 7,
            Layer::Ufs => 8,
        }
    }
}

/// What shape an event has on the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A duration: `[ts, ts + dur]` (Chrome phase `"X"`).
    Span,
    /// A point marker at `ts` (Chrome phase `"i"`).
    Instant,
}

/// Up to two integer arguments per event; an empty key marks an unused
/// slot (skipped at export).
pub type EventArgs = [(&'static str, u64); 2];

/// No arguments.
pub const NO_ARGS: EventArgs = [("", 0), ("", 0)];

/// One recorded trace event, keyed to simulated nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Start time, simulated ns.
    pub ts: Nanos,
    /// Duration, simulated ns (0 for instants).
    pub dur: Nanos,
    /// Which layer emitted it.
    pub layer: Layer,
    /// Span/instant name (`snake_case`; see the naming convention).
    pub name: &'static str,
    /// Timeline shape.
    pub kind: EventKind,
    /// Integer arguments.
    pub args: EventArgs,
}

impl Event {
    /// Builds a span covering `[start, end]` (saturating if inverted).
    pub fn span(layer: Layer, name: &'static str, start: Nanos, end: Nanos) -> Event {
        Event {
            ts: start,
            dur: end.saturating_sub(start),
            layer,
            name,
            kind: EventKind::Span,
            args: NO_ARGS,
        }
    }

    /// Builds an instant marker at `ts`.
    pub fn instant(layer: Layer, name: &'static str, ts: Nanos) -> Event {
        Event {
            ts,
            dur: 0,
            layer,
            name,
            kind: EventKind::Instant,
            args: NO_ARGS,
        }
    }

    /// Attaches arguments.
    pub fn with_args(mut self, args: EventArgs) -> Event {
        self.args = args;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_lanes_are_unique_and_ordered() {
        let mut tids: Vec<u64> = Layer::ALL.iter().map(|l| l.tid()).collect();
        let sorted = tids.clone();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), Layer::ALL.len(), "duplicate tid lanes");
        assert_eq!(tids, sorted, "Layer::ALL must be in track order");
        assert!(!tids.contains(&0), "tid 0 is reserved");
    }

    #[test]
    fn span_saturates_inverted_ranges() {
        let e = Event::span(Layer::Ssd, "x", 10, 5);
        assert_eq!(e.dur, 0);
        let e = Event::span(Layer::Ssd, "x", 5, 15).with_args([("bytes", 7), ("", 0)]);
        assert_eq!(e.dur, 10);
        assert_eq!(e.args[0], ("bytes", 7));
    }
}
