//! Deterministic HDR-style latency histograms: integer-only log-bucketed
//! counts with exact quantile extraction and associative merge.
//!
//! The fixed-bucket histogram in [`crate::metrics`] is deliberately
//! coarse (twelve powers of four) — good enough for an at-a-glance
//! export block, useless for a p999. This module is the precision
//! companion: a log-linear bucket scheme in the style of HdrHistogram,
//! but stripped to what the determinism contract needs:
//!
//! * **Integer-only.** Bucketing is shifts and comparisons on `u64`;
//!   quantile ranks are integer ceilings. No float ever touches a value,
//!   so two runs can never disagree about a percentile.
//! * **Fixed scheme.** [`SUB_BITS`] is a compile-time constant; every
//!   histogram in the workspace uses the same [`BUCKETS`] layout, so any
//!   two histograms can merge.
//! * **Associative, commutative merge.** [`HdrHistogram::merge`] is
//!   element-wise saturating addition over the bucket array plus
//!   min/max/total folds — per-shard histograms combine into the same
//!   bytes in any grouping and any order, which is what lets the batch
//!   runners aggregate on the thread pool without the worker count
//!   leaking into the output (pinned by `tests/prop_hdr.rs`).
//! * **Bounded relative error.** A value lands in a bucket whose width
//!   is at most `1/2^SUB_BITS` of its lower bound, so a reported
//!   quantile `q` satisfies `true <= q <= true + true/32`.
//!
//! See `docs/PROFILING.md` for the bucket-scheme walkthrough and how the
//! bench baseline consumes these.

use crate::json::Json;
use nvmtypes::convert::{u64_from_usize, usize_from};

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear sub-buckets, bounding relative quantile error at
/// `1/2^SUB_BITS` (3.125%).
pub const SUB_BITS: u32 = 5;

/// Sub-buckets per octave (`2^SUB_BITS`).
pub const SUB: u64 = 1 << SUB_BITS;

/// Total bucket count: `SUB` exact small-value buckets (`0..SUB`), then
/// `64 - SUB_BITS` octaves of `SUB` sub-buckets each, covering all of
/// `u64` with no overflow bucket.
pub const BUCKETS: usize = 1920;

/// Bucket index for a value. Values below [`SUB`] are exact (one value
/// per bucket); above, the top `SUB_BITS + 1` significant bits select a
/// log-linear bucket.
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return usize_from(v);
    }
    // v >= SUB, so the most significant set bit is at least SUB_BITS.
    let msb = 63 - v.leading_zeros();
    let exp = msb - SUB_BITS;
    let sub = (v >> exp) - SUB;
    usize_from(SUB + u64::from(exp) * SUB + sub)
}

/// Largest value that maps to bucket `i` (the bucket's representative:
/// quantiles report this bound, keeping estimates `>=` the true value).
fn bucket_high(i: usize) -> u64 {
    let i = u64_from_usize(i);
    if i < SUB {
        return i;
    }
    let exp = (i - SUB) / SUB;
    let sub = (i - SUB) % SUB;
    // (SUB + sub + 1) << exp, minus one; the very last bucket's bound
    // would be 2^64, so saturate to u64::MAX.
    match (SUB + sub + 1).checked_shl(u32::try_from(exp).unwrap_or(u32::MAX)) {
        Some(top) if top != 0 => top - 1,
        _ => u64::MAX,
    }
}

/// Exact percentile summary extracted from a histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HdrPercentiles {
    /// Median (50th percentile), ns.
    pub p50: u64,
    /// 90th percentile, ns.
    pub p90: u64,
    /// 99th percentile, ns.
    pub p99: u64,
    /// 99.9th percentile, ns.
    pub p999: u64,
    /// Exact largest recorded value, ns.
    pub max: u64,
}

/// A deterministic log-bucketed histogram over `u64` values.
///
/// `Eq` compares the full bucket array; two histograms are equal iff
/// they render identically.
#[derive(Clone, PartialEq, Eq)]
pub struct HdrHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for HdrHistogram {
    fn default() -> HdrHistogram {
        HdrHistogram::new()
    }
}

impl HdrHistogram {
    /// New empty histogram.
    pub fn new() -> HdrHistogram {
        HdrHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` observations of `value` at once.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        if let Some(c) = self.counts.get_mut(bucket_index(value)) {
            *c = c.saturating_add(n);
        }
        self.total = self.total.saturating_add(n);
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds `other` into `self`: element-wise bucket addition plus
    /// min/max/total/sum folds. Associative and commutative, so shard
    /// order and grouping are invisible in the result.
    pub fn merge(&mut self, other: &HdrHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a = a.saturating_add(*b);
        }
        self.total = self.total.saturating_add(other.total);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Saturating sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at quantile `num/den` (e.g. `999/1000` for p999): the
    /// representative bound of the bucket holding the observation of
    /// integer rank `ceil(total * num / den)`, clamped to the exact
    /// recorded maximum. 0 when empty. The estimate `q` of a true
    /// quantile value `t` satisfies `t <= q <= t + t/SUB`.
    pub fn value_at_quantile(&self, num: u64, den: u64) -> u64 {
        if self.total == 0 || den == 0 {
            return 0;
        }
        let product = self.total.saturating_mul(num);
        let rank = (product.div_ceil(den)).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return bucket_high(i).min(self.max);
            }
        }
        self.max
    }

    /// The standard percentile block: p50/p90/p99/p999 plus exact max.
    pub fn percentiles(&self) -> HdrPercentiles {
        HdrPercentiles {
            p50: self.value_at_quantile(1, 2),
            p90: self.value_at_quantile(9, 10),
            p99: self.value_at_quantile(99, 100),
            p999: self.value_at_quantile(999, 1000),
            max: self.max(),
        }
    }

    /// `(bucket_index, count)` pairs for non-empty buckets, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// Canonical JSON form: summary fields plus the sparse bucket list.
    /// Equal histograms render byte-identically (insertion-ordered keys,
    /// integer-only values).
    pub fn to_json(&self) -> Json {
        let p = self.percentiles();
        let buckets = self
            .nonzero_buckets()
            .into_iter()
            .map(|(i, c)| Json::Arr(vec![Json::u64(u64_from_usize(i)), Json::u64(c)]))
            .collect();
        Json::obj()
            .field("scheme", Json::u64(u64::from(SUB_BITS)))
            .field("count", Json::u64(self.total))
            .field("sum", Json::u64(self.sum))
            .field("min", Json::u64(self.min()))
            .field("max", Json::u64(self.max))
            .field("p50", Json::u64(p.p50))
            .field("p90", Json::u64(p.p90))
            .field("p99", Json::u64(p.p99))
            .field("p999", Json::u64(p.p999))
            .field("buckets", Json::Arr(buckets))
    }

    /// Canonical serialized form ([`HdrHistogram::to_json`], rendered).
    pub fn encode(&self) -> String {
        self.to_json().render()
    }
}

/// Compact `Debug`: summary numbers and the sparse buckets, not 1920
/// zeroes — `RunReport`'s `{:?}` rendering embeds this, and the
/// determinism tests diff those strings.
impl std::fmt::Debug for HdrHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HdrHistogram")
            .field("count", &self.total)
            .field("sum", &self.sum)
            .field("min", &self.min())
            .field("max", &self.max)
            .field("buckets", &self.nonzero_buckets())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = HdrHistogram::new();
        for v in 0..SUB {
            h.record(v);
        }
        for v in 0..SUB {
            assert_eq!(bucket_high(bucket_index(v)), v, "value {v} is exact");
        }
        assert_eq!(h.total(), SUB);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB - 1);
    }

    #[test]
    fn buckets_are_contiguous_and_monotonic() {
        let mut prev_high = None;
        for i in 0..BUCKETS {
            let high = bucket_high(i);
            if let Some(p) = prev_high {
                assert!(high > p, "bucket {i} bound {high} not above {p}");
            }
            prev_high = Some(high);
        }
        assert_eq!(bucket_high(BUCKETS - 1), u64::MAX);
        // Every bucket's bound maps back into itself.
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_high(i)), i, "bound of bucket {i}");
        }
    }

    #[test]
    fn index_covers_the_boundaries() {
        for v in [
            0,
            1,
            SUB - 1,
            SUB,
            SUB + 1,
            2 * SUB - 1,
            2 * SUB,
            1 << 20,
            (1 << 20) + 1,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(i < BUCKETS, "value {v} -> index {i} out of range");
            assert!(bucket_high(i) >= v, "value {v} above its bucket bound");
        }
    }

    #[test]
    fn quantiles_bracket_the_truth() {
        let mut h = HdrHistogram::new();
        let values: Vec<u64> = (1..=10_000).map(|i| i * 37 + (i % 11) * 1000).collect();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for (num, den) in [(1, 2), (9, 10), (99, 100), (999, 1000)] {
            let rank = usize_from((u64_from_usize(sorted.len()) * num).div_ceil(den).max(1));
            let truth = sorted[rank - 1];
            let est = h.value_at_quantile(num, den);
            assert!(est >= truth, "p{num}/{den}: {est} < true {truth}");
            assert!(
                est <= truth + truth / SUB,
                "p{num}/{den}: {est} above error bound for {truth}"
            );
        }
        assert_eq!(h.percentiles().max, *sorted.last().unwrap());
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = HdrHistogram::new();
        assert_eq!(h.percentiles(), HdrPercentiles::default());
        assert_eq!(h.min(), 0);
        assert_eq!(h.value_at_quantile(1, 2), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut all = HdrHistogram::new();
        let mut a = HdrHistogram::new();
        let mut b = HdrHistogram::new();
        for i in 0..1000u64 {
            let v = i * i + 17;
            all.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, all);
        assert_eq!(merged.encode(), all.encode());
        // Commutes.
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ba, merged);
    }

    #[test]
    fn debug_is_compact() {
        let mut h = HdrHistogram::new();
        h.record(5);
        let s = format!("{h:?}");
        assert!(s.contains("count: 1"));
        assert!(s.len() < 200, "debug form must stay sparse: {s}");
    }
}
