//! # ooctrace — two-level I/O trace capture and replay
//!
//! The paper's tracing methodology (§4.2) captures the out-of-core
//! application's I/O at two levels:
//!
//! 1. **POSIX-level** traces directly under the application (before the file
//!    system) on the compute nodes, and
//! 2. **device-level block** traces under the file system, which are what a
//!    storage simulator consumes.
//!
//! This crate provides both representations ([`PosixTrace`],
//! [`BlockTrace`]), a thread-safe [`TraceCapture`] sink that the `ooc`
//! crate's out-of-core store writes into while the eigensolver runs, access
//! pattern statistics (sequentiality, request-size distribution), and the
//! `(sequence, address)` scatter data behind Figure 6.
// Burn-down lint debt: legacy `unwrap`/`expect` sites in this crate are
// inventoried per-file in `simlint.allow` (counts may only decrease).
// New code must return typed errors; see docs/INVARIANTS.md.
#![allow(clippy::unwrap_used, clippy::expect_used)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod capture;
pub mod record;
pub mod replay;
pub mod stats;

pub use block::BlockTrace;
pub use capture::{TraceCapture, TraceSink};
pub use record::{PosixTrace, TraceRecord};
pub use replay::{dilate_time, filter_file, merge_clients, split_at_bytes};
pub use stats::{AccessStats, ScatterPoint, SizeHistogram};
