//! Access-pattern statistics and the Figure-6 scatter data.

use crate::block::BlockTrace;
use crate::record::PosixTrace;
use serde::{Deserialize, Serialize};

/// One point of the Figure-6 style access-pattern scatter:
/// the `seq`-th request in the trace touched byte address `addr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScatterPoint {
    /// Position of the access in issue order.
    pub seq: u64,
    /// Starting byte address of the access.
    pub addr: u64,
    /// Length of the access in bytes.
    pub len: u64,
}

/// Power-of-two request-size histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SizeHistogram {
    /// `buckets[i]` counts requests with `2^i <= len < 2^(i+1)`
    /// (bucket 0 also holds zero-length requests).
    pub buckets: Vec<u64>,
}

impl SizeHistogram {
    /// Builds a histogram from request lengths.
    pub fn from_lengths<I: IntoIterator<Item = u64>>(lens: I) -> SizeHistogram {
        let mut buckets = vec![0u64; 64];
        for len in lens {
            let b = if len <= 1 {
                0
            } else {
                63 - len.leading_zeros() as usize
            };
            buckets[b] += 1;
        }
        while buckets.len() > 1 && buckets.last() == Some(&0) {
            buckets.pop();
        }
        SizeHistogram { buckets }
    }

    /// Total number of requests counted.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Median request size, as the lower bound of the bucket containing the
    /// median request (0 for an empty histogram).
    pub fn median_bucket_floor(&self) -> u64 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen * 2 >= total {
                return 1u64 << i;
            }
        }
        0
    }
}

/// Aggregate shape statistics of a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessStats {
    /// Number of requests.
    pub count: u64,
    /// Total bytes.
    pub bytes: u64,
    /// Mean request size in bytes.
    pub mean_size: f64,
    /// Fraction of back-to-back sequential requests.
    pub sequentiality: f64,
    /// Request-size distribution.
    pub sizes: SizeHistogram,
}

impl AccessStats {
    /// Statistics of a device-level block trace.
    pub fn of_block(trace: &BlockTrace) -> AccessStats {
        AccessStats {
            count: trace.len() as u64,
            bytes: trace.total_bytes(),
            mean_size: trace.mean_request_size(),
            sequentiality: trace.sequentiality(),
            sizes: SizeHistogram::from_lengths(trace.requests.iter().map(|r| r.len)),
        }
    }

    /// Statistics of a POSIX-level trace (per-file sequentiality is not
    /// distinguished; offsets are compared across consecutive records of
    /// the same file only).
    pub fn of_posix(trace: &PosixTrace) -> AccessStats {
        let n = trace.len() as u64;
        let mut seq = 0u64;
        let mut comparable = 0u64;
        for w in trace.records.windows(2) {
            if w[0].file == w[1].file {
                comparable += 1;
                if w[1].offset == w[0].end() {
                    seq += 1;
                }
            }
        }
        let sequentiality = if comparable == 0 {
            1.0
        } else {
            seq as f64 / comparable as f64
        };
        AccessStats {
            count: n,
            bytes: trace.total_bytes(),
            mean_size: if n == 0 {
                0.0
            } else {
                trace.total_bytes() as f64 / n as f64
            },
            sequentiality,
            sizes: SizeHistogram::from_lengths(trace.records.iter().map(|r| r.len)),
        }
    }
}

/// Figure-6 scatter for a POSIX trace: address vs. access sequence as the
/// application emitted it (bottom panel of the figure). At most `limit`
/// points are returned.
pub fn posix_scatter(trace: &PosixTrace, limit: usize) -> Vec<ScatterPoint> {
    trace
        .records
        .iter()
        .take(limit)
        .enumerate()
        .map(|(i, r)| ScatterPoint {
            seq: i as u64,
            addr: r.offset,
            len: r.len,
        })
        .collect()
}

/// Figure-6 scatter for a block trace: address vs. access sequence as it
/// arrives at the device after the file system mutated it (top panel).
pub fn block_scatter(trace: &BlockTrace, limit: usize) -> Vec<ScatterPoint> {
    trace
        .requests
        .iter()
        .take(limit)
        .enumerate()
        .map(|(i, r)| ScatterPoint {
            seq: i as u64,
            addr: r.offset,
            len: r.len,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmtypes::{HostRequest, IoOp};

    #[test]
    fn histogram_buckets() {
        let h = SizeHistogram::from_lengths([1, 2, 3, 4, 1024, 1025]);
        assert_eq!(h.buckets[0], 1); // 1
        assert_eq!(h.buckets[1], 2); // 2, 3
        assert_eq!(h.buckets[2], 1); // 4
        assert_eq!(h.buckets[10], 2); // 1024, 1025
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn histogram_median() {
        let h = SizeHistogram::from_lengths([4096; 10]);
        assert_eq!(h.median_bucket_floor(), 4096);
        assert_eq!(SizeHistogram::from_lengths([]).median_bucket_floor(), 0);
    }

    #[test]
    fn posix_stats_sequentiality_ignores_cross_file_gaps() {
        let mut tr = PosixTrace::new();
        for (f, off) in [(0u32, 0u64), (0, 100), (1, 0), (1, 100)] {
            tr.push(crate::record::TraceRecord {
                t: 0,
                op: IoOp::Read,
                file: f,
                offset: off,
                len: 100,
            });
        }
        let st = AccessStats::of_posix(&tr);
        // Three comparable pairs: (0,0)-(0,100) seq, (0,100)-(1,0) not
        // comparable, (1,0)-(1,100) seq => 2/2 comparable sequential.
        assert!((st.sequentiality - 1.0).abs() < 1e-12);
        assert_eq!(st.count, 4);
    }

    #[test]
    fn scatter_respects_limit() {
        let t =
            BlockTrace::from_requests((0..100).map(|i| HostRequest::read(i * 10, 10)).collect(), 8);
        let pts = block_scatter(&t, 10);
        assert_eq!(pts.len(), 10);
        assert_eq!(pts[9].addr, 90);
        assert_eq!(pts[9].seq, 9);
    }

    #[test]
    fn block_stats_roll_up() {
        let t =
            BlockTrace::from_requests(vec![HostRequest::read(0, 10), HostRequest::read(10, 30)], 8);
        let st = AccessStats::of_block(&t);
        assert_eq!(st.count, 2);
        assert_eq!(st.bytes, 40);
        assert!((st.mean_size - 20.0).abs() < 1e-12);
        assert!((st.sequentiality - 1.0).abs() < 1e-12);
    }
}
