//! POSIX-level trace records.

use nvmtypes::{IoOp, Nanos, SimError};
use serde::{Deserialize, Serialize};

/// One POSIX-level I/O event captured directly under the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Timestamp of the call (ns since trace start).
    pub t: Nanos,
    /// Read or write.
    pub op: IoOp,
    /// Identifier of the file the call targeted.
    pub file: u32,
    /// Byte offset within the file.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

impl TraceRecord {
    /// Exclusive end offset.
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }
}

/// An ordered POSIX-level trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PosixTrace {
    /// Events in capture order.
    pub records: Vec<TraceRecord>,
}

impl PosixTrace {
    /// Empty trace.
    pub fn new() -> PosixTrace {
        PosixTrace::default()
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no events were captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total bytes moved (reads + writes).
    pub fn total_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.len).sum()
    }

    /// Bytes moved by reads only.
    pub fn read_bytes(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| r.op.is_read())
            .map(|r| r.len)
            .sum()
    }

    /// Fraction of bytes that are reads, in `[0, 1]`; 0 for an empty trace.
    ///
    /// OoC solver workloads are heavily read-intensive (§3.1), so this is
    /// near 1 for the traces the paper studies.
    pub fn read_fraction(&self) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            0.0
        } else {
            self.read_bytes() as f64 / total as f64
        }
    }

    /// Appends a record, keeping timestamps monotonically non-decreasing
    /// by clamping regressions to the previous timestamp.
    pub fn push(&mut self, mut rec: TraceRecord) {
        if let Some(last) = self.records.last() {
            if rec.t < last.t {
                rec.t = last.t;
            }
        }
        self.records.push(rec);
    }

    /// Serialises to a simple one-line-per-record text form
    /// (`t op file offset len`), handy for eyeballing and for feeding
    /// external plotting tools.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(self.records.len() * 32);
        for r in &self.records {
            let op = if r.op.is_read() { 'R' } else { 'W' };
            out.push_str(&format!(
                "{} {} {} {} {}\n",
                r.t, op, r.file, r.offset, r.len
            ));
        }
        out
    }

    /// Parses the [`PosixTrace::to_text`] format. Lines that are empty or
    /// start with `#` are skipped.
    pub fn from_text(text: &str) -> Result<PosixTrace, SimError> {
        let mut trace = PosixTrace::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fail = |reason: String| SimError::parse("posix trace", i + 1, reason);
            let mut it = line.split_whitespace();
            let mut next = |what: &str| {
                it.next()
                    .ok_or_else(|| SimError::parse("posix trace", i + 1, format!("missing {what}")))
            };
            let t: Nanos = next("t")?.parse().map_err(|e| fail(format!("{e}")))?;
            let op = match next("op")? {
                "R" => IoOp::Read,
                "W" => IoOp::Write,
                other => return Err(fail(format!("bad op `{other}`"))),
            };
            let file: u32 = next("file")?.parse().map_err(|e| fail(format!("{e}")))?;
            let offset: u64 = next("offset")?.parse().map_err(|e| fail(format!("{e}")))?;
            let len: u64 = next("len")?.parse().map_err(|e| fail(format!("{e}")))?;
            trace.push(TraceRecord {
                t,
                op,
                file,
                offset,
                len,
            });
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: Nanos, offset: u64, len: u64) -> TraceRecord {
        TraceRecord {
            t,
            op: IoOp::Read,
            file: 0,
            offset,
            len,
        }
    }

    #[test]
    fn totals() {
        let mut tr = PosixTrace::new();
        tr.push(rec(0, 0, 100));
        tr.push(TraceRecord {
            t: 1,
            op: IoOp::Write,
            file: 0,
            offset: 100,
            len: 50,
        });
        assert_eq!(tr.total_bytes(), 150);
        assert_eq!(tr.read_bytes(), 100);
        assert!((tr.read_fraction() - 100.0 / 150.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_read_fraction_is_zero() {
        assert_eq!(PosixTrace::new().read_fraction(), 0.0);
    }

    #[test]
    fn push_clamps_time_regressions() {
        let mut tr = PosixTrace::new();
        tr.push(rec(100, 0, 1));
        tr.push(rec(50, 1, 1)); // regression -> clamped to 100
        assert_eq!(tr.records[1].t, 100);
    }

    #[test]
    fn text_round_trip() {
        let mut tr = PosixTrace::new();
        tr.push(rec(0, 4096, 65536));
        tr.push(TraceRecord {
            t: 10,
            op: IoOp::Write,
            file: 2,
            offset: 0,
            len: 512,
        });
        let text = tr.to_text();
        let back = PosixTrace::from_text(&text).unwrap();
        assert_eq!(tr, back);
    }

    #[test]
    fn from_text_skips_comments_and_rejects_garbage() {
        let t = "# header\n0 R 0 0 10\n\n5 W 1 10 20\n";
        let tr = PosixTrace::from_text(t).unwrap();
        assert_eq!(tr.len(), 2);
        assert!(PosixTrace::from_text("0 X 0 0 10").is_err());
        assert!(PosixTrace::from_text("0 R 0 0").is_err());
    }
}
