//! Thread-safe POSIX-level trace capture.
//!
//! The out-of-core application (the `ooc` crate) performs its reads and
//! writes through a [`TraceSink`]; [`TraceCapture`] is the standard sink
//! that timestamps and records every call, mirroring the paper's
//! POSIX-level trace collection on the Carver compute nodes (§4.2).

use crate::record::{PosixTrace, TraceRecord};
use nvmtypes::{IoOp, Nanos};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Anything that can observe POSIX-level I/O calls.
pub trait TraceSink: Send + Sync {
    /// Records one I/O call of `len` bytes at `offset` within `file`.
    fn record(&self, op: IoOp, file: u32, offset: u64, len: u64);
}

/// A sink that discards everything (used when tracing is off).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _op: IoOp, _file: u32, _offset: u64, _len: u64) {}
}

/// Thread-safe trace recorder with a deterministic logical clock.
///
/// Real capture would use wall-clock timestamps; for reproducibility the
/// simulator-facing capture advances a logical clock by a configurable
/// amount per recorded byte (default: 0, i.e. pure ordering). The
/// downstream SSD simulator imposes its own closed-loop timing, so only the
/// order and shape of requests matter.
#[derive(Debug)]
pub struct TraceCapture {
    records: Mutex<PosixTrace>,
    clock: AtomicU64,
    ns_per_call: u64,
}

impl Default for TraceCapture {
    fn default() -> Self {
        TraceCapture::new()
    }
}

impl TraceCapture {
    /// New capture whose logical clock ticks 1 ns per call.
    pub fn new() -> TraceCapture {
        TraceCapture {
            records: Mutex::new(PosixTrace::new()),
            clock: AtomicU64::new(0),
            ns_per_call: 1,
        }
    }

    /// New capture advancing the logical clock by `ns_per_call` per event.
    pub fn with_tick(ns_per_call: u64) -> TraceCapture {
        TraceCapture {
            records: Mutex::new(PosixTrace::new()),
            clock: AtomicU64::new(0),
            ns_per_call,
        }
    }

    /// Number of events captured so far.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// `true` when nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Consumes the capture, returning the trace sorted by timestamp
    /// (stable, so same-timestamp events keep capture order).
    pub fn into_trace(self) -> PosixTrace {
        let mut tr = self.records.into_inner();
        tr.records.sort_by_key(|r| r.t);
        tr
    }

    /// Clones the current contents without consuming the capture.
    pub fn snapshot(&self) -> PosixTrace {
        let mut tr = self.records.lock().clone();
        tr.records.sort_by_key(|r| r.t);
        tr
    }
}

impl TraceSink for TraceCapture {
    fn record(&self, op: IoOp, file: u32, offset: u64, len: u64) {
        let t: Nanos = self.clock.fetch_add(self.ns_per_call, Ordering::Relaxed);
        let mut guard = self.records.lock();
        guard.records.push(TraceRecord {
            t,
            op,
            file,
            offset,
            len,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn records_in_order() {
        let cap = TraceCapture::new();
        cap.record(IoOp::Read, 0, 0, 10);
        cap.record(IoOp::Read, 0, 10, 10);
        let tr = cap.into_trace();
        assert_eq!(tr.len(), 2);
        assert!(tr.records[0].t < tr.records[1].t);
        assert_eq!(tr.records[1].offset, 10);
    }

    #[test]
    fn null_sink_discards() {
        // Compile-time check that NullSink is a TraceSink; nothing observable.
        let s = NullSink;
        s.record(IoOp::Write, 0, 0, 4096);
    }

    #[test]
    fn concurrent_capture_loses_nothing() {
        let cap = Arc::new(TraceCapture::new());
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let cap = Arc::clone(&cap);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    cap.record(IoOp::Read, t, i * 100, 100);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let tr = Arc::try_unwrap(cap).unwrap().into_trace();
        assert_eq!(tr.len(), 800);
        assert_eq!(tr.total_bytes(), 800 * 100);
        // Timestamps are unique (atomic clock) and sorted.
        for w in tr.records.windows(2) {
            assert!(w[0].t < w[1].t);
        }
    }

    #[test]
    fn snapshot_does_not_consume() {
        let cap = TraceCapture::new();
        cap.record(IoOp::Read, 0, 0, 10);
        assert_eq!(cap.snapshot().len(), 1);
        cap.record(IoOp::Read, 0, 10, 10);
        assert_eq!(cap.snapshot().len(), 2);
    }
}
