//! Trace surgery: slicing, merging and time-dilating captured traces.
//!
//! The paper replays traces captured on one system through models of
//! another; these utilities cover the bookkeeping that workflow needs —
//! isolating one file's stream, interleaving multiple clients' captures
//! (the many-compute-node case), and rescaling timestamps.

use crate::record::{PosixTrace, TraceRecord};

/// Extracts only the records touching `file`, preserving order and
/// timestamps.
pub fn filter_file(trace: &PosixTrace, file: u32) -> PosixTrace {
    PosixTrace {
        records: trace
            .records
            .iter()
            .filter(|r| r.file == file)
            .copied()
            .collect(),
    }
}

/// Splits a trace at `byte_budget`: the first piece moves at most that
/// many bytes, the rest goes to the second piece (records are not split).
pub fn split_at_bytes(trace: &PosixTrace, byte_budget: u64) -> (PosixTrace, PosixTrace) {
    let mut head = PosixTrace::new();
    let mut tail = PosixTrace::new();
    let mut moved = 0u64;
    for rec in &trace.records {
        if moved + rec.len <= byte_budget {
            moved += rec.len;
            head.records.push(*rec);
        } else {
            tail.records.push(*rec);
        }
    }
    (head, tail)
}

/// Merges several clients' traces by timestamp (stable on ties), remapping
/// each input's file ids into a distinct range so client A's file 0 and
/// client B's file 0 stay distinct (`file' = client * stride + file`).
///
/// # Panics
/// Panics if any input uses a file id >= `stride`.
pub fn merge_clients(traces: &[PosixTrace], stride: u32) -> PosixTrace {
    let mut all: Vec<TraceRecord> = Vec::new();
    for (client, trace) in traces.iter().enumerate() {
        for rec in &trace.records {
            assert!(
                rec.file < stride,
                "file id {} exceeds stride {stride}",
                rec.file
            );
            all.push(TraceRecord {
                file: client as u32 * stride + rec.file,
                ..*rec
            });
        }
    }
    all.sort_by_key(|r| r.t);
    PosixTrace { records: all }
}

/// Rescales timestamps by `num/den` (e.g. 1/2 halves all gaps — a faster
/// compute phase between I/O bursts).
pub fn dilate_time(trace: &PosixTrace, num: u64, den: u64) -> PosixTrace {
    assert!(den > 0);
    PosixTrace {
        records: trace
            .records
            .iter()
            .map(|r| TraceRecord {
                t: r.t * num / den,
                ..*r
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmtypes::IoOp;

    fn rec(t: u64, file: u32, offset: u64, len: u64) -> TraceRecord {
        TraceRecord {
            t,
            op: IoOp::Read,
            file,
            offset,
            len,
        }
    }

    fn sample() -> PosixTrace {
        PosixTrace {
            records: vec![rec(0, 0, 0, 100), rec(5, 1, 0, 200), rec(10, 0, 100, 300)],
        }
    }

    #[test]
    fn filter_keeps_only_the_file() {
        let f0 = filter_file(&sample(), 0);
        assert_eq!(f0.len(), 2);
        assert!(f0.records.iter().all(|r| r.file == 0));
        assert_eq!(f0.total_bytes(), 400);
    }

    #[test]
    fn split_respects_the_byte_budget() {
        let (head, tail) = split_at_bytes(&sample(), 350);
        assert_eq!(head.total_bytes(), 300); // 100 + 200; the 300 won't fit
        assert_eq!(tail.total_bytes(), 300);
        assert_eq!(head.len() + tail.len(), 3);
    }

    #[test]
    fn split_with_huge_budget_keeps_everything() {
        let (head, tail) = split_at_bytes(&sample(), u64::MAX);
        assert_eq!(head.len(), 3);
        assert!(tail.is_empty());
    }

    #[test]
    fn merge_interleaves_by_time_and_separates_files() {
        let a = PosixTrace {
            records: vec![rec(0, 0, 0, 10), rec(10, 0, 10, 10)],
        };
        let b = PosixTrace {
            records: vec![rec(5, 0, 0, 20)],
        };
        let merged = merge_clients(&[a, b], 16);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged.records[0].file, 0); // client 0
        assert_eq!(merged.records[1].file, 16); // client 1, file 0
        assert_eq!(merged.records[2].t, 10);
        // Time-sorted.
        assert!(merged.records.windows(2).all(|w| w[0].t <= w[1].t));
    }

    #[test]
    #[should_panic(expected = "exceeds stride")]
    fn merge_rejects_file_ids_beyond_stride() {
        let a = PosixTrace {
            records: vec![rec(0, 20, 0, 10)],
        };
        merge_clients(&[a], 16);
    }

    #[test]
    fn dilation_scales_gaps() {
        let d = dilate_time(&sample(), 1, 2);
        assert_eq!(d.records[1].t, 2);
        assert_eq!(d.records[2].t, 5);
        let back = dilate_time(&sample(), 3, 1);
        assert_eq!(back.records[2].t, 30);
    }
}
