//! Device-level block traces: what a file system emits and what the SSD
//! simulator consumes.

use nvmtypes::HostRequest;
use serde::{Deserialize, Serialize};

/// An ordered sequence of device-level requests, together with the issue
/// discipline the emitting layer sustains.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockTrace {
    /// Requests in issue order.
    pub requests: Vec<HostRequest>,
    /// How many requests the emitting software stack keeps outstanding at
    /// the device. Well-plugged stacks (UFS) sustain deep queues; stacks
    /// that serialise on metadata or journal commits sustain shallow ones.
    pub queue_depth: u32,
}

impl BlockTrace {
    /// New trace with the given queue depth.
    pub fn new(queue_depth: u32) -> BlockTrace {
        BlockTrace {
            requests: Vec::new(),
            queue_depth: queue_depth.max(1),
        }
    }

    /// Builds a trace from parts.
    pub fn from_requests(requests: Vec<HostRequest>, queue_depth: u32) -> BlockTrace {
        BlockTrace {
            requests,
            queue_depth: queue_depth.max(1),
        }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// `true` when the trace has no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.requests.iter().map(|r| r.len).sum()
    }

    /// Bytes moved by data (non-sync) requests — i.e. excluding metadata
    /// and journal traffic injected by the file system.
    pub fn data_bytes(&self) -> u64 {
        self.requests
            .iter()
            .filter(|r| !r.sync)
            .map(|r| r.len)
            .sum()
    }

    /// Mean request size in bytes (0 for an empty trace).
    pub fn mean_request_size(&self) -> f64 {
        if self.requests.is_empty() {
            0.0
        } else {
            self.total_bytes() as f64 / self.requests.len() as f64
        }
    }

    /// Fraction of requests that directly follow their predecessor in the
    /// device address space (sequentiality, in `[0, 1]`; 1.0 for traces of
    /// length < 2).
    pub fn sequentiality(&self) -> f64 {
        if self.requests.len() < 2 {
            return 1.0;
        }
        let seq = self
            .requests
            .windows(2)
            .filter(|w| w[1].offset == w[0].offset + w[0].len)
            .count();
        seq as f64 / (self.requests.len() - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmtypes::HostRequest as R;

    #[test]
    fn totals_and_mean() {
        let t = BlockTrace::from_requests(vec![R::read(0, 100), R::read(100, 300)], 8);
        assert_eq!(t.total_bytes(), 400);
        assert!((t.mean_request_size() - 200.0).abs() < 1e-12);
    }

    #[test]
    fn queue_depth_clamped_to_one() {
        assert_eq!(BlockTrace::new(0).queue_depth, 1);
    }

    #[test]
    fn sequentiality_fully_sequential() {
        let t =
            BlockTrace::from_requests(vec![R::read(0, 10), R::read(10, 10), R::read(20, 10)], 1);
        assert!((t.sequentiality() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sequentiality_random() {
        let t =
            BlockTrace::from_requests(vec![R::read(0, 10), R::read(100, 10), R::read(50, 10)], 1);
        assert_eq!(t.sequentiality(), 0.0);
    }

    #[test]
    fn data_bytes_excludes_sync_traffic() {
        let t = BlockTrace::from_requests(vec![R::read(0, 100), R::write(500, 8).synchronous()], 4);
        assert_eq!(t.total_bytes(), 108);
        assert_eq!(t.data_bytes(), 100);
    }

    #[test]
    fn short_traces_are_sequential_by_convention() {
        assert_eq!(BlockTrace::new(1).sequentiality(), 1.0);
        let t = BlockTrace::from_requests(vec![R::read(0, 10)], 1);
        assert_eq!(t.sequentiality(), 1.0);
    }
}
