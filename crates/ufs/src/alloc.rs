//! First-fit extent allocation over the data region.
//!
//! The allocator is pure in-memory state, rebuilt at every mount from the
//! file table — there is no on-disk free list to keep crash-consistent.
//! First-fit over address-ordered free runs keeps files in as few
//! contiguous extents as possible, which is what preserves the
//! application's request size and sequentiality at the device (the
//! paper's §3.2 argument for UFS).

use crate::layout::{Extent, MAX_EXTENTS};
use nvmtypes::SimError;
use std::collections::BTreeMap;

/// Free-space tracker for `[data_start, data_start + data_sectors)`.
#[derive(Debug, Clone)]
pub struct ExtentAllocator {
    /// Free runs, keyed by start sector; values are run lengths.
    /// Invariant: runs are disjoint and never adjacent (always coalesced).
    free: BTreeMap<u64, u64>,
}

impl ExtentAllocator {
    /// A fully free data region.
    pub fn new(data_start: u64, data_sectors: u64) -> ExtentAllocator {
        let mut free = BTreeMap::new();
        if data_sectors > 0 {
            free.insert(data_start, data_sectors);
        }
        ExtentAllocator { free }
    }

    /// Total free sectors.
    pub fn free_sectors(&self) -> u64 {
        self.free.values().sum()
    }

    /// Marks `ext` as in use (mount-time rebuild from the file table).
    /// Fails if any part of it is not currently free — two files claiming
    /// the same sectors means the table is corrupt.
    pub fn claim(&mut self, ext: Extent) -> Result<(), SimError> {
        if ext.len == 0 {
            return Err(SimError::corruption(
                "file entry",
                ext.start,
                "zero-length extent",
            ));
        }
        let run = self
            .free
            .range(..=ext.start)
            .next_back()
            .map(|(&s, &l)| (s, l));
        let Some((run_start, run_len)) = run else {
            return Err(overlap(ext));
        };
        if ext.start < run_start || ext.end() > run_start + run_len {
            return Err(overlap(ext));
        }
        self.free.remove(&run_start);
        if ext.start > run_start {
            self.free.insert(run_start, ext.start - run_start);
        }
        if run_start + run_len > ext.end() {
            self.free.insert(ext.end(), run_start + run_len - ext.end());
        }
        Ok(())
    }

    /// Allocates `sectors` sectors first-fit: the first single free run
    /// that holds the whole request wins (one extent, fully sequential);
    /// only a fragmented region falls back to gathering several runs in
    /// address order, capped at [`MAX_EXTENTS`] pieces.
    ///
    /// Hot-path audit (`hotpath_alloc`, allowlisted): the owned extent
    /// list is the API — it is moved into the committed [`FileEntry`] —
    /// and holds at most [`MAX_EXTENTS`] (8) elements.
    pub fn allocate(&mut self, sectors: u64) -> Result<Vec<Extent>, SimError> {
        if sectors == 0 {
            return Ok(Vec::new());
        }
        if let Some((&start, _)) = self.free.iter().find(|&(_, &len)| len >= sectors) {
            let ext = Extent {
                start,
                len: sectors,
            };
            self.claim(ext)?;
            return Ok(vec![ext]);
        }
        // Fragmented: gather address-ordered runs until satisfied.
        let mut picked = Vec::new();
        let mut need = sectors;
        for (&start, &len) in &self.free {
            let take = len.min(need);
            picked.push(Extent { start, len: take });
            need -= take;
            if need == 0 {
                break;
            }
        }
        if need > 0 || picked.len() > MAX_EXTENTS {
            return Err(SimError::ResourceExhausted {
                resource: "ufs data extents".into(),
            });
        }
        for e in &picked {
            self.claim(*e)?;
        }
        Ok(picked)
    }

    /// Returns `ext` to the free pool, coalescing with neighbours.
    pub fn release(&mut self, ext: Extent) {
        if ext.len == 0 {
            return;
        }
        let mut start = ext.start;
        let mut len = ext.len;
        if let Some((&prev_start, &prev_len)) = self.free.range(..start).next_back() {
            if prev_start + prev_len == start {
                self.free.remove(&prev_start);
                start = prev_start;
                len += prev_len;
            }
        }
        if let Some(&next_len) = self.free.get(&(ext.end())) {
            self.free.remove(&ext.end());
            len += next_len;
        }
        self.free.insert(start, len);
    }
}

fn overlap(ext: Extent) -> SimError {
    SimError::corruption(
        "file entry",
        ext.start,
        format!(
            "extent [{}, {}) overlaps another file",
            ext.start,
            ext.end()
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_fit_prefers_one_contiguous_extent() {
        let mut a = ExtentAllocator::new(100, 100);
        let got = a.allocate(40).expect("fits");
        assert_eq!(
            got,
            vec![Extent {
                start: 100,
                len: 40
            }]
        );
        let got = a.allocate(60).expect("fits");
        assert_eq!(
            got,
            vec![Extent {
                start: 140,
                len: 60
            }]
        );
        assert_eq!(a.free_sectors(), 0);
        assert!(matches!(
            a.allocate(1),
            Err(SimError::ResourceExhausted { .. })
        ));
    }

    #[test]
    fn fragmented_region_gathers_runs_in_address_order() {
        let mut a = ExtentAllocator::new(0, 30);
        let first = a.allocate(10).expect("fits"); // [0, 10)
        let second = a.allocate(10).expect("fits"); // [10, 20)
        a.release(first[0]); // free [0, 10) and [20, 30)
        let got = a.allocate(15).expect("gathers");
        assert_eq!(
            got,
            vec![Extent { start: 0, len: 10 }, Extent { start: 20, len: 5 }]
        );
        a.release(second[0]);
        for e in got {
            a.release(e);
        }
        assert_eq!(a.free_sectors(), 30);
        // Fully coalesced back into one run.
        assert_eq!(a.free.len(), 1);
    }

    #[test]
    fn claim_rejects_overlap_and_out_of_region() {
        let mut a = ExtentAllocator::new(10, 20);
        a.claim(Extent { start: 12, len: 5 }).expect("free");
        assert!(a.claim(Extent { start: 14, len: 2 }).is_err());
        assert!(a.claim(Extent { start: 0, len: 5 }).is_err());
        assert!(a.claim(Extent { start: 28, len: 5 }).is_err());
        a.claim(Extent { start: 17, len: 3 })
            .expect("adjacent is fine");
    }

    #[test]
    fn release_coalesces_both_sides() {
        let mut a = ExtentAllocator::new(0, 12);
        let l = a.allocate(4).expect("fits");
        let m = a.allocate(4).expect("fits");
        let r = a.allocate(4).expect("fits");
        a.release(l[0]);
        a.release(r[0]);
        assert_eq!(a.free.len(), 2);
        a.release(m[0]);
        assert_eq!(a.free.len(), 1);
        assert_eq!(a.free_sectors(), 12);
    }
}
