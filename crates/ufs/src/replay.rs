//! Replaying a POSIX trace through the real filesystem.
//!
//! [`JournaledUfs`] implements [`oocfs::FileSystemModel`] by actually
//! executing the application's POSIX trace against a mounted [`Ufs`]
//! over an in-memory block device, capturing every sector request the
//! filesystem issues and returning that as the device-level block trace.
//! Unlike the parameterised models in `oocfs`, the journal commits,
//! metadata applies and copy-on-write data placement in the output are
//! not modelled — they are the writes a real journaled UFS performed.

use crate::fs::{FileId, Ufs, UfsParams};
use nvmtypes::convert::{u64_from_usize, usize_from};
use nvmtypes::SimError;
use oocfs::FileSystemModel;
use ooctrace::{BlockTrace, PosixTrace};
use ssd::{SimBlockDevice, SECTOR_USIZE};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The real journaled UFS as a trace transformer.
///
/// Replay policy: writes are staged per file and journaled (fsynced)
/// when the trace next *reads* that file, and at end of trace — the
/// laziest schedule that keeps read-your-writes through the device
/// honest. Reads of never-written ranges materialise the file as zeros
/// first (the preprocessing pass of an out-of-core run always writes
/// before the solver reads, so this path is rare).
#[derive(Debug, Clone, Copy)]
pub struct JournaledUfs {
    /// Filesystem geometry used for the replay mount.
    pub params: UfsParams,
    /// Queue depth reported on the emitted block trace.
    pub queue_depth: u32,
}

impl Default for JournaledUfs {
    fn default() -> JournaledUfs {
        JournaledUfs {
            params: UfsParams::default(),
            queue_depth: 16,
        }
    }
}

impl JournaledUfs {
    /// Replays `posix` through a freshly formatted filesystem, returning
    /// the captured block trace, or the error that stopped the replay.
    pub fn try_transform(&self, posix: &PosixTrace) -> Result<BlockTrace, SimError> {
        self.transform_with_stats(posix).map(|(block, _)| block)
    }

    /// [`JournaledUfs::try_transform`] plus the filesystem's
    /// write-amplification counters: how the journaled replay's device
    /// bytes decompose into COW data, journal records and table applies
    /// against the application bytes written — the exact breakdown of
    /// the `ufs` study's replay overhead.
    pub fn transform_with_stats(
        &self,
        posix: &PosixTrace,
    ) -> Result<(BlockTrace, crate::fs::WriteAmp), SimError> {
        // Size the device to the trace footprint: per-file high-water
        // marks, doubled for copy-on-write headroom, plus metadata.
        let mut high: BTreeMap<u32, u64> = BTreeMap::new();
        for r in &posix.records {
            let e = high.entry(r.file).or_insert(0);
            *e = (*e).max(r.end());
        }
        let sector = u64_from_usize(SECTOR_USIZE);
        let data_sectors: u64 = high.values().map(|b| b.div_ceil(sector) + 1).sum();
        let meta = 1 + u64::from(self.params.max_files) + u64::from(self.params.journal_sectors);
        let total = meta + data_sectors * 2 + 8;
        let mut fs = Ufs::format(SimBlockDevice::new(total), self.params)?;
        fs.enable_request_log();

        let mut ids: BTreeMap<u32, FileId> = BTreeMap::new();
        let mut dirty: BTreeMap<u32, bool> = BTreeMap::new();
        // Per-record scratch, hoisted out of the replay loop and resized
        // in place — the loop body allocates nothing at steady state.
        // `payload` only ever holds the 0xA5 write pattern, so it is
        // refilled only when the record length changes (the synthetic
        // out-of-core traces use one record size: one fill total);
        // `scratch` receives reads, whose prior contents are dead.
        let mut name = String::new();
        let mut payload: Vec<u8> = Vec::new();
        let mut scratch: Vec<u8> = Vec::new();
        for r in &posix.records {
            let id = match ids.get(&r.file) {
                Some(&id) => id,
                None => {
                    name.clear();
                    write!(name, "f{}", r.file).map_err(|_| {
                        SimError::invalid_config("ufs.replay", "file-name format failed")
                    })?;
                    let id = fs.create(&name)?;
                    ids.insert(r.file, id);
                    id
                }
            };
            if r.op.is_read() {
                // Materialise anything the trace reads before writing.
                if fs.size(id)? < r.end() {
                    let have = fs.size(id)?;
                    scratch.clear();
                    scratch.resize(usize_from(r.end() - have), 0);
                    fs.write(id, have, &scratch)?;
                    dirty.insert(r.file, true);
                }
                if dirty.remove(&r.file).is_some() {
                    fs.fsync(id)?;
                }
                // Only the length matters: `fs.read` overwrites every
                // byte, so resize without clearing (fills on growth only).
                scratch.resize(usize_from(r.len), 0);
                fs.read(id, r.offset, &mut scratch)?;
            } else {
                // Deterministic payload; the bytes never surface in the
                // trace, only the request shapes do.
                if payload.len() != usize_from(r.len) {
                    payload.clear();
                    payload.resize(usize_from(r.len), 0xA5);
                }
                fs.write(id, r.offset, &payload)?;
                dirty.insert(r.file, true);
            }
        }
        fs.sync_all()?;
        let wa = fs.write_amp();
        Ok((
            BlockTrace::from_requests(fs.take_request_log(), self.queue_depth),
            wa,
        ))
    }
}

impl FileSystemModel for JournaledUfs {
    fn name(&self) -> &'static str {
        "ufs-journaled"
    }

    /// Infallible transform for the model interface: a replay error
    /// (which only an impossible geometry can cause — the device is
    /// sized from the trace) yields an empty trace rather than a panic.
    fn transform(&self, posix: &PosixTrace) -> BlockTrace {
        self.try_transform(posix)
            .unwrap_or_else(|_| BlockTrace::new(self.queue_depth))
    }

    /// The default observed transform, plus the journal's commit-phase
    /// accounting: write-amplification counters (`ufs.user_bytes`,
    /// `ufs.cow_bytes`, `ufs.journal_bytes`, `ufs.apply_bytes`,
    /// `ufs.commits`) and a `Layer::Ufs` instant summarising the
    /// journal's byte cost over the user's. The tracer reads finished
    /// counters only, so the emitted block trace is byte-identical to
    /// the untraced transform.
    fn transform_observed(&self, posix: &PosixTrace, obs: &mut simobs::Tracer) -> BlockTrace {
        let (block, wa) = self.transform_with_stats(posix).unwrap_or_else(|_| {
            (
                BlockTrace::new(self.queue_depth),
                crate::fs::WriteAmp::default(),
            )
        });
        if obs.enabled() {
            let requests = u64_from_usize(block.len());
            let syncs = u64_from_usize(block.requests.iter().filter(|r| r.sync).count());
            obs.instant(
                simobs::Layer::Fs,
                self.name(),
                0,
                [("requests", requests), ("sync", syncs)],
            );
            obs.count("fs.requests", requests);
            obs.count("fs.sync_requests", syncs);
            obs.instant(
                simobs::Layer::Ufs,
                "journal_commit",
                0,
                [("commits", wa.commits), ("journal_bytes", wa.journal_bytes)],
            );
            obs.count("ufs.user_bytes", wa.user_bytes);
            obs.count("ufs.cow_bytes", wa.cow_bytes);
            obs.count("ufs.journal_bytes", wa.journal_bytes);
            obs.count("ufs.apply_bytes", wa.apply_bytes);
            obs.count("ufs.commits", wa.commits);
        }
        block
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmtypes::IoOp;
    use ooctrace::TraceRecord;

    fn rec(t: u64, op: IoOp, file: u32, offset: u64, len: u64) -> TraceRecord {
        TraceRecord {
            t,
            op,
            file,
            offset,
            len,
        }
    }

    #[test]
    fn write_then_read_trace_produces_real_journal_traffic() {
        let mut posix = PosixTrace::new();
        posix.push(rec(0, IoOp::Write, 0, 0, 64 * 1024));
        posix.push(rec(1, IoOp::Read, 0, 0, 64 * 1024));
        let block = JournaledUfs::default()
            .try_transform(&posix)
            .expect("replays");
        assert!(!block.is_empty());
        let syncs = block.requests.iter().filter(|r| r.sync).count();
        // One transaction's 5 metadata writes (the request log starts
        // after format, so the superblock write is not captured).
        assert_eq!(syncs, 5);
        // The 64 KiB write survives as one sequential data request.
        let biggest = block.requests.iter().map(|r| r.len).max().unwrap_or(0);
        assert_eq!(biggest, 64 * 1024);
    }

    #[test]
    fn transform_is_deterministic() {
        let mut posix = PosixTrace::new();
        for i in 0..4u32 {
            posix.push(rec(u64::from(i), IoOp::Write, i % 2, 0, 20_000));
            posix.push(rec(u64::from(i) + 10, IoOp::Read, i % 2, 0, 10_000));
        }
        let m = JournaledUfs::default();
        assert_eq!(m.transform(&posix), m.transform(&posix));
        assert_eq!(m.name(), "ufs-journaled");
    }

    #[test]
    fn transform_with_stats_accounts_every_device_write() {
        let mut posix = PosixTrace::new();
        posix.push(rec(0, IoOp::Write, 0, 0, 64 * 1024));
        posix.push(rec(1, IoOp::Read, 0, 0, 64 * 1024));
        let (block, wa) = JournaledUfs::default()
            .transform_with_stats(&posix)
            .expect("replays");
        assert_eq!(wa.user_bytes, 64 * 1024);
        assert_eq!(wa.cow_bytes, 64 * 1024, "one COW pass of the content");
        assert_eq!(wa.commits, 1);
        // The captured block-trace write bytes equal the accounted
        // device writes minus the superblock (logging starts post-format).
        let written: u64 = block
            .requests
            .iter()
            .filter(|r| !r.op.is_read())
            .map(|r| r.len)
            .sum();
        assert_eq!(written + 4096, wa.device_bytes());
    }

    #[test]
    fn read_only_trace_materialises_and_still_replays() {
        let mut posix = PosixTrace::new();
        posix.push(rec(0, IoOp::Read, 3, 0, 12_000));
        let block = JournaledUfs::default()
            .try_transform(&posix)
            .expect("replays");
        // Zero-fill write, its journal commit, then the actual read.
        assert!(block.requests.iter().any(|r| r.op.is_read()));
        assert!(block.requests.iter().any(|r| !r.op.is_read()));
    }
}
