//! On-disk layout: superblock, file-table entries and journal records.
//!
//! Every metadata structure fits in exactly one 4 KiB sector and carries
//! a trailing CRC32 over everything before it, so a torn sector write —
//! the device persists a prefix of the new bytes over the old contents —
//! is always *detectable*: the prefix ends before the CRC, or the CRC
//! covers bytes that never arrived. One file entry per sector means an
//! interrupted in-place apply can damage only the entry being updated,
//! and that entry is exactly the one crash recovery rewrites from its
//! journal image (see docs/UFS.md).
//!
//! All integers are little-endian. Vacant table sectors and never-used
//! journal slots are all-zero.

use nvmtypes::convert::{u32_from, u64_from_usize, usize_from, usize_from_u32};
use nvmtypes::SimError;
use ssd::SECTOR_USIZE;

/// Superblock magic, `UFS1`.
pub const UFS_MAGIC: u32 = 0x5546_5331;
/// File-entry magic, `UFE1`.
pub const ENTRY_MAGIC: u32 = 0x5546_4531;
/// Journal-record magic, `UFJ1`.
pub const JREC_MAGIC: u32 = 0x5546_4A31;
/// On-disk format version.
pub const VERSION: u32 = 1;
/// Longest file name, bytes.
pub const MAX_NAME: usize = 64;
/// Most extents one file can hold (a full entry still fits one sector).
pub const MAX_EXTENTS: usize = 8;

/// Byte length of an encoded file entry (CRC included).
pub const ENTRY_BYTES: usize = 220;
const ENTRY_CRC_OFF: usize = 216;
const JREC_CRC_OFF: usize = 252;
const SB_CRC_OFF: usize = 56;

/// CRC-32 (IEEE 802.3, reflected, as used by zlib), bitwise — metadata
/// sectors are small enough that a lookup table buys nothing.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFF_u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn put_u32(buf: &mut [u8], at: usize, v: u32) {
    buf[at..at + 4].copy_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut [u8], at: usize, v: u64) {
    buf[at..at + 8].copy_from_slice(&v.to_le_bytes());
}

fn get_u32(buf: &[u8], at: usize) -> u32 {
    let mut raw = [0u8; 4];
    raw.copy_from_slice(&buf[at..at + 4]);
    u32::from_le_bytes(raw)
}

fn get_u64(buf: &[u8], at: usize) -> u64 {
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&buf[at..at + 8]);
    u64::from_le_bytes(raw)
}

/// One physically contiguous run of data sectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// First sector.
    pub start: u64,
    /// Length in sectors (non-zero).
    pub len: u64,
}

impl Extent {
    /// Exclusive end sector.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }
}

/// The mounted filesystem's geometry, persisted in sector 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Superblock {
    /// Device size in sectors.
    pub total_sectors: u64,
    /// First file-table sector (always 1).
    pub table_start: u64,
    /// File-table length in sectors == maximum file count.
    pub table_sectors: u64,
    /// First journal-ring sector.
    pub journal_start: u64,
    /// Journal-ring length in sectors.
    pub journal_sectors: u64,
    /// First data sector; data runs to the end of the device.
    pub data_start: u64,
}

impl Superblock {
    /// Encodes into a zero-padded sector image.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = vec![0u8; SECTOR_USIZE];
        put_u32(&mut buf, 0, UFS_MAGIC);
        put_u32(&mut buf, 4, VERSION);
        put_u64(&mut buf, 8, self.total_sectors);
        put_u64(&mut buf, 16, self.table_start);
        put_u64(&mut buf, 24, self.table_sectors);
        put_u64(&mut buf, 32, self.journal_start);
        put_u64(&mut buf, 40, self.journal_sectors);
        put_u64(&mut buf, 48, self.data_start);
        let crc = crc32(&buf[..SB_CRC_OFF]);
        put_u32(&mut buf, SB_CRC_OFF, crc);
        buf
    }

    /// Decodes and validates sector 0. Anything inconsistent is
    /// [`SimError::Corruption`] — mounting guesses nothing.
    pub fn decode(buf: &[u8]) -> Result<Superblock, SimError> {
        let fail = |reason: String| SimError::corruption("superblock", 0, reason);
        if buf.len() != SECTOR_USIZE {
            return Err(fail(format!("sector image is {} bytes", buf.len())));
        }
        if get_u32(buf, 0) != UFS_MAGIC {
            return Err(fail("bad magic".into()));
        }
        if get_u32(buf, 4) != VERSION {
            return Err(fail(format!("unsupported version {}", get_u32(buf, 4))));
        }
        if get_u32(buf, SB_CRC_OFF) != crc32(&buf[..SB_CRC_OFF]) {
            return Err(fail("crc mismatch".into()));
        }
        let sb = Superblock {
            total_sectors: get_u64(buf, 8),
            table_start: get_u64(buf, 16),
            table_sectors: get_u64(buf, 24),
            journal_start: get_u64(buf, 32),
            journal_sectors: get_u64(buf, 40),
            data_start: get_u64(buf, 48),
        };
        let regions_ordered = sb.table_start == 1
            && sb.journal_start == sb.table_start + sb.table_sectors
            && sb.data_start == sb.journal_start + sb.journal_sectors
            && sb.data_start < sb.total_sectors;
        if !regions_ordered || sb.table_sectors == 0 || sb.journal_sectors < 8 {
            return Err(fail("impossible geometry".into()));
        }
        Ok(sb)
    }
}

/// One file's durable metadata: name, byte size and extent list. Encoded
/// one entry per file-table sector; the table slot is the file's identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileEntry {
    /// File name (1..=[`MAX_NAME`] bytes).
    pub name: String,
    /// Logical size in bytes.
    pub size: u64,
    /// Physically contiguous runs backing the file, in file order.
    pub extents: Vec<Extent>,
}

impl FileEntry {
    /// Sectors needed to hold [`FileEntry::size`] bytes.
    pub fn sectors(&self) -> u64 {
        self.size.div_ceil(u64_from_usize(SECTOR_USIZE))
    }

    /// Encodes into a zero-padded sector image.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = vec![0u8; SECTOR_USIZE];
        self.encode_into(&mut buf);
        buf
    }

    /// [`FileEntry::encode`] into a caller-provided sector buffer
    /// (`SECTOR_USIZE` bytes, overwritten entirely) — the fsync path
    /// encodes per event and reuses a stack buffer instead of
    /// allocating.
    pub fn encode_into(&self, buf: &mut [u8]) {
        debug_assert_eq!(buf.len(), SECTOR_USIZE);
        buf.fill(0);
        put_u32(buf, 0, ENTRY_MAGIC);
        let name = self.name.as_bytes();
        put_u32(buf, 4, u32_from(u64_from_usize(name.len())));
        buf[8..8 + name.len().min(MAX_NAME)].copy_from_slice(&name[..name.len().min(MAX_NAME)]);
        put_u64(buf, 72, self.size);
        put_u32(buf, 80, u32_from(u64_from_usize(self.extents.len())));
        for (i, e) in self.extents.iter().take(MAX_EXTENTS).enumerate() {
            put_u64(buf, 88 + i * 16, e.start);
            put_u64(buf, 96 + i * 16, e.len);
        }
        let crc = crc32(&buf[..ENTRY_CRC_OFF]);
        put_u32(buf, ENTRY_CRC_OFF, crc);
    }

    /// Decodes a file-table sector. `Ok(None)` is a vacant (all-zero)
    /// slot; anything else that fails validation is corruption at
    /// `sector` (the caller supplies the LBA for the error).
    pub fn decode(buf: &[u8], sector: u64) -> Result<Option<FileEntry>, SimError> {
        let fail = |reason: String| SimError::corruption("file entry", sector, reason);
        if buf.len() != SECTOR_USIZE {
            return Err(fail(format!("sector image is {} bytes", buf.len())));
        }
        if buf.iter().all(|&b| b == 0) {
            return Ok(None);
        }
        if get_u32(buf, 0) != ENTRY_MAGIC {
            return Err(fail("bad magic".into()));
        }
        if get_u32(buf, ENTRY_CRC_OFF) != crc32(&buf[..ENTRY_CRC_OFF]) {
            return Err(fail("crc mismatch".into()));
        }
        let name_len = usize_from_u32(get_u32(buf, 4));
        if name_len == 0 || name_len > MAX_NAME {
            return Err(fail(format!("name length {name_len}")));
        }
        let name = String::from_utf8(buf[8..8 + name_len].to_vec())
            .map_err(|_| fail("name is not utf-8".into()))?;
        let n_extents = usize_from_u32(get_u32(buf, 80));
        if n_extents > MAX_EXTENTS {
            return Err(fail(format!("{n_extents} extents")));
        }
        let mut extents = Vec::with_capacity(n_extents);
        for i in 0..n_extents {
            let e = Extent {
                start: get_u64(buf, 88 + i * 16),
                len: get_u64(buf, 96 + i * 16),
            };
            if e.len == 0 {
                return Err(fail(format!("extent {i} has zero length")));
            }
            extents.push(e);
        }
        Ok(Some(FileEntry {
            name,
            size: get_u64(buf, 72),
            extents,
        }))
    }
}

/// What a journal record says.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordKind {
    /// Transaction `tid` opens.
    Begin,
    /// Transaction `tid` will set file-table slot `slot` to `entry`.
    /// The record carries the full entry image, which is what makes
    /// redo replay idempotent.
    Update {
        /// Target file-table slot.
        slot: u32,
        /// Complete new entry for the slot.
        entry: FileEntry,
    },
    /// Transaction `tid` is durable; it wrote `n_updates` update records.
    Commit {
        /// Update records the transaction wrote before this mark.
        n_updates: u32,
    },
    /// Every transaction with id <= `tid` has been applied in place;
    /// recovery may ignore them.
    Checkpoint,
}

impl RecordKind {
    fn tag(&self) -> u32 {
        match self {
            RecordKind::Begin => 1,
            RecordKind::Update { .. } => 2,
            RecordKind::Commit { .. } => 3,
            RecordKind::Checkpoint => 4,
        }
    }
}

/// One journal-ring record; lives at ring slot `seq % journal_sectors`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Global write sequence number (1-based, never reused).
    pub seq: u64,
    /// Transaction id (for [`RecordKind::Checkpoint`]: highest applied tid).
    pub tid: u64,
    /// Payload.
    pub kind: RecordKind,
}

impl JournalRecord {
    /// Encodes into a zero-padded sector image.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = vec![0u8; SECTOR_USIZE];
        self.encode_into(&mut buf);
        buf
    }

    /// [`JournalRecord::encode`] into a caller-provided sector buffer
    /// (`SECTOR_USIZE` bytes, overwritten entirely) — journal appends
    /// run per event and reuse a stack buffer instead of allocating.
    pub fn encode_into(&self, buf: &mut [u8]) {
        debug_assert_eq!(buf.len(), SECTOR_USIZE);
        buf.fill(0);
        put_u32(buf, 0, JREC_MAGIC);
        put_u32(buf, 4, self.kind.tag());
        put_u64(buf, 8, self.seq);
        put_u64(buf, 16, self.tid);
        match &self.kind {
            RecordKind::Update { slot, entry } => {
                put_u32(buf, 24, *slot);
                // The embedded entry image is built on the stack; only
                // its leading `ENTRY_BYTES` (CRC included) are carried.
                let mut image = [0u8; SECTOR_USIZE];
                entry.encode_into(&mut image);
                buf[32..32 + ENTRY_BYTES].copy_from_slice(&image[..ENTRY_BYTES]);
            }
            RecordKind::Commit { n_updates } => put_u32(buf, 24, *n_updates),
            RecordKind::Begin | RecordKind::Checkpoint => {}
        }
        let crc = crc32(&buf[..JREC_CRC_OFF]);
        put_u32(buf, JREC_CRC_OFF, crc);
    }

    /// Decodes a journal-ring sector. `None` means "no usable record
    /// here" — a blank slot, or a record torn mid-write. The journal is
    /// the one place a bad CRC is *not* corruption: the tail record of an
    /// interrupted transaction is expected debris, and recovery treats
    /// the transaction as uncommitted.
    pub fn decode(buf: &[u8]) -> Option<JournalRecord> {
        if buf.len() != SECTOR_USIZE || get_u32(buf, 0) != JREC_MAGIC {
            return None;
        }
        if get_u32(buf, JREC_CRC_OFF) != crc32(&buf[..JREC_CRC_OFF]) {
            return None;
        }
        let seq = get_u64(buf, 8);
        let tid = get_u64(buf, 16);
        let kind = match get_u32(buf, 4) {
            1 => RecordKind::Begin,
            2 => {
                let entry = FileEntry::decode(&sector_of(&buf[32..32 + ENTRY_BYTES]), 0)
                    .ok()
                    .flatten()?;
                RecordKind::Update {
                    slot: get_u32(buf, 24),
                    entry,
                }
            }
            3 => RecordKind::Commit {
                n_updates: get_u32(buf, 24),
            },
            4 => RecordKind::Checkpoint,
            _ => return None,
        };
        Some(JournalRecord { seq, tid, kind })
    }
}

/// Re-pads an embedded entry image to a full sector for [`FileEntry::decode`].
fn sector_of(image: &[u8]) -> Vec<u8> {
    let mut buf = vec![0u8; SECTOR_USIZE];
    buf[..image.len().min(SECTOR_USIZE)].copy_from_slice(&image[..image.len().min(SECTOR_USIZE)]);
    buf
}

/// Ring slot of sequence number `seq` in a `journal_sectors`-long ring.
pub fn ring_slot(seq: u64, journal_sectors: u64) -> u64 {
    seq % journal_sectors
}

/// Byte offset of `lba` on the device (for request-log accounting).
pub fn sector_offset(lba: u64) -> u64 {
    lba * u64_from_usize(SECTOR_USIZE)
}

/// Splits `content` into per-sector images, zero-padding the tail.
pub fn content_sectors(content: &[u8]) -> Vec<Vec<u8>> {
    content
        .chunks(SECTOR_USIZE)
        .map(|chunk| {
            let mut buf = vec![0u8; SECTOR_USIZE];
            buf[..chunk.len()].copy_from_slice(chunk);
            buf
        })
        .collect()
}

/// Recovers the leading `len` bytes of a file from its per-sector reads.
pub fn content_from_sectors(sectors: &[Vec<u8>], len: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(usize_from(len));
    for s in sectors {
        let want = usize_from(len).saturating_sub(out.len());
        if want == 0 {
            break;
        }
        out.extend_from_slice(&s[..want.min(s.len())]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> FileEntry {
        FileEntry {
            name: "panel-007".into(),
            size: 12_345,
            extents: vec![Extent { start: 70, len: 3 }, Extent { start: 90, len: 1 }],
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // zlib's crc32("123456789") reference value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn superblock_round_trips_and_rejects_damage() {
        let sb = Superblock {
            total_sectors: 4096,
            table_start: 1,
            table_sectors: 64,
            journal_start: 65,
            journal_sectors: 64,
            data_start: 129,
        };
        let buf = sb.encode();
        assert_eq!(Superblock::decode(&buf), Ok(sb));
        let mut bad = buf.clone();
        bad[9] ^= 0xFF; // total_sectors byte
        assert!(matches!(
            Superblock::decode(&bad),
            Err(SimError::Corruption { .. })
        ));
        let mut wrong_magic = buf;
        wrong_magic[0] ^= 1;
        assert!(Superblock::decode(&wrong_magic).is_err());
    }

    #[test]
    fn file_entry_round_trips_and_vacant_is_none() {
        let e = entry();
        let buf = e.encode();
        assert_eq!(FileEntry::decode(&buf, 7), Ok(Some(e)));
        let zero = vec![0u8; SECTOR_USIZE];
        assert_eq!(FileEntry::decode(&zero, 7), Ok(None));
        let mut torn = buf;
        torn[100] ^= 0x55;
        let err = FileEntry::decode(&torn, 7);
        assert!(matches!(err, Err(SimError::Corruption { sector: 7, .. })));
    }

    #[test]
    fn journal_records_round_trip_every_kind() {
        let records = [
            JournalRecord {
                seq: 1,
                tid: 9,
                kind: RecordKind::Begin,
            },
            JournalRecord {
                seq: 2,
                tid: 9,
                kind: RecordKind::Update {
                    slot: 5,
                    entry: entry(),
                },
            },
            JournalRecord {
                seq: 3,
                tid: 9,
                kind: RecordKind::Commit { n_updates: 1 },
            },
            JournalRecord {
                seq: 4,
                tid: 9,
                kind: RecordKind::Checkpoint,
            },
        ];
        for r in records {
            let buf = r.encode();
            assert_eq!(JournalRecord::decode(&buf), Some(r));
        }
    }

    #[test]
    fn torn_journal_record_decodes_to_none() {
        let r = JournalRecord {
            seq: 8,
            tid: 3,
            kind: RecordKind::Commit { n_updates: 1 },
        };
        let new = r.encode();
        // Old slot contents: a valid record from a previous ring lap.
        let old = JournalRecord {
            seq: 8 - 4,
            tid: 1,
            kind: RecordKind::Begin,
        }
        .encode();
        // A torn write persists a prefix of the new record over the old.
        for keep in [0usize, 1, 100, JREC_CRC_OFF, JREC_CRC_OFF + 2] {
            let mut sector = old.clone();
            sector[..keep].copy_from_slice(&new[..keep]);
            let got = JournalRecord::decode(&sector);
            assert_ne!(got, Some(r.clone()), "keep={keep} yielded the new record");
        }
        // The full record survives a "tear" that kept everything.
        assert_eq!(JournalRecord::decode(&new), Some(r));
    }

    #[test]
    fn content_sector_round_trip() {
        let content: Vec<u8> = (0u16..9000).map(|i| (i % 251) as u8).collect();
        let sectors = content_sectors(&content);
        assert_eq!(sectors.len(), 3);
        let back = content_from_sectors(&sectors, u64_from_usize(content.len()));
        assert_eq!(back, content);
    }
}
