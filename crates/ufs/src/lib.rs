//! # ufs — the paper's Unified File System, built for real
//!
//! Where `oocfs::UfsModel` only *reshapes* a request stream (the paper's
//! §3.2 transformation view), this crate is an actual filesystem over the
//! simulated block device, with real durability semantics to defend:
//!
//! * [`layout`] — the on-disk format: one CRC-tagged metadata structure
//!   per 4 KiB sector (superblock, file entries, journal records), so
//!   torn sector writes are always detectable;
//! * [`alloc`] — first-fit extent allocation, rebuilt from the file
//!   table at every mount (no on-disk free list to corrupt), keeping
//!   files contiguous so application request size and sequentiality
//!   survive to the device;
//! * [`journal`] — redo-journal recovery planning: committed
//!   transactions past the checkpoint horizon are replayed from their
//!   full-entry journal images, uncommitted ones are discarded;
//! * [`fs`] — mount/create/open/read/write/fsync over any
//!   [`ssd::BlockDevice`], with the five-phase commit protocol
//!   (data → journal → commit mark → apply → checkpoint);
//! * [`harness`] — the exhaustive crash-point sweep: power loss after
//!   *every* device write of a workload, dropped and torn, each case
//!   remounted and checked for committed-prefix visibility and
//!   idempotent recovery;
//! * [`replay`] — an [`oocfs::FileSystemModel`] adapter that replays a
//!   POSIX trace through the real filesystem and emits the device-level
//!   block trace it actually generated.
//!
//! See docs/UFS.md for the commit protocol and recovery invariants, and
//! docs/FAULT_MODEL.md for the crash-point fault vocabulary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod fs;
pub mod harness;
pub mod journal;
pub mod layout;
pub mod replay;

pub use fs::{FileId, Ufs, UfsParams, WriteAmp};
pub use harness::{crash_matrix, CrashMatrixParams, CrashMatrixReport};
pub use journal::RecoveryReport;
pub use layout::{Extent, FileEntry};
pub use replay::JournaledUfs;
