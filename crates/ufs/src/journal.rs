//! Redo-journal recovery planning.
//!
//! Mount scans every journal-ring sector, keeps the records whose CRC
//! verifies, and hands them to [`plan_recovery`], a pure function that
//! decides what to replay. The commit protocol (journal records → data
//! extents → commit mark → in-place apply → checkpoint, see docs/UFS.md)
//! guarantees two facts the planner leans on:
//!
//! * a Commit record is persisted only after every Update of its
//!   transaction — so "commit present, updates missing" past the
//!   checkpoint horizon is real corruption, not an interrupted write;
//! * every Update carries the complete new file entry — so replaying a
//!   transaction any number of times writes the same bytes (idempotent
//!   redo).

use crate::layout::{FileEntry, JournalRecord, RecordKind};
use nvmtypes::SimError;
use std::collections::{BTreeMap, BTreeSet};

/// What recovery decided and did at mount, rendered deterministically —
/// byte-identical across re-runs and thread counts for the same image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Journal-ring sectors scanned.
    pub sectors_scanned: u64,
    /// Records whose CRC verified.
    pub valid_records: u64,
    /// Highest checkpointed transaction id (0 = no checkpoint found).
    pub last_checkpoint_tid: u64,
    /// Committed-but-unapplied transactions replayed, in id order.
    pub replayed_tids: Vec<u64>,
    /// Transactions past the checkpoint with records but no commit mark —
    /// interrupted before the commit point, discarded untouched.
    pub discarded_tids: Vec<u64>,
    /// `true` when recovery wrote a fresh checkpoint (it replayed
    /// something); a second mount of the same image writes nothing.
    pub checkpoint_written: bool,
}

impl RecoveryReport {
    /// A mount that found nothing to do.
    pub fn clean(sectors_scanned: u64, valid_records: u64, last_checkpoint_tid: u64) -> Self {
        RecoveryReport {
            sectors_scanned,
            valid_records,
            last_checkpoint_tid,
            replayed_tids: Vec::new(),
            discarded_tids: Vec::new(),
            checkpoint_written: false,
        }
    }

    /// `true` when the mount replayed no transactions.
    pub fn is_clean(&self) -> bool {
        self.replayed_tids.is_empty()
    }

    /// One-line summary, stable across runs.
    pub fn render(&self) -> String {
        format!(
            "journal {}/{} valid; checkpoint tid {}; replayed {:?}; discarded {:?}; checkpoint_written {}",
            self.valid_records,
            self.sectors_scanned,
            self.last_checkpoint_tid,
            self.replayed_tids,
            self.discarded_tids,
            self.checkpoint_written,
        )
    }
}

/// The planner's output: slot images to rewrite, in replay order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryPlan {
    /// `(slot, entry)` writes to apply, ordered by (tid, record seq).
    pub apply: Vec<(u32, FileEntry)>,
    /// Transaction ids replayed, ascending.
    pub replayed_tids: Vec<u64>,
    /// Post-checkpoint transactions discarded as uncommitted, ascending.
    pub discarded_tids: Vec<u64>,
    /// Highest checkpointed tid found (0 if none).
    pub last_checkpoint_tid: u64,
    /// Next free journal sequence number.
    pub next_seq: u64,
    /// Next free transaction id.
    pub next_tid: u64,
}

/// Decides what to replay from the valid journal records of one ring.
///
/// Records may arrive in any order; the planner sorts by sequence
/// number. Two valid records with the same sequence number cannot occur
/// in a healthy ring (sequence numbers are never reused) and are
/// reported as corruption.
pub fn plan_recovery(mut records: Vec<JournalRecord>) -> Result<RecoveryPlan, SimError> {
    records.sort_by_key(|r| r.seq);
    for pair in records.windows(2) {
        if pair[0].seq == pair[1].seq {
            return Err(SimError::corruption(
                "journal record",
                pair[1].seq,
                format!("duplicate sequence number {}", pair[1].seq),
            ));
        }
    }
    let next_seq = records.last().map_or(1, |r| r.seq + 1);
    let last_checkpoint_tid = records
        .iter()
        .filter(|r| r.kind == RecordKind::Checkpoint)
        .map(|r| r.tid)
        .max()
        .unwrap_or(0);

    // Group post-checkpoint records by transaction.
    let mut updates: BTreeMap<u64, Vec<(u64, u32, FileEntry)>> = BTreeMap::new();
    let mut commits: BTreeMap<u64, u32> = BTreeMap::new();
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    for r in &records {
        if r.tid <= last_checkpoint_tid || r.kind == RecordKind::Checkpoint {
            continue;
        }
        seen.insert(r.tid);
        match &r.kind {
            RecordKind::Update { slot, entry } => {
                updates
                    .entry(r.tid)
                    .or_default()
                    .push((r.seq, *slot, entry.clone()))
            }
            RecordKind::Commit { n_updates } => {
                commits.insert(r.tid, *n_updates);
            }
            RecordKind::Begin | RecordKind::Checkpoint => {}
        }
    }

    let mut apply = Vec::new();
    let mut replayed_tids = Vec::new();
    let mut discarded_tids = Vec::new();
    for &tid in &seen {
        match commits.get(&tid) {
            Some(&n_updates) => {
                let mut ups = updates.remove(&tid).unwrap_or_default();
                ups.sort_by_key(|&(seq, _, _)| seq);
                if ups.len() != nvmtypes::usize_from(u64::from(n_updates)) {
                    return Err(SimError::corruption(
                        "journal transaction",
                        tid,
                        format!(
                            "commit mark promises {} update(s), {} present",
                            n_updates,
                            ups.len()
                        ),
                    ));
                }
                for (_, slot, entry) in ups {
                    apply.push((slot, entry));
                }
                replayed_tids.push(tid);
            }
            None => discarded_tids.push(tid),
        }
    }
    let next_tid = seen
        .iter()
        .next_back()
        .copied()
        .max(Some(last_checkpoint_tid))
        .unwrap_or(0)
        + 1;
    Ok(RecoveryPlan {
        apply,
        replayed_tids,
        discarded_tids,
        last_checkpoint_tid,
        next_seq,
        next_tid,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Extent;

    fn entry(tag: u64) -> FileEntry {
        FileEntry {
            name: format!("f{tag}"),
            size: tag * 100,
            extents: vec![Extent {
                start: 200 + tag,
                len: 1,
            }],
        }
    }

    fn rec(seq: u64, tid: u64, kind: RecordKind) -> JournalRecord {
        JournalRecord { seq, tid, kind }
    }

    #[test]
    fn committed_transaction_past_checkpoint_is_replayed() {
        let records = vec![
            rec(1, 1, RecordKind::Begin),
            rec(
                2,
                1,
                RecordKind::Update {
                    slot: 0,
                    entry: entry(1),
                },
            ),
            rec(3, 1, RecordKind::Commit { n_updates: 1 }),
            rec(4, 1, RecordKind::Checkpoint),
            rec(5, 2, RecordKind::Begin),
            rec(
                6,
                2,
                RecordKind::Update {
                    slot: 3,
                    entry: entry(2),
                },
            ),
            rec(7, 2, RecordKind::Commit { n_updates: 1 }),
            // Crash before tid 2's checkpoint.
        ];
        let plan = plan_recovery(records).expect("plans");
        assert_eq!(plan.last_checkpoint_tid, 1);
        assert_eq!(plan.replayed_tids, vec![2]);
        assert_eq!(plan.apply, vec![(3, entry(2))]);
        assert!(plan.discarded_tids.is_empty());
        assert_eq!(plan.next_seq, 8);
        assert_eq!(plan.next_tid, 3);
    }

    #[test]
    fn uncommitted_transaction_is_discarded() {
        let records = vec![
            rec(1, 1, RecordKind::Begin),
            rec(
                2,
                1,
                RecordKind::Update {
                    slot: 0,
                    entry: entry(1),
                },
            ),
            // Crash before the commit mark.
        ];
        let plan = plan_recovery(records).expect("plans");
        assert!(plan.apply.is_empty());
        assert_eq!(plan.discarded_tids, vec![1]);
        assert_eq!(plan.next_tid, 2);
    }

    #[test]
    fn commit_without_updates_is_corruption() {
        let records = vec![rec(3, 2, RecordKind::Commit { n_updates: 1 })];
        assert!(matches!(
            plan_recovery(records),
            Err(SimError::Corruption { .. })
        ));
    }

    #[test]
    fn duplicate_sequence_numbers_are_corruption() {
        let records = vec![rec(3, 1, RecordKind::Begin), rec(3, 2, RecordKind::Begin)];
        assert!(plan_recovery(records).is_err());
    }

    #[test]
    fn empty_journal_plans_a_fresh_filesystem() {
        let plan = plan_recovery(Vec::new()).expect("plans");
        assert!(plan.is_clean_shape());
        assert_eq!(plan.next_seq, 1);
        assert_eq!(plan.next_tid, 1);
    }

    impl RecoveryPlan {
        fn is_clean_shape(&self) -> bool {
            self.apply.is_empty() && self.replayed_tids.is_empty() && self.discarded_tids.is_empty()
        }
    }

    #[test]
    fn replay_order_follows_tid_then_seq() {
        let records = vec![
            // Two committed transactions, interleaved in the ring.
            rec(
                12,
                5,
                RecordKind::Update {
                    slot: 2,
                    entry: entry(5),
                },
            ),
            rec(10, 4, RecordKind::Begin),
            rec(
                11,
                4,
                RecordKind::Update {
                    slot: 1,
                    entry: entry(4),
                },
            ),
            rec(13, 4, RecordKind::Commit { n_updates: 1 }),
            rec(14, 5, RecordKind::Commit { n_updates: 1 }),
        ];
        let plan = plan_recovery(records).expect("plans");
        assert_eq!(plan.replayed_tids, vec![4, 5]);
        assert_eq!(plan.apply[0].0, 1);
        assert_eq!(plan.apply[1].0, 2);
    }

    #[test]
    fn report_renders_deterministically() {
        let a = RecoveryReport::clean(64, 10, 3);
        let b = RecoveryReport::clean(64, 10, 3);
        assert_eq!(a.render(), b.render());
        assert!(a.is_clean());
        assert!(a.render().contains("checkpoint tid 3"));
    }
}
