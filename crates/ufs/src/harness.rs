//! The exhaustive crash-point harness.
//!
//! One clean run of a deterministic workload establishes the ground
//! truth: the total number of device sector writes `W`, the write index
//! at which each transaction's commit mark persisted, and the logical
//! file state after each commit. Because the filesystem is a pure
//! function of its inputs, every crash replica issues the *same* write
//! sequence — so simulating power loss during write `k` (for every `k`
//! in `1..=W`, both dropped and torn) has a fully known expected
//! outcome: exactly the commits whose mark persisted before write `k`
//! are visible, everything else is invisible.
//!
//! Each case then verifies, post-remount:
//!
//! * **committed-prefix**: the file set and every byte of content equal
//!   the snapshot of the latest commit with index `< k`;
//! * **idempotency**: a second mount replays nothing and leaves the
//!   media byte-identical;
//! * **determinism**: the per-case recovery summaries fold into a CRC
//!   digest that is byte-identical across re-runs and thread counts
//!   (cases run in parallel, results collected in input order).

use crate::fs::{Ufs, UfsParams, WRITES_AFTER_COMMIT};
use crate::layout::crc32;
use nvmtypes::convert::{u64_from_usize, usize_from};
use nvmtypes::fault::CrashPoint;
use nvmtypes::SimError;
use rayon::prelude::*;
use ssd::{BlockDevice, SimBlockDevice};
use std::collections::BTreeMap;

/// Workload and geometry of one crash-matrix sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashMatrixParams {
    /// Device size in sectors.
    pub device_sectors: u64,
    /// Filesystem geometry.
    pub fs: UfsParams,
    /// Files the workload cycles over.
    pub files: u32,
    /// Write+fsync rounds per file.
    pub rounds: u32,
    /// Base payload per file write, bytes (each write varies around it).
    pub payload_bytes: u32,
    /// Seed for torn-write byte counts.
    pub seed: u64,
}

impl Default for CrashMatrixParams {
    fn default() -> CrashMatrixParams {
        CrashMatrixParams {
            device_sectors: 1024,
            fs: UfsParams::default(),
            files: 3,
            rounds: 2,
            payload_bytes: 6000,
            seed: 0x5EED_CAFE,
        }
    }
}

/// One workload step: write `content` to `name`, then fsync.
#[derive(Debug, Clone)]
struct Op {
    name: String,
    content: Vec<u8>,
}

/// Deterministic workload: `rounds` passes over `files` files, each op
/// rewriting the whole file with fresh patterned content and fsyncing.
fn workload(params: &CrashMatrixParams) -> Vec<Op> {
    let mut ops = Vec::new();
    for round in 0..params.rounds {
        for file in 0..params.files {
            let tag = u64::from(round) * u64::from(params.files) + u64::from(file);
            let len = usize_from(u64::from(params.payload_bytes) + tag * 523 % 4096);
            let salt = (tag * 151 + 7) % 251;
            let content = (0..len)
                .map(|i| {
                    let x = u64_from_usize(i).wrapping_mul(31).wrapping_add(salt) % 256;
                    u8::try_from(x).unwrap_or(0)
                })
                .collect();
            ops.push(Op {
                name: format!("f{file}"),
                content,
            });
        }
    }
    ops
}

/// Runs `ops` on a freshly mounted `dev`, creating files on first touch.
/// Returns the filesystem and, after each successful fsync, the commit's
/// device-write index paired with the logical state snapshot. On power
/// loss the replica stops and hands back the dead device's media.
enum RunEnd {
    /// All ops applied (the clean run).
    Completed {
        fs: Box<Ufs<SimBlockDevice>>,
        commits: Vec<(u64, BTreeMap<String, Vec<u8>>)>,
    },
    /// Power was lost mid-op; the surviving media image.
    PowerLost { media: Vec<u8> },
}

/// Mirrors [`Ufs::write`] at offset 0 in the logical model: a pwrite-style
/// overlay, so a shorter rewrite never truncates the file.
fn overlay(model: &mut BTreeMap<String, Vec<u8>>, name: &str, content: &[u8]) {
    let file = model.entry(name.to_string()).or_default();
    if file.len() < content.len() {
        file.resize(content.len(), 0);
    }
    file[..content.len()].copy_from_slice(content);
}

fn run_ops(dev: SimBlockDevice, ops: &[Op]) -> Result<RunEnd, SimError> {
    let (mut fs, _report) = Ufs::mount(dev)?;
    let mut commits = Vec::new();
    let mut model: BTreeMap<String, Vec<u8>> = BTreeMap::new();
    for op in ops {
        let step = (|| -> Result<(), SimError> {
            let id = match fs.open(&op.name) {
                Ok(id) => id,
                Err(_) => fs.create(&op.name)?,
            };
            fs.write(id, 0, &op.content)?;
            fs.fsync(id)
        })();
        match step {
            Ok(()) => {
                overlay(&mut model, &op.name, &op.content);
                let commit_index = fs.device().writes_persisted() - WRITES_AFTER_COMMIT;
                commits.push((commit_index, model.clone()));
            }
            Err(e) if e.is_power_loss() => {
                return Ok(RunEnd::PowerLost {
                    media: fs.into_device().into_media(),
                });
            }
            Err(e) => return Err(e),
        }
    }
    Ok(RunEnd::Completed {
        fs: Box::new(fs),
        commits,
    })
}

/// Outcome of one crash case, after remount and verification.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CaseOutcome {
    at_write: u64,
    torn: bool,
    replayed: u64,
    discarded: u64,
    summary: String,
}

/// Aggregate result of an exhaustive sweep. [`CrashMatrixReport::render`]
/// is byte-identical across re-runs and thread counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashMatrixReport {
    /// Device writes in the clean run (crash points swept: `1..=this`).
    pub total_writes: u64,
    /// Transactions the clean run committed.
    pub commits: u64,
    /// Crash cases executed (`2 * total_writes`: dropped and torn).
    pub cases: u64,
    /// Cases whose remount replayed at least one transaction.
    pub cases_replayed: u64,
    /// Cases whose remount discarded an uncommitted transaction.
    pub cases_discarded: u64,
    /// CRC-32 over every per-case recovery summary, in case order.
    pub digest: u32,
}

impl CrashMatrixReport {
    /// Deterministic multi-line report.
    pub fn render(&self) -> String {
        format!(
            "crash matrix: {} writes, {} commits, {} cases\n  replayed in {} cases, discarded uncommitted in {} cases\n  recovery digest {:08x}\n",
            self.total_writes,
            self.commits,
            self.cases,
            self.cases_replayed,
            self.cases_discarded,
            self.digest,
        )
    }
}

/// Runs the exhaustive sweep: power loss after every device write of the
/// workload, dropped and torn, each followed by remount, committed-prefix
/// verification and an idempotency check. Any violated invariant surfaces
/// as an error naming the case.
pub fn crash_matrix(params: &CrashMatrixParams) -> Result<CrashMatrixReport, SimError> {
    let ops = workload(params);

    // Base image: a freshly formatted, empty filesystem.
    let base = Ufs::format(SimBlockDevice::new(params.device_sectors), params.fs)?
        .into_device()
        .into_media();

    // Clean run: ground truth.
    let clean = run_ops(SimBlockDevice::from_media(base.clone())?, &ops)?;
    let (clean_fs, commits) = match clean {
        RunEnd::Completed { fs, commits } => (fs, commits),
        RunEnd::PowerLost { .. } => {
            return Err(SimError::invalid_config(
                "crash_matrix",
                "clean run lost power without a crash hook",
            ))
        }
    };
    let total_writes = clean_fs.device().writes_persisted();
    drop(clean_fs);

    // Every (write index, torn?) pair.
    let case_ids: Vec<(u64, bool)> = (1..=total_writes)
        .flat_map(|k| [(k, false), (k, true)])
        .collect();
    let outcomes: Vec<Result<CaseOutcome, SimError>> = case_ids
        .into_par_iter()
        .map(|(k, torn)| run_case(&base, &ops, &commits, k, torn, params.seed))
        .collect();

    let mut digest_input = String::new();
    let mut cases_replayed = 0;
    let mut cases_discarded = 0;
    let mut cases = 0;
    for outcome in outcomes {
        let o = outcome?;
        cases += 1;
        if o.replayed > 0 {
            cases_replayed += 1;
        }
        if o.discarded > 0 {
            cases_discarded += 1;
        }
        digest_input.push_str(&format!(
            "{}:{}:{}\n",
            o.at_write,
            u64::from(o.torn),
            o.summary
        ));
    }
    Ok(CrashMatrixReport {
        total_writes,
        commits: u64_from_usize(commits.len()),
        cases,
        cases_replayed,
        cases_discarded,
        digest: crc32(digest_input.as_bytes()),
    })
}

/// One crash case: replay the workload with power loss at write `k`,
/// remount, verify the committed prefix, then verify recovery idempotency.
fn run_case(
    base: &[u8],
    ops: &[Op],
    commits: &[(u64, BTreeMap<String, Vec<u8>>)],
    k: u64,
    torn: bool,
    seed: u64,
) -> Result<CaseOutcome, SimError> {
    let fail = |reason: String| {
        SimError::invalid_config(
            "crash_matrix",
            format!("case write={k} torn={torn}: {reason}"),
        )
    };
    let dev = SimBlockDevice::from_media(base.to_vec())?
        .with_crash_point(Some(CrashPoint::at_write(k, torn, seed.wrapping_add(k))));
    let media = match run_ops(dev, ops)? {
        RunEnd::PowerLost { media } => media,
        RunEnd::Completed { .. } => {
            return Err(fail("crash point never fired".into()));
        }
    };

    // Expected: the latest commit whose mark persisted before write k.
    let empty = BTreeMap::new();
    let expected = commits
        .iter()
        .rev()
        .find(|(commit_index, _)| *commit_index < k)
        .map_or(&empty, |(_, state)| state);

    // A *torn* crash during the commit-mark write itself has two legal
    // outcomes: journal records occupy only the head of their sector, so
    // a tear that keeps at least the record bytes persists a valid commit
    // mark (the transaction commits); a shorter tear leaves CRC debris
    // (it doesn't). Both sides of the atomicity boundary are accepted —
    // everything else about the case is still verified strictly.
    let torn_commit_alt = if torn {
        commits
            .iter()
            .find(|(commit_index, _)| *commit_index == k)
            .map(|(_, state)| state)
    } else {
        None
    };

    // Remount: recovery runs here.
    let (mut fs, report) = Ufs::mount(SimBlockDevice::from_media(media)?)?;
    if let Some(reason) = state_mismatch(&mut fs, expected)? {
        match torn_commit_alt {
            Some(alt) if state_mismatch(&mut fs, alt)?.is_none() => {}
            _ => return Err(fail(reason)),
        }
    }

    // Idempotency: a second mount must replay nothing and write nothing.
    let media_once = fs.into_device().into_media();
    let (fs2, report2) = Ufs::mount(SimBlockDevice::from_media(media_once.clone())?)?;
    if !report2.is_clean() || report2.checkpoint_written {
        return Err(fail(format!(
            "second recovery was not clean: {}",
            report2.render()
        )));
    }
    let media_twice = fs2.into_device().into_media();
    if media_once != media_twice {
        return Err(fail("second recovery changed the media".into()));
    }

    Ok(CaseOutcome {
        at_write: k,
        torn,
        replayed: u64_from_usize(report.replayed_tids.len()),
        discarded: u64_from_usize(report.discarded_tids.len()),
        summary: report.render(),
    })
}

/// Compares the mounted filesystem against a logical snapshot. Returns
/// `Ok(None)` on an exact match, `Ok(Some(reason))` on divergence, and
/// `Err` only for I/O-level failures (which no case should see).
fn state_mismatch(
    fs: &mut Ufs<SimBlockDevice>,
    want: &BTreeMap<String, Vec<u8>>,
) -> Result<Option<String>, SimError> {
    let want_names: Vec<String> = want.keys().cloned().collect();
    let mut names = fs.file_names();
    names.sort();
    if names != want_names {
        return Ok(Some(format!("file set {names:?}, expected {want_names:?}")));
    }
    for (name, content) in want {
        let id = fs.open(name)?;
        let size = fs.size(id)?;
        if size != u64_from_usize(content.len()) {
            return Ok(Some(format!(
                "`{name}` is {size} bytes, expected {}",
                content.len()
            )));
        }
        let mut got = vec![0u8; content.len()];
        fs.read(id, 0, &mut got)?;
        if &got != content {
            return Ok(Some(format!("`{name}` content diverged")));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CrashMatrixParams {
        CrashMatrixParams {
            device_sectors: 512,
            fs: UfsParams {
                max_files: 8,
                journal_sectors: 16,
            },
            files: 2,
            rounds: 2,
            payload_bytes: 5000,
            seed: 42,
        }
    }

    #[test]
    fn exhaustive_tiny_matrix_holds_every_invariant() {
        let report = crash_matrix(&tiny()).expect("matrix holds");
        assert_eq!(report.commits, 4);
        assert_eq!(report.cases, 2 * report.total_writes);
        // Crashes between a commit mark and its checkpoint replay the
        // transaction: at least the apply and checkpoint windows of
        // every commit are replay cases (2 windows x 2 variants).
        assert!(
            report.cases_replayed >= 2 * report.commits,
            "replayed in {} cases across {} commits",
            report.cases_replayed,
            report.commits
        );
        // Crashes during data or journal phases discard the in-flight
        // transaction somewhere in the sweep.
        assert!(report.cases_discarded > 0);
    }

    #[test]
    fn matrix_report_is_deterministic_across_runs() {
        let a = crash_matrix(&tiny()).expect("runs");
        let b = crash_matrix(&tiny()).expect("runs");
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn workload_is_deterministic() {
        let p = tiny();
        let a = workload(&p);
        let b = workload(&p);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.content, y.content);
        }
    }
}
