//! The filesystem: format, mount-with-recovery, and the
//! create/open/read/write/fsync surface the out-of-core store drives.
//!
//! ## Commit protocol (redo journaling)
//!
//! An `fsync` makes one file's staged content durable in five ordered
//! device-write phases:
//!
//! 1. **Data** — copy-on-write: fresh extents are allocated and the new
//!    content written there. The old extents stay referenced by the
//!    durable entry, so a crash here loses nothing.
//! 2. **Journal** — `Begin` and one `Update` record carrying the complete
//!    new file entry (name, size, new extents).
//! 3. **Commit mark** — one record; the transaction is durable the
//!    moment this sector persists.
//! 4. **Apply** — the entry is written in place in the file table.
//! 5. **Checkpoint** — one record telling recovery the apply happened.
//!
//! Power loss before (3) leaves the transaction invisible; after (3),
//! recovery replays the apply from the journal image. Recovery writes a
//! checkpoint only when it replayed something, so recovering twice is
//! byte-identical to recovering once.

use crate::alloc::ExtentAllocator;
use crate::journal::{plan_recovery, RecoveryReport};
use crate::layout::{
    ring_slot, sector_offset, FileEntry, JournalRecord, RecordKind, Superblock, MAX_EXTENTS,
    MAX_NAME,
};
use nvmtypes::convert::{u32_from, u64_from_usize, usize_from, usize_from_u32};
use nvmtypes::{HostRequest, SimError};
use ssd::{BlockDevice, SECTOR_USIZE};
use std::collections::BTreeMap;

/// Device writes issued after the commit mark in one `fsync`
/// transaction (the in-place apply and the checkpoint record). The
/// crash-matrix harness uses this to compute, from a clean run's write
/// count, the exact write index at which each transaction's commit mark
/// persisted.
pub const WRITES_AFTER_COMMIT: u64 = 2;

/// Device-byte accounting for the journal's write amplification: how
/// many bytes the filesystem wrote to the device, split by purpose,
/// against how many bytes the application asked it to write. The ~390%
/// replay overhead the `ufs` study reports decomposes exactly into
/// these counters (`docs/PROFILING.md`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteAmp {
    /// Application bytes staged through [`Ufs::write`].
    pub user_bytes: u64,
    /// Copy-on-write data bytes: every fsync rewrites the file's full
    /// content into fresh extents (the dominant amplification source).
    pub cow_bytes: u64,
    /// Journal-ring record bytes (Begin/Update/Commit/Checkpoint).
    pub journal_bytes: u64,
    /// In-place file-table applies plus the superblock.
    pub apply_bytes: u64,
    /// Committed transactions ([`Ufs::fsync`] calls that wrote).
    pub commits: u64,
    /// Transactions replayed by mount-time recovery.
    pub recovery_replays: u64,
}

impl WriteAmp {
    /// Every byte the device saw (data + journal + applies).
    pub fn device_bytes(&self) -> u64 {
        self.cow_bytes + self.journal_bytes + self.apply_bytes
    }

    /// Device bytes per user byte, in integer per-mille (1000 = 1.0x).
    /// 0 when no user bytes were written.
    pub fn device_per_user_permille(&self) -> u64 {
        if self.user_bytes == 0 {
            0
        } else {
            self.device_bytes().saturating_mul(1000) / self.user_bytes
        }
    }
}

/// Format-time geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UfsParams {
    /// File-table slots (one sector each).
    pub max_files: u32,
    /// Journal-ring length in sectors.
    pub journal_sectors: u32,
}

impl Default for UfsParams {
    fn default() -> UfsParams {
        UfsParams {
            max_files: 64,
            journal_sectors: 64,
        }
    }
}

impl UfsParams {
    /// Validates the geometry against a device of `total_sectors`.
    pub fn validate(&self, total_sectors: u64) -> Result<(), SimError> {
        if self.max_files == 0 {
            return Err(SimError::invalid_config(
                "ufs.max_files",
                "must be non-zero",
            ));
        }
        if self.journal_sectors < 8 {
            return Err(SimError::invalid_config(
                "ufs.journal_sectors",
                "must be at least 8",
            ));
        }
        let meta = 1 + u64::from(self.max_files) + u64::from(self.journal_sectors);
        if meta >= total_sectors {
            return Err(SimError::invalid_config(
                "ufs.params",
                format!("metadata needs {meta} sectors, device has {total_sectors}"),
            ));
        }
        Ok(())
    }
}

/// Handle to an open file: its file-table slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FileId(pub u32);

/// A mounted UFS over any [`BlockDevice`].
#[derive(Debug)]
pub struct Ufs<D: BlockDevice> {
    dev: D,
    sb: Superblock,
    /// Current in-memory view: durable entries plus applied commits.
    table: Vec<Option<FileEntry>>,
    alloc: ExtentAllocator,
    /// Staged (not yet fsynced) full file contents, by slot.
    staged: BTreeMap<u32, Vec<u8>>,
    next_tid: u64,
    next_seq: u64,
    /// Captured device requests (sector I/O merged into extents), when on.
    log: Vec<HostRequest>,
    logging: bool,
    /// Always-on write-amplification accounting (plain integer adds).
    wa: WriteAmp,
}

impl<D: BlockDevice> Ufs<D> {
    /// Formats `dev` and mounts the fresh filesystem. The device must be
    /// zero-filled (a new [`ssd::SimBlockDevice`] is); format writes only
    /// the superblock, because all-zero table and journal sectors already
    /// mean "vacant".
    pub fn format(dev: D, params: UfsParams) -> Result<Ufs<D>, SimError> {
        let total = dev.sectors();
        params.validate(total)?;
        let sb = Superblock {
            total_sectors: total,
            table_start: 1,
            table_sectors: u64::from(params.max_files),
            journal_start: 1 + u64::from(params.max_files),
            journal_sectors: u64::from(params.journal_sectors),
            data_start: 1 + u64::from(params.max_files) + u64::from(params.journal_sectors),
        };
        let mut fs = Ufs {
            dev,
            sb,
            table: vec![None; usize_from_u32(params.max_files)],
            alloc: ExtentAllocator::new(sb.data_start, total - sb.data_start),
            staged: BTreeMap::new(),
            next_tid: 1,
            next_seq: 1,
            log: Vec::new(),
            logging: false,
            wa: WriteAmp::default(),
        };
        fs.wa.apply_bytes += u64_from_usize(SECTOR_USIZE);
        fs.write_meta(0, &sb.encode())?;
        Ok(fs)
    }

    /// Mounts an existing filesystem, running crash recovery first. The
    /// returned report says what recovery found; it is deterministic for
    /// a given device image.
    pub fn mount(dev: D) -> Result<(Ufs<D>, RecoveryReport), SimError> {
        let mut fs = Ufs {
            dev,
            sb: Superblock {
                total_sectors: 0,
                table_start: 1,
                table_sectors: 0,
                journal_start: 0,
                journal_sectors: 0,
                data_start: 0,
            },
            table: Vec::new(),
            alloc: ExtentAllocator::new(0, 0),
            staged: BTreeMap::new(),
            next_tid: 1,
            next_seq: 1,
            log: Vec::new(),
            logging: false,
            wa: WriteAmp::default(),
        };
        let mut buf = vec![0u8; SECTOR_USIZE];
        fs.dev.read_sector(0, &mut buf)?;
        fs.sb = Superblock::decode(&buf)?;
        if fs.sb.total_sectors != fs.dev.sectors() {
            return Err(SimError::corruption(
                "superblock",
                0,
                format!(
                    "superblock says {} sectors, device has {}",
                    fs.sb.total_sectors,
                    fs.dev.sectors()
                ),
            ));
        }

        // 1. Scan the journal ring for valid records.
        let mut records = Vec::new();
        for i in 0..fs.sb.journal_sectors {
            fs.dev.read_sector(fs.sb.journal_start + i, &mut buf)?;
            if let Some(r) = JournalRecord::decode(&buf) {
                records.push(r);
            }
        }
        let sectors_scanned = fs.sb.journal_sectors;
        let valid_records = u64_from_usize(records.len());

        // 2. Decide and redo. Replay happens *before* the table is read,
        //    so a torn in-place apply is healed, not reported as corrupt.
        let plan = plan_recovery(records)?;
        fs.next_seq = plan.next_seq;
        fs.next_tid = plan.next_tid;
        for (slot, entry) in &plan.apply {
            if u64::from(*slot) >= fs.sb.table_sectors {
                return Err(SimError::corruption(
                    "journal record",
                    u64::from(*slot),
                    "update targets a slot outside the file table",
                ));
            }
            let lba = fs.sb.table_start + u64::from(*slot);
            fs.wa.apply_bytes += u64_from_usize(SECTOR_USIZE);
            fs.write_meta(lba, &entry.encode())?;
        }
        fs.wa.recovery_replays = u64_from_usize(plan.replayed_tids.len());
        let checkpoint_written = if plan.replayed_tids.is_empty() {
            false
        } else {
            let up_to = *plan.replayed_tids.iter().next_back().unwrap_or(&0);
            fs.append_record(RecordKind::Checkpoint, up_to)?;
            true
        };

        // 3. Read the (now consistent) file table and rebuild free space.
        fs.table = Vec::with_capacity(usize_from(fs.sb.table_sectors));
        fs.alloc = ExtentAllocator::new(fs.sb.data_start, fs.sb.total_sectors - fs.sb.data_start);
        for i in 0..fs.sb.table_sectors {
            let lba = fs.sb.table_start + i;
            fs.dev.read_sector(lba, &mut buf)?;
            let entry = FileEntry::decode(&buf, lba)?;
            if let Some(e) = &entry {
                for ext in &e.extents {
                    if ext.start < fs.sb.data_start || ext.end() > fs.sb.total_sectors {
                        return Err(SimError::corruption(
                            "file entry",
                            lba,
                            "extent outside the data region",
                        ));
                    }
                    fs.alloc.claim(*ext)?;
                }
            }
            fs.table.push(entry);
        }

        let report = RecoveryReport {
            sectors_scanned,
            valid_records,
            last_checkpoint_tid: plan.last_checkpoint_tid,
            replayed_tids: plan.replayed_tids,
            discarded_tids: plan.discarded_tids,
            checkpoint_written,
        };
        Ok((fs, report))
    }

    /// [`Ufs::mount`] with the recovery outcome reported through a
    /// tracer: a `Layer::Ufs` instant with replayed/discarded counts.
    pub fn mount_observed(
        dev: D,
        obs: &mut simobs::Tracer,
    ) -> Result<(Ufs<D>, RecoveryReport), SimError> {
        let (fs, report) = Ufs::mount(dev)?;
        if obs.enabled() {
            obs.instant(
                simobs::Layer::Ufs,
                "mount_recovery",
                0,
                [
                    ("replayed", u64_from_usize(report.replayed_tids.len())),
                    ("discarded", u64_from_usize(report.discarded_tids.len())),
                ],
            );
            obs.count(
                "ufs.recovery_replayed",
                u64_from_usize(report.replayed_tids.len()),
            );
        }
        Ok((fs, report))
    }

    /// Starts capturing the device requests the filesystem issues.
    pub fn enable_request_log(&mut self) {
        self.logging = true;
    }

    /// Drains the captured request log.
    pub fn take_request_log(&mut self) -> Vec<HostRequest> {
        std::mem::take(&mut self.log)
    }

    /// Consumes the filesystem, returning the device (e.g. to inspect the
    /// media after a simulated power loss).
    pub fn into_device(self) -> D {
        self.dev
    }

    /// Borrows the underlying device (e.g. to read its write counter).
    pub fn device(&self) -> &D {
        &self.dev
    }

    /// The mounted geometry.
    pub fn superblock(&self) -> &Superblock {
        &self.sb
    }

    /// Free data sectors.
    pub fn free_sectors(&self) -> u64 {
        self.alloc.free_sectors()
    }

    /// The write-amplification counters accumulated since format/mount.
    pub fn write_amp(&self) -> WriteAmp {
        self.wa
    }

    /// Names of all files, in slot order.
    pub fn file_names(&self) -> Vec<String> {
        self.table
            .iter()
            .flatten()
            .map(|e| e.name.clone())
            .collect()
    }

    /// Creates an empty file. The creation is journaled at first
    /// [`Ufs::fsync`]; until then a crash leaves no trace of it.
    pub fn create(&mut self, name: &str) -> Result<FileId, SimError> {
        if name.is_empty() || name.len() > MAX_NAME {
            return Err(SimError::invalid_config(
                "ufs.name",
                format!("length {} not in 1..={MAX_NAME}", name.len()),
            ));
        }
        if self.lookup(name).is_some() {
            return Err(SimError::invalid_config(
                "ufs.name",
                format!("`{name}` already exists"),
            ));
        }
        let slot =
            self.table
                .iter()
                .position(|e| e.is_none())
                .ok_or(SimError::ResourceExhausted {
                    resource: "ufs file-table slots".into(),
                })?;
        // Hot-path audit (`hotpath_alloc`, allowlisted): the table entry
        // owns its name, and the two `Vec::new`s are zero-capacity (no
        // heap touch until first write) — once per file creation.
        self.table[slot] = Some(FileEntry {
            name: name.to_string(),
            size: 0,
            extents: Vec::new(),
        });
        let id = FileId(u32_from(u64_from_usize(slot)));
        self.staged.insert(id.0, Vec::new());
        Ok(id)
    }

    /// Opens an existing file by name.
    pub fn open(&self, name: &str) -> Result<FileId, SimError> {
        self.lookup(name)
            .ok_or_else(|| SimError::invalid_config("ufs.name", format!("`{name}` does not exist")))
    }

    /// Current size of the file in bytes (staged writes included).
    pub fn size(&self, id: FileId) -> Result<u64, SimError> {
        if let Some(buf) = self.staged.get(&id.0) {
            return Ok(u64_from_usize(buf.len()));
        }
        Ok(self.entry(id)?.size)
    }

    /// Writes `data` at byte `offset`, extending the file as needed. The
    /// write is staged in memory until [`Ufs::fsync`].
    pub fn write(&mut self, id: FileId, offset: u64, data: &[u8]) -> Result<(), SimError> {
        self.entry(id)?;
        if !self.staged.contains_key(&id.0) {
            let content = self.read_all_durable(id)?;
            self.staged.insert(id.0, content);
        }
        self.wa.user_bytes += u64_from_usize(data.len());
        let buf = self.staged.entry(id.0).or_default();
        if usize_from(offset) == buf.len() {
            // Pure append (the replay's steady state): one copy, no
            // zero-fill of bytes that are about to be overwritten.
            buf.extend_from_slice(data);
            return Ok(());
        }
        let end = usize_from(offset) + data.len();
        if buf.len() < end {
            buf.resize(end, 0);
        }
        buf[usize_from(offset)..end].copy_from_slice(data);
        Ok(())
    }

    /// Reads `out.len()` bytes at byte `offset`. Staged writes are
    /// visible (read-your-writes); reading past EOF is an error.
    pub fn read(&mut self, id: FileId, offset: u64, out: &mut [u8]) -> Result<(), SimError> {
        let end = offset + u64_from_usize(out.len());
        if let Some(buf) = self.staged.get(&id.0) {
            if end > u64_from_usize(buf.len()) {
                return Err(read_past_eof(end, u64_from_usize(buf.len())));
            }
            out.copy_from_slice(&buf[usize_from(offset)..usize_from(end)]);
            return Ok(());
        }
        // Hot-path audit (`hotpath_alloc`, allowlisted): metadata-small
        // clone (name + <=8 extents) releasing the table borrow before
        // the mutable device read below.
        let entry = self.entry(id)?.clone();
        if end > entry.size {
            return Err(read_past_eof(end, entry.size));
        }
        if offset == 0 && end == entry.size {
            // Whole-file window (the out-of-core replay's common case):
            // fill `out` straight from the device, skipping the
            // content-sized bounce buffer. The logged request stream is
            // identical — every extent sector is still read in order.
            return self.read_extents_into(&entry, out);
        }
        let content = self.read_extents(&entry)?;
        out.copy_from_slice(&content[usize_from(offset)..usize_from(end)]);
        Ok(())
    }

    /// Makes the file's staged content durable via one journaled
    /// transaction (see the module docs for the write ordering). A no-op
    /// if the file has no staged changes.
    pub fn fsync(&mut self, id: FileId) -> Result<(), SimError> {
        // Take the staged content out rather than cloning it — it can be
        // the whole file, and fsync runs per event. A failed commit puts
        // it back, so the sync stays retryable and read-your-writes
        // holds.
        let Some(content) = self.staged.remove(&id.0) else {
            return Ok(());
        };
        let r = self.commit_staged(id, &content);
        if r.is_err() {
            self.staged.insert(id.0, content);
        }
        r
    }

    /// The five-phase journaled commit of `content` for slot `id`; the
    /// caller ([`Ufs::fsync`]) owns the staged-map bookkeeping.
    fn commit_staged(&mut self, id: FileId, content: &[u8]) -> Result<(), SimError> {
        // Hot-path audit (`hotpath_alloc`, allowlisted): the three entry
        // clones in this function (old entry, its name, the journal copy
        // of the new entry) are metadata-small — a <=64-byte name and
        // <=8 extents — while the content itself moves without copying.
        let old_entry = self.entry(id)?.clone();
        let sectors = u64_from_usize(content.len()).div_ceil(u64_from_usize(SECTOR_USIZE));

        // Phase 1: copy-on-write data into fresh extents. A transaction
        // writes 4 ring records; the >= 8-sector minimum the superblock
        // enforces keeps it from lapping the previous checkpoint.
        let new_extents = self.alloc.allocate(sectors)?;
        if new_extents.len() > MAX_EXTENTS {
            return Err(SimError::ResourceExhausted {
                resource: "ufs data extents".into(),
            });
        }
        // Full sectors write straight from the staged content; only the
        // final partial chunk is zero-padded through one stack buffer
        // (no per-sector Vec list, no full-content bounce copy).
        let mut image = [0u8; SECTOR_USIZE];
        let mut chunks = content.chunks(SECTOR_USIZE);
        'cow: for ext in &new_extents {
            for s in 0..ext.len {
                let Some(chunk) = chunks.next() else {
                    break 'cow;
                };
                if chunk.len() == SECTOR_USIZE {
                    self.write_data(ext.start + s, chunk)?;
                } else {
                    image[..chunk.len()].copy_from_slice(chunk);
                    image[chunk.len()..].fill(0);
                    self.write_data(ext.start + s, &image)?;
                }
            }
        }

        let new_entry = FileEntry {
            name: old_entry.name.clone(),
            size: u64_from_usize(content.len()),
            extents: new_extents,
        };

        // Phase 2+3: journal the intent, then the commit mark.
        let tid = self.next_tid;
        self.next_tid += 1;
        self.append_record(RecordKind::Begin, tid)?;
        self.append_record(
            RecordKind::Update {
                slot: id.0,
                entry: new_entry.clone(),
            },
            tid,
        )?;
        self.append_record(RecordKind::Commit { n_updates: 1 }, tid)?;

        // Phase 4: apply in place.
        let lba = self.sb.table_start + u64::from(id.0);
        self.wa.apply_bytes += u64_from_usize(SECTOR_USIZE);
        new_entry.encode_into(&mut image);
        self.write_meta(lba, &image)?;

        // Phase 5: checkpoint; the journal records are now dead.
        self.append_record(RecordKind::Checkpoint, tid)?;

        // The old content is unreferenced; recycle it.
        for ext in &old_entry.extents {
            self.alloc.release(*ext);
        }
        self.table[usize_from_u32(id.0)] = Some(new_entry);
        self.wa.commits += 1;
        Ok(())
    }

    /// [`Ufs::fsync`] for every file with staged changes, in slot order.
    pub fn sync_all(&mut self) -> Result<(), SimError> {
        let dirty: Vec<u32> = self.staged.keys().copied().collect();
        for slot in dirty {
            self.fsync(FileId(slot))?;
        }
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<FileId> {
        self.table
            .iter()
            .position(|e| e.as_ref().is_some_and(|e| e.name == name))
            .map(|slot| FileId(u32_from(u64_from_usize(slot))))
    }

    fn entry(&self, id: FileId) -> Result<&FileEntry, SimError> {
        self.table
            .get(usize_from_u32(id.0))
            .and_then(|e| e.as_ref())
            .ok_or_else(|| {
                SimError::invalid_config("ufs.file", format!("no file in slot {}", id.0))
            })
    }

    /// Durable (on-device) content of the file, ignoring staged state.
    fn read_all_durable(&mut self, id: FileId) -> Result<Vec<u8>, SimError> {
        // Hot-path audit (`hotpath_alloc`, allowlisted): metadata-small
        // clone releasing the table borrow for the device reads.
        let entry = self.entry(id)?.clone();
        self.read_extents(&entry)
    }

    fn read_extents(&mut self, entry: &FileEntry) -> Result<Vec<u8>, SimError> {
        // Hot-path audit (`hotpath_alloc`, allowlisted): one
        // content-sized buffer filled sector by sector in place — the
        // owned return is the API (the caller keeps or stages it); the
        // per-sector images are not materialised separately.
        let mut content = vec![0u8; usize_from(entry.size)];
        self.read_extents_into(entry, &mut content)?;
        Ok(content)
    }

    /// Reads every sector of every extent, in order, into `out`
    /// (`out.len()` must equal the entry's byte size). Tail sectors past
    /// the file size are still read whole — the logged request stream is
    /// exactly [`Ufs::read_extents`]'s — but only the in-bounds prefix
    /// lands in `out`.
    fn read_extents_into(&mut self, entry: &FileEntry, out: &mut [u8]) -> Result<(), SimError> {
        let mut at = 0usize;
        let mut image = [0u8; SECTOR_USIZE];
        for ext in &entry.extents {
            for s in 0..ext.len {
                let take = SECTOR_USIZE.min(out.len() - at);
                if take == SECTOR_USIZE {
                    self.dev
                        .read_sector(ext.start + s, &mut out[at..at + SECTOR_USIZE])?;
                } else {
                    self.dev.read_sector(ext.start + s, &mut image)?;
                    out[at..at + take].copy_from_slice(&image[..take]);
                }
                self.log_io(HostRequest::read(
                    sector_offset(ext.start + s),
                    u64_from_usize(SECTOR_USIZE),
                ));
                at += take;
            }
        }
        Ok(())
    }

    /// Appends one journal record at the ring slot of its sequence number.
    fn append_record(&mut self, kind: RecordKind, tid: u64) -> Result<(), SimError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let rec = JournalRecord { seq, tid, kind };
        let lba = self.sb.journal_start + ring_slot(seq, self.sb.journal_sectors);
        self.wa.journal_bytes += u64_from_usize(SECTOR_USIZE);
        let mut image = [0u8; SECTOR_USIZE];
        rec.encode_into(&mut image);
        self.write_meta(lba, &image)
    }

    /// A metadata write: journal records, file-table applies and the
    /// superblock all carry the sync barrier at the device.
    fn write_meta(&mut self, lba: u64, image: &[u8]) -> Result<(), SimError> {
        self.dev.write_sector(lba, image)?;
        self.log_io(
            HostRequest::write(sector_offset(lba), u64_from_usize(SECTOR_USIZE)).synchronous(),
        );
        Ok(())
    }

    /// A data write: plain asynchronous sector write.
    fn write_data(&mut self, lba: u64, image: &[u8]) -> Result<(), SimError> {
        self.wa.cow_bytes += u64_from_usize(SECTOR_USIZE);
        self.dev.write_sector(lba, image)?;
        self.log_io(HostRequest::write(
            sector_offset(lba),
            u64_from_usize(SECTOR_USIZE),
        ));
        Ok(())
    }

    /// Records one sector request, merging physically contiguous
    /// asynchronous requests of the same kind — sequential extents
    /// surface as the large requests the paper's UFS is built to
    /// preserve. Sync requests never merge: each metadata write is its
    /// own ordering barrier (journal records are contiguous in the ring
    /// but must reach the device as separate ordered writes).
    fn log_io(&mut self, req: HostRequest) {
        if !self.logging {
            return;
        }
        if !req.sync {
            if let Some(last) = self.log.last_mut() {
                if !last.sync && last.op == req.op && last.end() == req.offset {
                    last.len += req.len;
                    return;
                }
            }
        }
        self.log.push(req);
    }
}

fn read_past_eof(end: u64, size: u64) -> SimError {
    SimError::invalid_config("ufs.read", format!("read to byte {end} but size is {size}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssd::SimBlockDevice;

    fn fresh() -> Ufs<SimBlockDevice> {
        Ufs::format(SimBlockDevice::new(1024), UfsParams::default()).expect("formats")
    }

    fn pattern(len: usize, salt: u8) -> Vec<u8> {
        (0..len).map(|i| (i % 251) as u8 ^ salt).collect()
    }

    #[test]
    fn format_mount_round_trip_is_clean() {
        let fs = fresh();
        let dev = fs.into_device();
        let (fs, report) = Ufs::mount(dev).expect("mounts");
        assert!(report.is_clean());
        assert_eq!(report.last_checkpoint_tid, 0);
        assert!(fs.file_names().is_empty());
    }

    #[test]
    fn write_fsync_read_round_trip_survives_remount() {
        let mut fs = fresh();
        let id = fs.create("panel-0").expect("creates");
        let data = pattern(10_000, 7);
        fs.write(id, 0, &data).expect("writes");
        fs.fsync(id).expect("syncs");
        let (mut fs, report) = Ufs::mount(fs.into_device()).expect("mounts");
        assert!(report.is_clean(), "clean shutdown replays nothing");
        let id = fs.open("panel-0").expect("opens");
        assert_eq!(fs.size(id).expect("sized"), 10_000);
        let mut back = vec![0u8; 10_000];
        fs.read(id, 0, &mut back).expect("reads");
        assert_eq!(back, data);
    }

    #[test]
    fn unsynced_writes_are_invisible_after_remount() {
        let mut fs = fresh();
        let id = fs.create("a").expect("creates");
        fs.write(id, 0, &pattern(5000, 1)).expect("writes");
        fs.fsync(id).expect("syncs");
        // Overwrite and create more, but never sync.
        fs.write(id, 0, &pattern(5000, 2)).expect("writes");
        let b = fs.create("b").expect("creates");
        fs.write(b, 0, &[1, 2, 3]).expect("writes");
        let (mut fs, _) = Ufs::mount(fs.into_device()).expect("mounts");
        assert_eq!(fs.file_names(), vec!["a".to_string()]);
        let id = fs.open("a").expect("opens");
        let mut back = vec![0u8; 5000];
        fs.read(id, 0, &mut back).expect("reads");
        assert_eq!(back, pattern(5000, 1), "committed content, not staged");
    }

    #[test]
    fn overwrites_are_copy_on_write_and_space_is_recycled() {
        let mut fs = fresh();
        let id = fs.create("f").expect("creates");
        let free0 = fs.free_sectors();
        for round in 0..20u8 {
            fs.write(id, 0, &pattern(8192, round)).expect("writes");
            fs.fsync(id).expect("syncs");
            assert_eq!(fs.free_sectors(), free0 - 2, "old extents recycled");
        }
    }

    #[test]
    fn create_rejects_duplicates_and_bad_names() {
        let mut fs = fresh();
        fs.create("x").expect("creates");
        assert!(fs.create("x").is_err());
        assert!(fs.create("").is_err());
        assert!(fs.create(&"n".repeat(MAX_NAME + 1)).is_err());
        assert!(fs.open("missing").is_err());
    }

    #[test]
    fn read_past_eof_is_a_typed_error() {
        let mut fs = fresh();
        let id = fs.create("f").expect("creates");
        fs.write(id, 0, &[9; 100]).expect("writes");
        fs.fsync(id).expect("syncs");
        let mut out = vec![0u8; 101];
        assert!(matches!(
            fs.read(id, 0, &mut out),
            Err(SimError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn request_log_merges_sequential_data_writes() {
        let mut fs = fresh();
        fs.enable_request_log();
        let id = fs.create("big").expect("creates");
        fs.write(id, 0, &pattern(16 * SECTOR_USIZE, 3))
            .expect("writes");
        fs.fsync(id).expect("syncs");
        let log = fs.take_request_log();
        let data: Vec<&HostRequest> = log.iter().filter(|r| !r.sync).collect();
        // 16 sequential data sectors merged into one 64 KiB request.
        assert_eq!(data.len(), 1);
        assert_eq!(data[0].len, u64_from_usize(16 * SECTOR_USIZE));
        // Journal (begin/update/commit), apply and checkpoint are sync.
        let syncs = log.iter().filter(|r| r.sync).count();
        assert_eq!(syncs, 5);
    }

    #[test]
    fn fsync_without_changes_writes_nothing() {
        let mut fs = fresh();
        let id = fs.create("f").expect("creates");
        fs.write(id, 0, &[1; 10]).expect("writes");
        fs.fsync(id).expect("syncs");
        let before = fs.dev.writes_persisted();
        fs.fsync(id).expect("no-op");
        assert_eq!(fs.dev.writes_persisted(), before);
    }

    #[test]
    fn sync_all_commits_every_dirty_file() {
        let mut fs = fresh();
        for i in 0..5u8 {
            let id = fs.create(&format!("f{i}")).expect("creates");
            fs.write(id, 0, &pattern(3000, i)).expect("writes");
        }
        fs.sync_all().expect("syncs");
        let (fs, report) = Ufs::mount(fs.into_device()).expect("mounts");
        assert!(report.is_clean());
        assert_eq!(fs.file_names().len(), 5);
    }

    #[test]
    fn write_amp_counters_decompose_the_device_traffic() {
        let mut fs = fresh();
        let id = fs.create("f").expect("creates");
        fs.write(id, 0, &pattern(4 * SECTOR_USIZE, 1)).expect("w");
        fs.fsync(id).expect("syncs");
        let wa = fs.write_amp();
        let sector = u64_from_usize(SECTOR_USIZE);
        assert_eq!(wa.user_bytes, 4 * sector);
        assert_eq!(wa.cow_bytes, 4 * sector, "COW rewrites the content");
        // Begin + Update + Commit + Checkpoint records.
        assert_eq!(wa.journal_bytes, 4 * sector);
        // Superblock at format + one table apply.
        assert_eq!(wa.apply_bytes, 2 * sector);
        assert_eq!(wa.commits, 1);
        assert_eq!(wa.recovery_replays, 0);
        assert_eq!(wa.device_bytes(), (4 + 4 + 2) * sector);
        // Overwrite one sector: the whole 4-sector file is COWed again,
        // so amplification grows — exactly what the study quantifies.
        fs.write(id, 0, &pattern(SECTOR_USIZE, 2)).expect("w");
        fs.fsync(id).expect("syncs");
        let wa2 = fs.write_amp();
        assert_eq!(wa2.user_bytes, 5 * sector);
        assert_eq!(wa2.cow_bytes, 8 * sector);
        assert!(wa2.device_per_user_permille() > 1000, "amplified");
    }

    #[test]
    fn mount_rejects_a_foreign_image() {
        let dev = SimBlockDevice::new(64);
        assert!(matches!(Ufs::mount(dev), Err(SimError::Corruption { .. })));
    }
}
