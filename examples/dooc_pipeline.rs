//! The DOoC / DataCutter middleware in action (§2.1): panels of the
//! out-of-core Hamiltonian flow through a filter pipeline while a
//! prefetcher warms the data pool and a data-aware scheduler orders the
//! per-panel tasks.
//!
//! Run with:
//! ```text
//! cargo run --release --example dooc_pipeline
//! ```

use bytes_of_panels::summarise;
use oocnvm::ooc::dooc::{DataPool, Filter, Pipeline, Prefetcher, TaskGraph};
use oocnvm::ooc::{HamiltonianSpec, OocMatrix};
use oocnvm::ooctrace::TraceCapture;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

mod bytes_of_panels {
    /// Sums the f64 payload of a serialised panel (a stand-in "filter
    /// computation" with a checkable answer).
    pub fn summarise(bytes: &[u8]) -> f64 {
        // Panels end with 8-byte-aligned f64 values; just checksum all
        // aligned words — deterministic and order-independent.
        bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()).abs().min(1e3))
            .sum()
    }
}

fn main() {
    // The dataset: an out-of-core Hamiltonian split into panels.
    let h = HamiltonianSpec::medium(3_000).generate();
    let ooc = OocMatrix::build(&h, 200, 0, None);
    let n_panels = ooc.panels.len();
    println!("dataset: {n_panels} panels, {} KiB", ooc.bytes() >> 10);

    // 1. The DOoC data-storage layer: an immutable pool sized at half the
    //    dataset, fed by four prefetch workers.
    let pool = Arc::new(DataPool::new(ooc.bytes() / 2));
    let prefetcher = Prefetcher::new(Arc::clone(&pool), 4);
    let capture = Arc::new(TraceCapture::new());
    for idx in 0..n_panels {
        let ooc = ooc.clone();
        let cap = Arc::clone(&capture);
        prefetcher.prefetch(&format!("panel/{idx}"), move || {
            let p = ooc.read_panel(idx, &*cap);
            // Store the values back as bytes (the pool holds raw arrays).
            p.values.iter().flat_map(|v| v.to_le_bytes()).collect()
        });
    }
    prefetcher
        .shutdown()
        .expect("all panel loaders must succeed");
    println!(
        "pool after prefetch: {} KiB resident, {} evictions (budget {} KiB)",
        pool.used() >> 10,
        pool.stats.evictions.load(Ordering::Relaxed),
        pool.capacity() >> 10
    );

    // 2. The data-aware scheduler: one task per panel, preferring panels
    //    already resident, plus a final reduction task.
    let total = Arc::new(AtomicU64::new(0));
    let mut graph = TaskGraph::with_pool(Arc::clone(&pool));
    let mut panel_tasks = Vec::new();
    for idx in 0..n_panels {
        let key = format!("panel/{idx}");
        let name = key.clone();
        let pool = Arc::clone(&pool);
        let total = Arc::clone(&total);
        let ooc = ooc.clone();
        let cap = Arc::clone(&capture);
        let id = graph.add_task_with_inputs(&name, &[], &[&name.clone()], move || {
            let data = pool.get_or_load(&key, || {
                let p = ooc.read_panel(idx, &*cap);
                p.values.iter().flat_map(|v| v.to_le_bytes()).collect()
            });
            let s = summarise(&data);
            total.fetch_add(s as u64, Ordering::Relaxed);
        });
        panel_tasks.push(id);
    }
    let done = Arc::new(AtomicU64::new(0));
    let done2 = Arc::clone(&done);
    graph.add_task("reduce", &panel_tasks, move || {
        done2.store(1, Ordering::Relaxed);
    });
    let order = graph.execute(4).expect("no task may panic");
    println!(
        "scheduler ran {} tasks on 4 workers; pool hit ratio {:.0}%",
        order.len(),
        pool.stats.hit_ratio() * 100.0
    );
    assert_eq!(done.load(Ordering::Relaxed), 1);

    // 3. A DataCutter-style filter/stream pipeline over the same panels:
    //    producer -> checksum filter -> threshold filter.
    struct Checksum;
    impl Filter for Checksum {
        fn process(&mut self, chunk: bytes::Bytes, emit: &mut dyn FnMut(bytes::Bytes)) {
            let s = summarise(&chunk);
            emit(bytes::Bytes::from(s.to_le_bytes().to_vec()));
        }
    }
    struct Threshold(f64);
    impl Filter for Threshold {
        fn process(&mut self, chunk: bytes::Bytes, emit: &mut dyn FnMut(bytes::Bytes)) {
            let v = f64::from_le_bytes(chunk[..8].try_into().unwrap());
            if v > self.0 {
                emit(chunk);
            }
        }
    }
    let source: Vec<bytes::Bytes> = (0..n_panels)
        .map(|idx| {
            let data = pool
                .get(&format!("panel/{idx}"))
                .map(|a| a.to_vec())
                .unwrap_or_else(|| {
                    let p = ooc.read_panel(idx, &*capture);
                    p.values.iter().flat_map(|v| v.to_le_bytes()).collect()
                });
            bytes::Bytes::from(data)
        })
        .collect();
    let heavy = Pipeline::new()
        .then(Checksum)
        .then(Threshold(1.0))
        .run(source)
        .expect("no filter may panic");
    println!(
        "pipeline: {} of {} panels pass the weight threshold",
        heavy.len(),
        n_panels
    );
    println!("I/O trace captured along the way: {} reads", capture.len());
}
