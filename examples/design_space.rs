//! Design-space exploration: the full Table-2 sweep plus a custom
//! what-if configuration, demonstrating how to compose your own
//! architecture from the library's pieces.
//!
//! Run with:
//! ```text
//! cargo run --release --example design_space
//! ```

use oocnvm::core::config::{Controller, Location, SystemConfig};
use oocnvm::core::experiment::run_batch;
use oocnvm::core::format::Table;
use oocnvm::interconnect::{NvmBusSpeed, PcieGen};
use oocnvm::oocfs::FsKind;
use oocnvm::prelude::*;

fn main() {
    let trace = synthetic_ooc_trace(128 * MIB, 6 * MIB, 42);

    // The thirteen configurations the paper evaluates...
    let mut configs = SystemConfig::table2();
    // ...plus a what-if the paper never ran: a native PCIe 3.0 x4 UFS
    // device on the ONFi-3 bus (a cheap "boot-drive" variant).
    configs.push(SystemConfig {
        label: "CNL-NATIVE-4",
        location: Location::ComputeLocal,
        fs: FsKind::Ufs,
        controller: Controller::Native,
        pcie_gen: PcieGen::Gen3,
        lanes: 4,
        bus: NvmBusSpeed::Sdr400,
    });

    let specs = configs
        .iter()
        .flat_map(|c| NvmKind::ALL.iter().map(|&k| ExperimentSpec::new(c, k)))
        .collect();
    let reports = run_batch(specs, &trace);
    let mut table = Table::new(["config", "TLC", "MLC", "SLC", "PCM", "PAL4 %", "rem (TLC)"]);
    for c in &configs {
        let get = |k| {
            oocnvm::core::experiment::find(&reports, c.label, k).expect("sweep covers all pairs")
        };
        table.row([
            c.label.to_string(),
            format!("{:.0}", get(NvmKind::Tlc).bandwidth_mb_s),
            format!("{:.0}", get(NvmKind::Mlc).bandwidth_mb_s),
            format!("{:.0}", get(NvmKind::Slc).bandwidth_mb_s),
            format!("{:.0}", get(NvmKind::Pcm).bandwidth_mb_s),
            format!("{:.0}", get(NvmKind::Tlc).pal_pct[3]),
            format!("{:.0}", get(NvmKind::Tlc).remaining_mb_s),
        ]);
    }
    println!("bandwidth (MB/s) across the design space:\n");
    print!("{}", table.render());

    // The cheap variant's verdict.
    let n4 = oocnvm::core::experiment::find(&reports, "CNL-NATIVE-4", NvmKind::Tlc).unwrap();
    let ufs = oocnvm::core::experiment::find(&reports, "CNL-UFS", NvmKind::Tlc).unwrap();
    println!(
        "\nwhat-if: a native PCIe3 x4 device ({:.0} MB/s) vs the bridged x8 baseline ({:.0} MB/s):",
        n4.bandwidth_mb_s, ufs.bandwidth_mb_s
    );
    println!("the ONFi-3 media bus, not the link, is the binding constraint for both —");
    println!("exactly the paper's point that lane counts alone cannot fix the stack (§4.4).");
}
