//! Quickstart: simulate the paper's compute-local UFS configuration
//! against a synthetic out-of-core read workload and print the numbers
//! every figure in the paper is built from.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use oocnvm::prelude::*;

fn main() {
    // 1. A read-dominant out-of-core workload: 256 MiB of 6 MiB panel
    //    reads, the shape the LOBPCG eigensolver emits (§3.1).
    let trace = synthetic_ooc_trace(256 * MIB, 6 * MIB, 42);
    println!(
        "workload: {} POSIX records, {} MiB, {:.0}% reads",
        trace.len(),
        trace.total_bytes() >> 20,
        trace.read_fraction() * 100.0
    );

    // 2. Two of the paper's Table-2 configurations.
    let ion = SystemConfig::ion_gpfs();
    let cnl = SystemConfig::cnl_ufs();

    // 3. Run both on TLC NAND and compare.
    for config in [&ion, &cnl] {
        let report = ExperimentSpec::new(config, NvmKind::Tlc).run(&trace);
        println!(
            "\n{:<14} {:>8.1} MB/s  (makespan {:.1} ms)",
            report.label,
            report.bandwidth_mb_s,
            report.run.makespan as f64 / 1e6
        );
        println!(
            "    channel util {:>5.1}%   package util {:>5.1}%   PAL4 {:>5.1}%",
            report.channel_util * 100.0,
            report.package_util * 100.0,
            report.pal_pct[3]
        );
        let b = report.breakdown_pct;
        println!(
            "    time: dma {:.1}%  flash-bus {:.1}%  channel {:.1}%  cell-cont {:.1}%  chan-cont {:.1}%  cell {:.1}%",
            b[0], b[1], b[2], b[3], b[4], b[5]
        );
    }

    let ion_bw = ExperimentSpec::new(&ion, NvmKind::Tlc)
        .run(&trace)
        .bandwidth_mb_s;
    let cnl_bw = ExperimentSpec::new(&cnl, NvmKind::Tlc)
        .run(&trace)
        .bandwidth_mb_s;
    println!(
        "\nmigrating the SSD from the I/O node to the compute node: x{:.1}",
        cnl_bw / ion_bw
    );
}
