//! Checkpointing on compute-local NVM (extension; the paper's related
//! work [33] uses NVM as a write-back checkpoint target).
//!
//! Interleaves the OoC read sweep with periodic checkpoint bursts and
//! shows how the write path (program latencies, erase-before-write, wear)
//! behaves across media and translation modes.
//!
//! Run with:
//! ```text
//! cargo run --release --example checkpointing
//! ```

use oocnvm::core::format::Table;
use oocnvm::core::workload::checkpoint_trace;
use oocnvm::oocfs::FsKind;
use oocnvm::prelude::*;

fn main() {
    // 192 MiB of reads with an 8 MiB checkpoint every 32 MiB.
    let trace = checkpoint_trace(192 * MIB, 32 * MIB, 8 * MIB, 4 * MIB, 17);
    println!(
        "workload: {} records, {} MiB total, {:.0}% reads\n",
        trace.len(),
        trace.total_bytes() >> 20,
        trace.read_fraction() * 100.0
    );

    let mut table = Table::new([
        "medium",
        "UFS MB/s",
        "ext4 MB/s",
        "erases (ext4)",
        "ckpt energy mJ",
    ]);
    for kind in NvmKind::ALL {
        let ufs = ExperimentSpec::new(&SystemConfig::cnl_ufs(), kind).run(&trace);
        let ext4 = ExperimentSpec::new(&SystemConfig::cnl(FsKind::Ext4), kind).run(&trace);
        table.row([
            kind.label().to_string(),
            format!("{:.0}", ufs.bandwidth_mb_s),
            format!("{:.0}", ext4.bandwidth_mb_s),
            format!("{}", ext4.run.wear.erases),
            format!(
                "{:.1}",
                ext4.run.energy.program_mj + ext4.run.energy.erase_mj
            ),
        ]);
    }
    print!("{}", table.render());

    // The asymmetric-program-latency story.
    let slc = ExperimentSpec::new(&SystemConfig::cnl_ufs(), NvmKind::Slc).run(&trace);
    let tlc = ExperimentSpec::new(&SystemConfig::cnl_ufs(), NvmKind::Tlc).run(&trace);
    println!(
        "\nTLC checkpoints cost {:.1}x SLC's wall clock for the same workload —\n\
         MSB pages program at 6 ms vs SLC's uniform 250 us (Table 1), which is\n\
         why write-heavy layers belong on SLC or PCM while the read-dominant\n\
         Hamiltonian lives happily on dense TLC.",
        slc.bandwidth_mb_s / tlc.bandwidth_mb_s
    );
    let pcm = ExperimentSpec::new(&SystemConfig::cnl_ufs(), NvmKind::Pcm).run(&trace);
    println!(
        "PCM sustains {:.0} MB/s — its 35 us writes on 64-byte pages make it no\n\
         write-bandwidth champion (Table 1), but each checkpoint costs an order\n\
         of magnitude less energy and no millisecond erase stalls, matching\n\
         §2.3's judgement that PCM endurance suits it to read-intensive OoC\n\
         duty with occasional writes.",
        pcm.bandwidth_mb_s
    );
}
