//! The paper's whole pipeline, end to end:
//!
//! 1. generate a synthetic nuclear-CI Hamiltonian (the `H` of §2.1),
//! 2. serialise it into an out-of-core panel store,
//! 3. run the LOBPCG block eigensolver against the store, capturing the
//!    POSIX-level I/O trace of every `H * Ψ` sweep,
//! 4. replay that trace through three storage architectures and report
//!    what the eigensolver's I/O phase would cost on each.
//!
//! Run with:
//! ```text
//! cargo run --release --example ooc_eigensolver
//! ```

use oocnvm::ooc::lobpcg::{Lobpcg, LobpcgOptions, TracedOperator};
use oocnvm::ooc::{HamiltonianSpec, OocMatrix};
use oocnvm::ooctrace::TraceCapture;
use oocnvm::prelude::*;

fn main() {
    // 1. The Hamiltonian. (The paper's H has ~10^9 rows; we scale the
    //    dimension down but keep the structure — banded plus scattered
    //    two-body couplings, symmetric, diagonally dominant.)
    let spec = HamiltonianSpec::medium(6_000);
    let h = spec.generate();
    println!(
        "H: n={} nnz={} ({:.1} nnz/row), symmetric: {}",
        h.n,
        h.nnz(),
        h.nnz() as f64 / h.n as f64,
        h.is_symmetric(1e-12)
    );

    // 2. Out-of-core store: row panels on the (simulated) device.
    let diag: Vec<f64> = (0..h.n).map(|i| h.get(i, i)).collect();
    let ooc = OocMatrix::build(&h, 250, 0, None);
    println!(
        "store: {} panels, {:.1} MiB serialised",
        ooc.panels.len(),
        ooc.bytes() as f64 / (1 << 20) as f64
    );

    // 3. LOBPCG with trace capture: every operator application streams the
    //    full store.
    let capture = TraceCapture::new();
    let operator = TracedOperator::new(&ooc, &capture).with_diagonal(diag);
    let solver = Lobpcg::new(LobpcgOptions {
        block_size: 8,
        max_iters: 30,
        tol: 1e-6,
        seed: 13,
        precondition: true,
    });
    let result = solver.solve(&operator);
    println!(
        "\nLOBPCG: {} iterations, {} operator applications, converged: {}",
        result.iterations, result.operator_applies, result.converged
    );
    println!(
        "lowest Ritz values: {:?}",
        &result.eigenvalues[..4.min(result.eigenvalues.len())]
    );

    let posix = capture.into_trace();
    println!(
        "captured I/O: {} records, {} MiB, {:.0}% reads",
        posix.len(),
        posix.total_bytes() >> 20,
        posix.read_fraction() * 100.0
    );

    // 4. What would this I/O cost on each architecture?
    println!("\n{:<16} {:>10} {:>12}", "architecture", "MB/s", "I/O time");
    let mut ufs_ms = 0.0;
    let mut ion_ms = 0.0;
    for config in [
        SystemConfig::ion_gpfs(),
        SystemConfig::cnl_ufs(),
        SystemConfig::cnl_native16(),
    ] {
        let report = ExperimentSpec::new(&config, NvmKind::Tlc).run(&posix);
        let ms = report.run.makespan as f64 / 1e6;
        println!(
            "{:<16} {:>10.0} {:>9.1} ms",
            report.label, report.bandwidth_mb_s, ms
        );
        if report.label == "CNL-UFS" {
            ufs_ms = ms;
        }
        if report.label == "ION-GPFS" {
            ion_ms = ms;
        }
    }
    println!(
        "\nper-iteration I/O saved by going compute-local with UFS: {:.1} ms ({:.1}x)",
        (ion_ms - ufs_ms) / result.operator_applies as f64,
        ion_ms / ufs_ms
    );
}
