//! Offline shim for `parking_lot`, backed by `std::sync`.
//!
//! The build environment has no registry access, so the workspace vendors
//! the *exact* API surface it uses (`Mutex`, `RwLock`, `Condvar`) as thin
//! wrappers over the std primitives. Semantics differ from the real crate
//! in one deliberate way: a poisoned std lock is recovered with
//! [`std::sync::PoisonError::into_inner`], matching parking_lot's
//! poison-free behaviour.

use std::fmt;
use std::time::Duration;

/// Mutual exclusion primitive with parking_lot's panic-free `lock()` API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
///
/// Holds the std guard in an `Option` so [`Condvar::wait`] can move it out
/// by value and put the re-acquired guard back without `unsafe`.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, recovering from poison (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => MutexGuard(Some(g)),
            Err(poisoned) => MutexGuard(Some(poisoned.into_inner())),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0
            .as_deref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0
            .as_deref_mut()
            .expect("guard present outside Condvar::wait")
    }
}

/// Reader-writer lock with parking_lot's panic-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, recovering from poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => RwLockReadGuard(g),
            Err(poisoned) => RwLockReadGuard(poisoned.into_inner()),
        }
    }

    /// Acquires exclusive write access, recovering from poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => RwLockWriteGuard(g),
            Err(poisoned) => RwLockWriteGuard(poisoned.into_inner()),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Condition variable compatible with [`Mutex`]/[`MutexGuard`].
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

/// Result of a timed wait on a [`Condvar`].
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified, atomically releasing the guard's mutex.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present outside Condvar::wait");
        let inner = match self.0.wait(inner) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.0 = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present outside Condvar::wait");
        let (inner, timed_out) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, res)) => (g, res.timed_out()),
            Err(poisoned) => {
                let (g, res) = poisoned.into_inner();
                (g, res.timed_out())
            }
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(timed_out)
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every blocked waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        assert!(*done);
        h.join().expect("signaller thread");
    }
}
