//! Offline shim for `proptest`: a miniature property-testing framework
//! with the API surface this workspace uses.
//!
//! Differences from the real crate, chosen deliberately for an offline
//! std-only build:
//!
//! * **No shrinking.** A failing case reports the case number and panics;
//!   re-running is deterministic (seeds derive from the test's module
//!   path), so the failure reproduces exactly.
//! * **`prop_assert!` panics** instead of returning `TestCaseError`,
//!   which makes it equivalent to `assert!` under this runner.
//! * Strategies are simple samplers: `fn sample(&self, &mut TestRng)`.
//!
//! The grammar accepted by [`proptest!`] matches the subset the
//! workspace's property tests use: an optional
//! `#![proptest_config(...)]` header followed by `#[test] fn name(arg in
//! strategy, ...) { body }` items.

pub mod strategy;
pub mod test_runner;

/// `prop::collection`, `prop::option`, `prop::bool` — the combinator
/// namespaces the tests reach through `prop::...`.
pub mod prop {
    pub mod collection {
        pub use crate::strategy::vec;
    }
    pub mod option {
        pub use crate::strategy::of;
    }
    pub mod bool {
        pub use crate::strategy::AnyBool;
        /// Uniform `bool` strategy.
        pub const ANY: AnyBool = AnyBool;
    }
    pub mod num {
        /// Full-range numeric strategies (`prop::num::u64::ANY`, ...).
        pub mod u64 {
            /// Uniform `u64` strategy.
            pub const ANY: std::ops::RangeInclusive<u64> = 0..=u64::MAX;
        }
        pub mod u32 {
            /// Uniform `u32` strategy.
            pub const ANY: std::ops::RangeInclusive<u32> = 0..=u32::MAX;
        }
    }
}

/// What `use proptest::prelude::*` brings into scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines deterministic property tests over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config $cfg; $($rest)*);
    };
    (@with_config $cfg:expr; $(
        $(#[$attr:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    let run = || {
                        $(let $arg =
                            $crate::strategy::Strategy::sample(&$strat, &mut rng);)*
                        $body
                    };
                    // Label which sampled case failed before propagating.
                    $crate::test_runner::with_case_label(stringify!($name), case, run);
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config $crate::test_runner::ProptestConfig::default(); $($rest)*
        );
    };
}

/// Chooses uniformly between several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}

/// Asserts a property; equivalent to `assert!` under this runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality; equivalent to `assert_eq!` under this runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Asserts inequality; equivalent to `assert_ne!` under this runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u64, u64)> {
        (0u64..100, 1u64..100)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u64..10, y in 0u32..=3, f in -1.0..1.0f64) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(y <= 3);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size_range(v in prop::collection::vec(0u8..=255, 3..7)) {
            prop_assert!((3..7).contains(&v.len()), "len = {}", v.len());
        }

        #[test]
        fn map_and_oneof_compose(
            v in prop_oneof![Just(1u32), Just(2), Just(3)],
            s in arb_pair().prop_map(|(a, b)| a + b),
        ) {
            prop_assert!((1..=3).contains(&v));
            prop_assert!(s < 199);
        }

        #[test]
        fn options_hit_both_arms(opts in prop::collection::vec(prop::option::of(0u8..10), 32)) {
            // With 32 draws at p(Some) = 0.5 both variants virtually
            // always appear; the seed is fixed, so this is stable.
            prop_assert!(opts.iter().any(|o| o.is_some()));
            prop_assert!(opts.iter().any(|o| o.is_none()));
        }

        #[test]
        fn bools_vary(bits in prop::collection::vec(prop::bool::ANY, 64)) {
            prop_assert!(bits.iter().any(|&b| b));
            prop_assert!(bits.iter().any(|&b| !b));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        let mut a = TestRng::from_name("same::name");
        let mut b = TestRng::from_name("same::name");
        let strat = (0u64..1_000_000, 0u64..1_000_000);
        for _ in 0..64 {
            assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        }
    }
}
