//! Deterministic test-running support: the RNG and per-test config.

/// Per-`proptest!` configuration (the `cases` knob is the only one the
/// workspace uses; others are accepted and ignored).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` sampled cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// SplitMix64-based deterministic RNG for sampling test inputs.
///
/// Seeds derive from the owning test's name, so every run of the suite
/// samples identical inputs — failures always reproduce.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Seeds from a raw u64.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)` with 53-bit resolution.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runs one sampled case, decorating any panic with the case number so
/// failures are attributable without shrinking.
pub fn with_case_label<R>(test: &str, case: u32, run: impl FnOnce() -> R) -> R {
    struct CaseGuard<'a> {
        test: &'a str,
        case: u32,
        armed: bool,
    }
    impl Drop for CaseGuard<'_> {
        fn drop(&mut self) {
            if self.armed && std::thread::panicking() {
                eprintln!(
                    "proptest shim: property `{}` failed on sampled case #{}",
                    self.test, self.case
                );
            }
        }
    }
    let mut guard = CaseGuard {
        test,
        case,
        armed: true,
    };
    let out = run();
    guard.armed = false;
    let _ = &guard;
    out
}
