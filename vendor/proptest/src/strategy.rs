//! Sampling strategies: the value-generation half of the proptest shim.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of values for property tests.
///
/// Object-safe: combinators that need `Sized` carry the bound on the
/// method so `Box<dyn Strategy>` (see [`BoxedStrategy`]) works.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every sampled value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only sampled values satisfying `pred`, re-drawing otherwise.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erases the strategy for heterogeneous unions.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Strategies behind `&` still sample.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample(rng)
    }
}

/// Strategy yielding a fixed value (proptest's `Just`).
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy produced by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        // Bounded retries: a filter that rejects everything is a test bug
        // and should fail loudly, not loop forever.
        for _ in 0..1_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive samples: {}",
            self.whence
        );
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union of the given alternatives; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

/// Uniform `bool` strategy (`prop::bool::ANY`).
#[derive(Clone, Copy, Debug)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Collection length specification accepted by [`vec`].
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`
/// (`prop::collection::vec`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Strategy for `Option<S::Value>`, `Some` half the time
/// (`prop::option::of`).
pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
    OptionStrategy { element }
}

/// Strategy returned by [`of`].
pub struct OptionStrategy<S> {
    element: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_u64() & 1 == 1 {
            Some(self.element.sample(rng))
        } else {
            None
        }
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
