//! Offline shim for `rayon`: parallel iterators degrade to sequential
//! std iterators.
//!
//! The workspace only uses `into_par_iter().map(...).collect()` chains on
//! ranges and vectors, so a blanket adapter that returns the ordinary
//! sequential iterator is API-compatible. This is also a determinism win:
//! with the shim, "parallel" reductions are bit-exact and orderings are
//! reproducible, which the simulator's regression tests rely on. Swap the
//! real rayon back in (same API) when registry access is available and
//! throughput matters more than offline builds.

/// The traits user code imports via `use rayon::prelude::*`.
pub mod prelude {
    /// Sequential stand-in for rayon's `IntoParallelIterator`.
    pub trait IntoParallelIterator {
        /// The element type.
        type Item;
        /// The "parallel" (here: sequential) iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Converts `self` into an iterator; sequential in this shim.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Sequential stand-in for rayon's `ParallelSlice`.
    pub trait ParallelSlice<T> {
        /// Iterates over chunks of at most `n` elements.
        fn par_chunks(&self, n: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, n: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(n)
        }
    }

    /// Sequential stand-in for rayon's `ParallelSliceMut`.
    pub trait ParallelSliceMut<T> {
        /// Iterates over mutable chunks of at most `n` elements.
        fn par_chunks_mut(&mut self, n: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, n: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(n)
        }
    }
}

/// Runs two closures "in parallel" (sequentially here), returning both
/// results — rayon's `join` signature.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_into_par_iter_collects_in_order() {
        let v: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn vec_into_par_iter_sums() {
        let s: u64 = vec![1u64, 2, 3].into_par_iter().sum();
        assert_eq!(s, 6);
    }

    #[test]
    fn join_returns_both() {
        assert_eq!(super::join(|| 1, || "x"), (1, "x"));
    }
}
