//! Offline stand-in for `rayon`: a real, std-only work-sharing thread
//! pool behind rayon's `par_iter`/`map`/`collect` surface.
//!
//! The workspace uses `into_par_iter().map(...).collect()` chains on
//! ranges and vectors (the experiment sweep, SpMM row loops, Gram
//! products). Earlier revisions degraded those to sequential iterators;
//! this version actually fans the work out while keeping the simulator's
//! determinism contract intact:
//!
//! * **Input-order results.** Items are split into contiguous chunks;
//!   workers claim chunks through one atomic counter and write each
//!   chunk's results back into its own slot, so `collect()` returns
//!   exactly the sequential order and `sum()` folds in input order.
//!   Any pure pipeline is therefore *byte-identical* at every thread
//!   count (pinned by `tests/determinism.rs`).
//! * **Scoped workers.** Each parallel region spawns `std::thread::scope`
//!   workers for its own duration — no global pool, no state shared
//!   between regions, nothing outliving the borrowed inputs.
//! * **`RAYON_NUM_THREADS`.** Like real rayon, the thread count can be
//!   overridden (`0`/unset → `available_parallelism`); `1` runs inline
//!   with zero spawns. The variable is re-read per region so tests can
//!   pin different counts in one process.
//! * **Panic propagation.** A panicking closure poisons the region (the
//!   other workers stop claiming chunks) and the panic resurfaces on the
//!   calling thread via the scope join, exactly like rayon.
//! * **No nested oversubscription.** A parallel region entered from
//!   inside a worker runs inline instead of spawning another layer of
//!   threads.
//!
//! * **Dedicated pools.** [`ThreadPoolBuilder`]/[`ThreadPool`] give the
//!   workspace's background services (prefetcher, pipeline, scheduler)
//!   long-lived workers behind one audited spawn site, so application
//!   crates never call `std::thread::spawn` directly (the `thread_spawn`
//!   simlint rule).
//!
//! Swap the real rayon back in (same API) when registry access is
//! available; every guarantee above is one rayon already provides. One
//! deviation: `ThreadPoolBuilder::build` is infallible here, and
//! `ThreadPool::{panicked_jobs, join}` expose panic accounting that real
//! rayon routes through unwinding instead.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod protocol;

/// How many chunks each worker should see on average. The claim cost is
/// one `fetch_add` plus one uncontended lock per chunk, so chunks can be
/// fine; they need to be, because items are priced very unevenly (one
/// ION-GPFS/SLC experiment vs one CNL/TLC experiment differ by several
/// x) and a coarse tail chunk of heavy items serializes the sweep.
const CHUNKS_PER_WORKER: usize = 16;

std::thread_local! {
    /// Set inside pool workers so nested parallel regions run inline
    /// rather than spawning threads^2.
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// The thread count a new parallel region would use: the
/// `RAYON_NUM_THREADS` override when set and nonzero, otherwise the
/// machine's available parallelism.
pub fn current_num_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n > 0 => n,
        _ => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Poisons the region when its worker unwinds, so sibling workers stop
/// claiming chunks instead of finishing a doomed region.
struct PanicGuard<'a>(&'a protocol::RegionState);

impl Drop for PanicGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

/// One contiguous run of items and, after a worker has processed it,
/// their results. Each cell is locked exactly once (by whichever worker
/// claims its index), so the mutex is uncontended bookkeeping that keeps
/// the implementation free of `unsafe`.
struct ChunkCell<T, R> {
    input: Vec<T>,
    output: Vec<R>,
}

fn lock_cell<T, R>(cell: &Mutex<ChunkCell<T, R>>) -> std::sync::MutexGuard<'_, ChunkCell<T, R>> {
    match cell.lock() {
        Ok(guard) => guard,
        // A sibling worker panicked while holding a different cell; the
        // data in *this* cell is untouched and the region is already
        // poisoned, so proceed and let the scope propagate the panic.
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Applies `f` to every item, in parallel, returning results in input
/// order. The execution backbone for [`ParIter`] and [`ParMap`].
fn run_parallel<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let len = items.len();
    let threads = current_num_threads();
    if threads <= 1 || len <= 1 || IN_POOL.with(std::cell::Cell::get) {
        return items.into_iter().map(f).collect();
    }
    let workers = threads.min(len);
    let chunk = len.div_ceil(workers * CHUNKS_PER_WORKER).max(1);
    let n_chunks = len.div_ceil(chunk);

    let mut cells: Vec<Mutex<ChunkCell<T, R>>> = Vec::with_capacity(n_chunks);
    let mut it = items.into_iter();
    for _ in 0..n_chunks {
        let input: Vec<T> = it.by_ref().take(chunk).collect();
        cells.push(Mutex::new(ChunkCell {
            input,
            output: Vec::new(),
        }));
    }

    // The claim/poison protocol is shared source with simcheck's
    // model-checked instantiation (see `protocol`): what the checker
    // exhaustively verifies at 2-3 workers is this exact code.
    let region = protocol::RegionState::new(n_chunks);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                IN_POOL.with(|flag| flag.set(true));
                let _guard = PanicGuard(&region);
                while let Some(i) = region.claim() {
                    let Some(cell) = cells.get(i) else { break };
                    let mut cell = lock_cell(cell);
                    let input = std::mem::take(&mut cell.input);
                    cell.output = input.into_iter().map(&f).collect();
                }
            });
        }
        // `scope` joins every worker here and re-raises the first panic
        // on this thread — rayon's propagation contract.
    });
    cells
        .into_iter()
        .flat_map(|cell| {
            match cell.into_inner() {
                Ok(c) => c,
                Err(p) => p.into_inner(),
            }
            .output
        })
        .collect()
}

/// A materialised parallel iterator: the items of the source, awaiting a
/// transform or a direct reduction.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Transforms every item with `f` when the pipeline is executed.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Collects the items unchanged, in input order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sums the items, folding in input order (deterministic for floats).
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }
}

/// A mapped parallel pipeline: executing it fans `f` out over the pool.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, F> ParMap<T, F> {
    /// Runs the pipeline on the pool and collects results in input order.
    pub fn collect<R, C>(self) -> C
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        run_parallel(self.items, self.f).into_iter().collect()
    }

    /// Runs the pipeline on the pool and sums the results, folding in
    /// input order (deterministic for floats at any thread count).
    pub fn sum<R, S>(self) -> S
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
        S: std::iter::Sum<R>,
    {
        run_parallel(self.items, self.f).into_iter().sum()
    }
}

/// The traits user code imports via `use rayon::prelude::*`.
pub mod prelude {
    /// Entry point mirroring rayon's `IntoParallelIterator`.
    pub trait IntoParallelIterator {
        /// The element type.
        type Item: Send;
        /// Converts `self` into a parallel iterator over the pool.
        fn into_par_iter(self) -> super::ParIter<Self::Item>;
    }

    impl<I: IntoIterator> IntoParallelIterator for I
    where
        I::Item: Send,
    {
        type Item = I::Item;
        fn into_par_iter(self) -> super::ParIter<I::Item> {
            super::ParIter {
                items: self.into_iter().collect(),
            }
        }
    }

    /// Stand-in for rayon's `ParallelSlice`. Chunk iteration itself is
    /// sequential (no workspace hot path uses it); the chunks feed
    /// ordinary iterator pipelines.
    pub trait ParallelSlice<T> {
        /// Iterates over chunks of at most `n` elements.
        fn par_chunks(&self, n: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, n: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(n)
        }
    }

    /// Stand-in for rayon's `ParallelSliceMut`.
    pub trait ParallelSliceMut<T> {
        /// Iterates over mutable chunks of at most `n` elements.
        fn par_chunks_mut(&mut self, n: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, n: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(n)
        }
    }
}

/// A queued unit of work for a [`ThreadPool`].
type PoolJob = Box<dyn FnOnce() + Send + 'static>;

/// Configures a dedicated [`ThreadPool`] — the subset of rayon's builder
/// the workspace uses.
///
/// Deviation from real rayon: [`ThreadPoolBuilder::build`] is infallible
/// here (the shim has no registry to fail on), so callers under the
/// `no_panic` invariant don't need an `expect` to unwrap a `Result`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default thread count
    /// ([`current_num_threads`]).
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder { num_threads: 0 }
    }

    /// Uses exactly `n` worker threads (0 = default).
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    /// Starts the workers and returns the pool.
    pub fn build(self) -> ThreadPool {
        let n = if self.num_threads == 0 {
            current_num_threads()
        } else {
            self.num_threads
        };
        let (tx, rx) = std::sync::mpsc::channel::<PoolJob>();
        let rx = std::sync::Arc::new(Mutex::new(rx));
        let panicked = std::sync::Arc::new(AtomicUsize::new(0));
        let handles = (0..n)
            .map(|_| {
                let rx = std::sync::Arc::clone(&rx);
                let panicked = std::sync::Arc::clone(&panicked);
                std::thread::spawn(move || {
                    IN_POOL.with(|flag| flag.set(true));
                    loop {
                        // Take the next job with the queue lock released
                        // before running it, so a slow job never blocks
                        // the other workers' claims.
                        let job = {
                            let guard = match rx.lock() {
                                Ok(g) => g,
                                Err(poisoned) => poisoned.into_inner(),
                            };
                            guard.recv()
                        };
                        match job {
                            Ok(f) => {
                                // A panicking job must not kill the worker
                                // (later jobs would silently queue forever);
                                // count it and keep serving.
                                let caught =
                                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                                if caught.is_err() {
                                    // Relaxed: a pure event counter — the
                                    // RMW is atomic at any ordering, no
                                    // data is published through it, and
                                    // the authoritative read in `join`
                                    // happens after the worker joins
                                    // (which orders everything).
                                    panicked.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Err(_) => break,
                        }
                    }
                })
            })
            .collect();
        ThreadPool {
            tx: Some(tx),
            handles,
            panicked,
        }
    }
}

/// A dedicated pool of long-lived worker threads for background
/// services (prefetchers, pipelines, schedulers) whose jobs outlive any
/// one parallel region. Jobs run in submission order per worker; the
/// pool joins its workers on drop.
pub struct ThreadPool {
    tx: Option<std::sync::mpsc::Sender<PoolJob>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    panicked: std::sync::Arc<AtomicUsize>,
}

impl ThreadPool {
    /// Number of worker threads in this pool.
    pub fn current_num_threads(&self) -> usize {
        self.handles.len()
    }

    /// Queues `op` for execution on some worker. A send after the pool
    /// has shut down is silently dropped (only possible during drop).
    pub fn spawn<OP>(&self, op: OP)
    where
        OP: FnOnce() + Send + 'static,
    {
        if let Some(tx) = &self.tx {
            let _send_after_shutdown = tx.send(Box::new(op));
        }
    }

    /// Jobs that panicked so far. Callers that need a `Result` instead
    /// of a panic observe failures here (see ooc's prefetcher).
    pub fn panicked_jobs(&self) -> usize {
        // Relaxed: a monotone progress probe that is racy by nature —
        // jobs may still be running, so *any* ordering only yields a
        // lower bound. The exact count is `join`'s.
        self.panicked.load(Ordering::Relaxed)
    }

    /// Closes the queue, runs every remaining job, joins the workers and
    /// returns the total panicked-job count.
    pub fn join(mut self) -> usize {
        self.shutdown();
        // Relaxed: every worker has been joined by `shutdown`, and a
        // thread join is a full happens-before edge, so this read sees
        // the final count regardless of ordering.
        self.panicked.load(Ordering::Relaxed)
    }

    fn shutdown(&mut self) {
        self.tx.take();
        for h in self.handles.drain(..) {
            // Workers never unwind (jobs are caught above), so a join
            // error is unreachable; swallowing it keeps drop total.
            drop(h.join());
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Runs two closures in parallel (`b` on a scoped worker, `a` on the
/// calling thread), returning both results — rayon's `join`. Inline when
/// the pool is single-threaded or the caller is already a pool worker.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RB: Send,
{
    if current_num_threads() <= 1 || IN_POOL.with(std::cell::Cell::get) {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| {
            IN_POOL.with(|flag| flag.set(true));
            b()
        });
        let ra = a();
        let rb = match handle.join() {
            Ok(v) => v,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// Serialises the tests that touch `RAYON_NUM_THREADS`; correctness
    /// tests are env-agnostic (results are identical at any count).
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    fn with_threads<R>(n: &str, f: impl FnOnce() -> R) -> R {
        let _guard = match ENV_LOCK.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        std::env::set_var("RAYON_NUM_THREADS", n);
        let out = f();
        std::env::remove_var("RAYON_NUM_THREADS");
        out
    }

    #[test]
    fn range_into_par_iter_collects_in_order() {
        let v: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn vec_into_par_iter_sums() {
        let s: u64 = vec![1u64, 2, 3].into_par_iter().sum();
        assert_eq!(s, 6);
    }

    #[test]
    fn join_returns_both() {
        assert_eq!(super::join(|| 1, || "x"), (1, "x"));
    }

    #[test]
    fn large_map_preserves_input_order() {
        let n = 10_000u64;
        let v: Vec<u64> = (0..n).into_par_iter().map(|i| i.wrapping_mul(31)).collect();
        let expect: Vec<u64> = (0..n).map(|i| i.wrapping_mul(31)).collect();
        assert_eq!(v, expect);
    }

    #[test]
    fn float_sum_is_identical_at_every_thread_count() {
        let seq: f64 = (1..=5000u32).map(|i| 1.0 / f64::from(i)).sum();
        for threads in ["1", "2", "8"] {
            let par: f64 = with_threads(threads, || {
                (1..=5000u32)
                    .into_par_iter()
                    .map(|i| 1.0 / f64::from(i))
                    .sum()
            });
            assert_eq!(par.to_bits(), seq.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn workers_actually_run_concurrently() {
        // Four items that each wait for all four workers to arrive: only
        // a genuinely parallel pool gets them past the rendezvous.
        with_threads("4", || {
            let arrived = AtomicUsize::new(0);
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            let v: Vec<usize> = (0..4usize)
                .into_par_iter()
                .map(|i| {
                    arrived.fetch_add(1, Ordering::SeqCst);
                    while arrived.load(Ordering::SeqCst) < 4 {
                        assert!(
                            std::time::Instant::now() < deadline,
                            "workers never ran concurrently"
                        );
                        std::thread::yield_now();
                    }
                    i
                })
                .collect();
            assert_eq!(v, vec![0, 1, 2, 3]);
        });
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            let _: Vec<u32> = (0..128u32)
                .into_par_iter()
                .map(|i| if i == 77 { panic!("boom at {i}") } else { i })
                .collect();
        });
        assert!(result.is_err(), "worker panic must reach the caller");
    }

    #[test]
    fn join_propagates_the_spawned_side_panic() {
        let result = std::panic::catch_unwind(|| {
            super::join(|| 1, || -> u32 { panic!("spawned side") });
        });
        assert!(result.is_err());
    }

    #[test]
    fn nested_regions_run_inline_without_spawning() {
        // The outer region parallelises; each inner region detects the
        // pool and runs inline. Results still arrive in order.
        let v: Vec<u64> = (0..16u64)
            .into_par_iter()
            .map(|i| {
                let inner: Vec<u64> = (0..8u64).into_par_iter().map(|j| i * 8 + j).collect();
                inner.iter().sum()
            })
            .collect();
        let expect: Vec<u64> = (0..16u64)
            .map(|i| (0..8).map(|j| i * 8 + j).sum())
            .collect();
        assert_eq!(v, expect);
    }

    #[test]
    fn thread_count_override_of_one_runs_inline() {
        let v: Vec<usize> = with_threads("1", || {
            (0..64usize).into_par_iter().map(|i| i + 1).collect()
        });
        assert_eq!(v.len(), 64);
        assert_eq!(v[0], 1);
        assert_eq!(v[63], 64);
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let empty: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|i| i).collect();
        assert!(empty.is_empty());
        let one: Vec<u32> = vec![7u32].into_par_iter().map(|i| i * 2).collect();
        assert_eq!(one, vec![14]);
    }

    #[test]
    fn par_chunks_cover_the_slice() {
        let data: Vec<u32> = (0..10).collect();
        let n: usize = data.par_chunks(3).map(<[u32]>::len).sum();
        assert_eq!(n, 10);
    }

    #[test]
    fn thread_pool_runs_every_job() {
        let pool = super::ThreadPoolBuilder::new().num_threads(3).build();
        assert_eq!(pool.current_num_threads(), 3);
        let count = std::sync::Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let c = std::sync::Arc::clone(&count);
            pool.spawn(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(pool.join(), 0);
        assert_eq!(count.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn thread_pool_workers_run_concurrently() {
        // Four jobs that rendezvous: only a pool with four live workers
        // can complete them.
        let pool = super::ThreadPoolBuilder::new().num_threads(4).build();
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(4));
        for _ in 0..4 {
            let b = std::sync::Arc::clone(&barrier);
            pool.spawn(move || {
                b.wait();
            });
        }
        assert_eq!(pool.join(), 0);
    }

    #[test]
    fn thread_pool_survives_and_counts_panicking_jobs() {
        let pool = super::ThreadPoolBuilder::new().num_threads(2).build();
        let count = std::sync::Arc::new(AtomicUsize::new(0));
        pool.spawn(|| panic!("injected job failure"));
        for _ in 0..8 {
            let c = std::sync::Arc::clone(&count);
            pool.spawn(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(pool.join(), 1, "exactly the injected panic");
        assert_eq!(count.load(Ordering::SeqCst), 8, "later jobs still ran");
    }
}
