//! The parallel-region claim/poison protocol, written once and
//! instantiated twice.
//!
//! [`chunk_claim_protocol!`] generates `RegionState` — the lock-free
//! heart of [`crate`]'s `run_parallel`: one atomic claim counter handing
//! out chunk indices, one poison flag that tells sibling workers to stop
//! when a worker unwinds. The macro is parameterised over the atomic
//! types so the *same source* backs both the production instantiation
//! below (over `std::sync::atomic`) and simcheck's model-checked
//! instantiation (over its shadow atomics, where every access is a
//! schedule point). Whatever the model checker exhaustively verifies is
//! therefore literally the code that runs in production, not a
//! transcription of it.
//!
//! ## Why every ordering here survives as `Relaxed`
//!
//! simcheck explores this protocol exhaustively at 2–3 workers
//! (`simcheck::checks`): claim uniqueness, chunk coverage, and
//! poison-stop behaviour hold in every interleaving *with the orderings
//! below*, because the protocol never publishes data through these
//! atomics:
//!
//! * `next` is a pure ticket dispenser. `fetch_add` is atomic at any
//!   ordering, so two workers can never claim the same index; the chunk
//!   payloads flow through per-chunk `Mutex`es (lock/unlock edges) and
//!   the scope join, never through `next` itself.
//! * `poisoned` is a best-effort work-saving hint. A worker that checks
//!   the flag just before it is raised claims one more chunk and wastes
//!   work on a doomed region — a window that is *logical*, not a memory
//!   -ordering artifact: it exists at `SeqCst` too, because the check
//!   and the claim are distinct steps. Correctness never depends on the
//!   flag: panic propagation rides the scope join, and results of a
//!   poisoned region are discarded wholesale.

/// Generates `RegionState`: the shared claim-counter/poison-flag state
/// of one parallel region, over caller-supplied atomic types.
///
/// `$atomic_usize` / `$atomic_bool` must expose the std atomics' `new`,
/// `load`, `store`, and (for the counter) `fetch_add` taking
/// `std::sync::atomic::Ordering` — as `std::sync::atomic::{AtomicUsize,
/// AtomicBool}` and `simcheck`'s shadow atomics both do.
#[macro_export]
macro_rules! chunk_claim_protocol {
    ($vis:vis, $atomic_usize:ty, $atomic_bool:ty) => {
        /// Shared state of one parallel region: a claim counter handing
        /// out chunk indices and a poison flag raised when a worker
        /// unwinds. See `rayon::protocol` for the ordering audit.
        $vis struct RegionState {
            /// Next unclaimed chunk index (may run past `n_chunks`; a
            /// claim at or beyond the end reports exhaustion).
            next: $atomic_usize,
            /// Raised by an unwinding worker so siblings stop claiming.
            poisoned: $atomic_bool,
            /// Total chunks in the region.
            n_chunks: usize,
        }

        impl RegionState {
            /// A fresh region of `n_chunks` unclaimed chunks.
            $vis fn new(n_chunks: usize) -> RegionState {
                RegionState {
                    next: <$atomic_usize>::new(0),
                    poisoned: <$atomic_bool>::new(false),
                    n_chunks,
                }
            }

            /// Claims the next chunk, or `None` when the region is
            /// exhausted or poisoned. Distinct `Some` results are
            /// guaranteed distinct indices in `0..n_chunks`.
            $vis fn claim(&self) -> Option<usize> {
                // Relaxed: a stale `false` here merely claims one more
                // chunk for a doomed region (wasted work, no incorrect
                // result — the panic still propagates via the scope
                // join). The same window exists at SeqCst, since the
                // check and the claim are separate steps; simcheck
                // verifies claim uniqueness holds regardless.
                if self.poisoned.load(::std::sync::atomic::Ordering::Relaxed) {
                    return None;
                }
                // Relaxed: the RMW is atomic at any ordering, which is
                // all uniqueness needs; no data is published through
                // `next` (chunk payloads travel under per-chunk locks
                // and the scope join). Model-checked exhaustively in
                // `simcheck::checks` at 2-3 workers.
                let i = self
                    .next
                    .fetch_add(1, ::std::sync::atomic::Ordering::Relaxed);
                if i < self.n_chunks {
                    Some(i)
                } else {
                    None
                }
            }

            /// Raises the poison flag (called from an unwinding
            /// worker's drop guard).
            $vis fn poison(&self) {
                // Relaxed: see `claim` — the flag is a work-saving hint
                // with no data riding on it, and failure delivery is
                // the scope join, not this store.
                self.poisoned
                    .store(true, ::std::sync::atomic::Ordering::Relaxed);
            }

            /// Whether some worker has poisoned the region.
            $vis fn is_poisoned(&self) -> bool {
                // Relaxed: observational; callers only use this after
                // the scope join, which already orders everything.
                self.poisoned.load(::std::sync::atomic::Ordering::Relaxed)
            }
        }
    };
}

chunk_claim_protocol!(
    pub,
    std::sync::atomic::AtomicUsize,
    std::sync::atomic::AtomicBool
);

#[cfg(test)]
mod tests {
    use super::RegionState;

    #[test]
    fn claims_each_chunk_exactly_once() {
        let region = RegionState::new(3);
        let mut seen = Vec::new();
        while let Some(i) = region.claim() {
            seen.push(i);
        }
        assert_eq!(seen, vec![0, 1, 2]);
        assert!(region.claim().is_none(), "exhausted regions stay empty");
    }

    #[test]
    fn poison_stops_further_claims() {
        let region = RegionState::new(8);
        assert_eq!(region.claim(), Some(0));
        assert!(!region.is_poisoned());
        region.poison();
        assert!(region.is_poisoned());
        assert_eq!(region.claim(), None, "poisoned regions hand out nothing");
    }
}
