//! Offline shim for `criterion`.
//!
//! Runs each registered bench as a short calibrated timing loop and
//! prints a one-line median estimate. No statistics, no HTML reports —
//! just enough for `cargo bench` to build, run, and expose gross
//! regressions while the environment has no registry access.

use std::time::{Duration, Instant};

/// Measurement/reporting entry point, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per bench.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benches.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Registers and immediately runs one bench.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        run_bench(&id.label, self.sample_size, f);
    }
}

/// A named collection of benches, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Records the work per iteration (accepted, unused by the shim).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs a bench in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_bench(&label, self.samples(), f);
        self
    }

    /// Runs a bench parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        run_bench(&label, self.samples(), |b| f(b, input));
        self
    }

    /// Ends the group (no-op beyond parity with criterion).
    pub fn finish(&mut self) {}

    fn samples(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }
}

/// Identifier for one bench, mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Declared units of work per iteration.
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing-loop driver handed to each bench closure.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last_median: Duration,
}

impl Bencher {
    /// Times `f`, storing a median-of-samples estimate.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Calibrate: grow the inner loop until one sample takes ≥ ~1 ms.
        let mut inner = 1u32;
        loop {
            let t = Instant::now();
            for _ in 0..inner {
                black_box(f());
            }
            let dt = t.elapsed();
            if dt >= Duration::from_millis(1) || inner >= 1 << 20 {
                break;
            }
            inner = inner.saturating_mul(4);
        }
        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..inner {
                black_box(f());
            }
            per_iter.push(t.elapsed() / inner);
        }
        per_iter.sort();
        self.last_median = per_iter[per_iter.len() / 2];
    }
}

/// Opaque value sink preventing the optimiser from deleting bench bodies.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_bench(label: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        last_median: Duration::ZERO,
    };
    f(&mut b);
    println!("bench {label:<48} median {:>12.3?}", b.last_median);
}

/// Mirrors `criterion::criterion_group!` — bundles bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
}

/// Mirrors `criterion::criterion_main!` — emits `main` running the groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sum_to", 50u64), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }
}
