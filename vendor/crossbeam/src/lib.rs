//! Offline shim for `crossbeam`, providing the `channel` module surface
//! the workspace uses: multi-producer **multi-consumer** bounded and
//! unbounded channels with `Sender`/`Receiver` both `Clone`.
//!
//! `std::sync::mpsc` receivers are single-consumer, so this is a real
//! MPMC queue built on `Mutex<VecDeque>` + two condvars (not-empty /
//! not-full). Throughput is far below real crossbeam, but the dataflow
//! pipelines here move few, large chunks, where lock overhead is noise.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like real crossbeam: Debug without requiring `T: Debug`, so
    // `send(...).expect(...)` works for unprintable payloads.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        /// Signalled when the queue gains an item or the last sender leaves.
        not_empty: Condvar,
        /// Signalled when the queue loses an item or the last receiver leaves.
        not_full: Condvar,
        /// `None` = unbounded.
        capacity: Option<usize>,
    }

    /// The sending half of a channel; clonable.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half of a channel; clonable (MPMC).
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Creates a channel holding at most `cap` queued messages; senders
    /// block when it is full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_channel(Some(cap))
    }

    /// Creates a channel with no capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_channel(None)
    }

    fn new_channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    fn lock<T>(shared: &Shared<T>) -> std::sync::MutexGuard<'_, State<T>> {
        match shared.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is queued; errors if all receivers
        /// have been dropped (the message is handed back).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = lock(&self.0);
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = self.0.capacity.is_some_and(|cap| st.queue.len() >= cap);
                if !full {
                    st.queue.push_back(value);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
                st = match self.0.not_full.wait(st) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks for the next message; errors once the channel is empty
        /// and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = lock(&self.0);
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = match self.0.not_empty.wait(st) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }

        /// Non-blocking receive; `None` when no message is ready (whether
        /// or not senders remain).
        pub fn try_recv(&self) -> Option<T> {
            let mut st = lock(&self.0);
            let v = st.queue.pop_front();
            if v.is_some() {
                self.0.not_full.notify_one();
            }
            v
        }

        /// Blocking iterator draining the channel until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            lock(&self.0).senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            lock(&self.0).receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = lock(&self.0);
            st.senders -= 1;
            if st.senders == 0 {
                // Wake receivers blocked on an empty queue so they can
                // observe the disconnect.
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = lock(&self.0);
            st.receivers -= 1;
            if st.receivers == 0 {
                self.0.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_fifo() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).expect("receiver alive");
            }
            drop(tx);
            let got: Vec<i32> = rx.iter().collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn bounded_applies_backpressure() {
            let (tx, rx) = bounded(2);
            let producer = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).expect("receiver alive");
                }
            });
            let got: Vec<i32> = rx.iter().collect();
            producer.join().expect("producer");
            assert_eq!(got.len(), 100);
        }

        #[test]
        fn multi_consumer_partitions_work() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            let a = std::thread::spawn(move || rx.iter().count());
            let b = std::thread::spawn(move || rx2.iter().count());
            for i in 0..1000 {
                tx.send(i).expect("receivers alive");
            }
            drop(tx);
            let total = a.join().expect("a") + b.join().expect("b");
            assert_eq!(total, 1000);
        }

        #[test]
        fn send_fails_after_receivers_gone() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(5), Err(SendError(5)));
        }

        #[test]
        fn recv_fails_after_senders_gone() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
