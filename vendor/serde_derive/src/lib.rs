//! Offline shim for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as a
//! forward-compatibility marker (no serialisation is performed anywhere),
//! so these derives parse just enough of the item to recover its name,
//! then emit marker-trait impls. The `serde` helper attribute
//! (`#[serde(skip)]` etc.) is declared so field annotations compile
//! unchanged. Generic items get no impl — nothing in the workspace bounds
//! on the marker traits, so none is needed.

use proc_macro::{TokenStream, TokenTree};

/// Derives the shim `serde::Serialize` marker trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Serialize")
}

/// Derives the shim `serde::Deserialize` marker trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Deserialize")
}

/// Emits `impl serde::<Trait> for <Name> {}` for non-generic items, and
/// nothing for generic ones.
fn marker_impl(input: TokenStream, trait_name: &str) -> TokenStream {
    match parse_item_name(input) {
        Some(name) => format!("impl serde::{trait_name} for {name} {{}}")
            .parse()
            .unwrap_or_else(|_| TokenStream::new()),
        None => TokenStream::new(),
    }
}

/// Returns the item name for a non-generic `struct`/`enum`/`union`
/// definition, or `None` when the item is generic (or unparseable).
fn parse_item_name(input: TokenStream) -> Option<String> {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                let name = match iter.next() {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    _ => return None,
                };
                let generic = matches!(
                    iter.peek(),
                    Some(TokenTree::Punct(p)) if p.as_char() == '<'
                );
                return if generic { None } else { Some(name) };
            }
        }
    }
    None
}
