//! Offline shim for `rand` 0.8.
//!
//! Implements the exact surface the workspace uses — `SmallRng`,
//! `Rng::{gen, gen_range, gen_bool}`, and `SeedableRng::{from_seed,
//! seed_from_u64}` — over a xoshiro256++ core seeded via SplitMix64,
//! the same construction the real `SmallRng` uses on 64-bit targets.
//!
//! Determinism note: every generator in this shim is seedable and pure;
//! there is deliberately no `from_entropy`/`thread_rng` OS entropy path,
//! which keeps the simulator reproducible run-to-run (`simlint` enforces
//! the same property at the source level).

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    pub use crate::small::SmallRng;
}

/// A seedable random number generator (the slice of rand's trait the
/// workspace needs).
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// exactly like rand 0.8 does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let out = splitmix64_mix(state);
            for (dst, src) in chunk.iter_mut().zip(out.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 output mixer.
fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Core generator interface: everything is derived from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods (the slice of rand's `Rng` the workspace
/// needs).
pub trait Rng: RngCore {
    /// Uniform sample from a range; panics on an empty range like rand.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: Into<UniformRange<T>>,
    {
        T::sample(range.into(), self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    ///
    /// Panics when `p` is not in `[0, 1]`, matching rand.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        // 53-bit uniform in [0,1) — same resolution as rand's f64 path.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// A uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Range wrapper unifying `a..b` and `a..=b` for [`Rng::gen_range`].
pub struct UniformRange<T> {
    lo: T,
    hi: T,
    inclusive: bool,
}

impl<T: Copy> From<Range<T>> for UniformRange<T> {
    fn from(r: Range<T>) -> Self {
        UniformRange {
            lo: r.start,
            hi: r.end,
            inclusive: false,
        }
    }
}

impl<T: Copy> From<RangeInclusive<T>> for UniformRange<T> {
    fn from(r: RangeInclusive<T>) -> Self {
        UniformRange {
            lo: *r.start(),
            hi: *r.end(),
            inclusive: true,
        }
    }
}

/// Types uniformly sampleable from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `range` using `rng`.
    fn sample<R: RngCore + ?Sized>(range: UniformRange<Self>, rng: &mut R) -> Self;
}

/// Widening-multiply rejection-free bounded sample (Lemire). Bias is
/// ≤ 2^-64 per draw — far below anything the simulator's statistics
/// could observe — so the simpler biased form is acceptable for a shim.
fn bounded_u64<R: RngCore + ?Sized>(span: u64, rng: &mut R) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore + ?Sized>(range: UniformRange<Self>, rng: &mut R) -> Self {
                let (lo, hi) = (range.lo, range.hi);
                if range.inclusive {
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as $wide).wrapping_add(bounded_u64(span + 1, rng) as $wide) as $t
                } else {
                    assert!(lo < hi, "gen_range: empty range");
                    let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                    (lo as $wide).wrapping_add(bounded_u64(span, rng) as $wide) as $t
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

impl SampleUniform for f64 {
    fn sample<R: RngCore + ?Sized>(range: UniformRange<Self>, rng: &mut R) -> Self {
        let (lo, hi) = (range.lo, range.hi);
        assert!(
            lo < hi || (range.inclusive && lo <= hi),
            "gen_range: empty range"
        );
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample<R: RngCore + ?Sized>(range: UniformRange<Self>, rng: &mut R) -> Self {
        let (lo, hi) = (range.lo, range.hi);
        assert!(
            lo < hi || (range.inclusive && lo <= hi),
            "gen_range: empty range"
        );
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        lo + unit * (hi - lo)
    }
}

/// Types with a "standard" uniform distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

mod small {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind rand 0.8's 64-bit `SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> SmallRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                let mut word = [0u8; 8];
                word.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(word);
            }
            // An all-zero state would be a fixed point; nudge it, like
            // upstream xoshiro implementations do.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1u32..=3);
            assert!((1..=3).contains(&w));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let s = rng.gen_range(0usize..7);
            assert!(s < 7);
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(3);
        let heads = (0..100_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((45_000..55_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..u64::MAX) == b.gen_range(0u64..u64::MAX))
            .count();
        assert_eq!(same, 0);
    }
}
