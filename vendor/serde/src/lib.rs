//! Offline shim for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` as forward-looking
//! annotations but never serialises anything, so the traits here are empty
//! markers and the derives (re-exported from the shim `serde_derive`)
//! only validate the attribute grammar. If real serialisation is needed
//! later, swap the genuine serde back in — call sites compile unchanged.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
