//! Offline shim for the `bytes` crate.
//!
//! Provides a cheaply-clonable, immutable byte buffer with the subset of
//! the real `Bytes` API this workspace uses: construction from vectors,
//! slices, and `'static` data, `Deref` to `[u8]`, slicing, and equality.
//! Cheap cloning is preserved by backing the buffer with `Arc<[u8]>`.

use std::fmt;
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted contiguous byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// Wraps a `'static` byte slice without copying.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(bytes)
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-buffer sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the contents out into a vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_eq() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::from_static(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(&a[..2], &[1, 2]);
    }

    #[test]
    fn slicing_shares_allocation() {
        let a = Bytes::from(vec![0, 1, 2, 3, 4]);
        let mid = a.slice(1..4);
        assert_eq!(mid.as_ref(), &[1, 2, 3]);
        assert_eq!(mid.slice(1..).as_ref(), &[2, 3]);
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let a = Bytes::from((0u8..=255).collect::<Vec<u8>>());
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.len(), 256);
    }
}
