//! # oocnvm — compute-local NVM for out-of-core HPC
//!
//! Facade crate for the `oocnvm` workspace, a from-scratch Rust reproduction
//! of Jung et al., *Exploring the Future of Out-Of-Core Computing with
//! Compute-Local Non-Volatile Memory* (SC '13).
//!
//! The workspace builds every system the paper describes:
//!
//! * [`flashsim`] — a transaction-accurate NVM media timing simulator
//!   (the paper's NANDFlashSim substrate) with per-state execution
//!   accounting and PAL1–PAL4 parallelism classification,
//! * [`interconnect`] — PCIe 2.0/3.0, SATA-bridged, ONFi SDR/DDR and
//!   InfiniBand link models,
//! * [`ssd`] — the SSD assembly: FTL, UFS direct mode, queueing,
//! * [`oocfs`] — file-system request-transformation models (ext2/3/4,
//!   ext4-L, XFS, JFS, ReiserFS, BTRFS, GPFS striping) plus the paper's
//!   Unified File System,
//! * [`ooc`] — the out-of-core application substrate: a synthetic nuclear-CI
//!   Hamiltonian, a real LOBPCG block eigensolver, an out-of-core matrix
//!   store, and DOoC-style data pools / data-aware scheduling,
//! * [`ooctrace`] — two-level I/O trace capture and replay,
//! * [`simobs`] — deterministic observability: structured event tracing
//!   keyed to simulated nanoseconds, integer-only metrics, per-layer
//!   latency attribution, and Chrome-trace/Perfetto export (see
//!   `docs/OBSERVABILITY.md`),
//! * [`oocnvm_core`] — the Table-2 system configurations and the experiment
//!   driver that regenerates every table and figure of the paper.
//!
//! ## Quickstart
//!
//! ```
//! use oocnvm::prelude::*;
//!
//! // Run the paper's CNL-UFS configuration on TLC NAND against a small
//! // synthetic out-of-core read workload.
//! let config = SystemConfig::cnl_ufs();
//! let trace = synthetic_ooc_trace(16 * MIB, 1 * MIB, 42);
//! let report = ExperimentSpec::new(&config, NvmKind::Tlc).run(&trace);
//! assert!(report.bandwidth_mb_s > 0.0);
//! ```

#![forbid(unsafe_code)]

pub use flashsim;
pub use interconnect;
pub use nvmtypes;
pub use ooc;
pub use oocfs;
pub use oocnvm_bench as bench;
pub use oocnvm_core as core;
pub use ooctrace;
pub use simobs;
pub use ssd;
pub use ufs;

pub mod obsreport;
pub mod reliability;
pub mod tenants_study;
pub mod ufs_study;

/// Commonly used items, re-exported for examples and downstream users.
pub mod prelude {
    pub use nvmtypes::{HostRequest, IoOp, MediaTiming, NvmKind, SsdGeometry, GIB, KIB, MIB};
    pub use oocnvm_core::config::SystemConfig;
    pub use oocnvm_core::experiment::{run_batch, ExperimentReport, ExperimentSpec};
    pub use oocnvm_core::tenancy::{
        ArrivalProcess, TenancyReport, TenancySpec, TenantProfile, TenantSpec,
    };
    pub use oocnvm_core::workload::synthetic_ooc_trace;
    pub use ooctrace::{PosixTrace, TraceRecord};
    pub use simobs::{chrome_trace, rollup, LatencyAttribution, Layer, Tracer};
}
