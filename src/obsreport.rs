//! The deterministic observability study behind the `obsreport` bin:
//! one traced CNL-UFS/TLC experiment plus a solver pass, its Chrome
//! trace-event export, and the self-checks proving the observer effect
//! is zero.
//!
//! Lives in the library (not the bin) so `tests/determinism.rs` can pin
//! the rendered report and trace JSON byte-identical at every thread
//! count. Tracing itself is single-threaded by construction — a
//! [`simobs::Tracer`] is one mutable observation stream — but the
//! untraced comparison run and everything downstream of the tracer ride
//! the same pool as the rest of the workspace.

use nvmtypes::{FaultPlan, NvmKind, MIB};
use ooc::lobpcg::{Lobpcg, LobpcgOptions};
use ooc::HamiltonianSpec;
use oocnvm_bench::json_report;
use oocnvm_core::config::SystemConfig;
use oocnvm_core::experiment::ExperimentSpec;
use oocnvm_core::workload::synthetic_ooc_trace;
use simobs::json::{parse, Json};
use simobs::{chrome_trace, rollup, Tracer};

/// Schema tag of the obsreport summary JSON document.
pub const SCHEMA: &str = "oocnvm.obsreport/1";

/// Event capacity of the bounded ring sink; overflow is counted, not
/// silently lost, and surfaces in the export header.
pub const RING_CAPACITY: usize = 65_536;

/// One traced experiment + solver pass.
#[derive(Debug, Clone)]
pub struct TracedPass {
    /// `{:?}` rendering of the device run report.
    pub rendered: String,
    /// Chrome trace-event JSON export of the collected events.
    pub trace_json: String,
    /// Text flamegraph rollup.
    pub flame: String,
    /// Per-layer latency attribution table.
    pub attrib: String,
}

/// Runs the traced experiment (CNL-UFS, TLC, `light` faults) and the
/// small LOBPCG solve on the solver lane of the same tracer.
pub fn traced_pass(seed: u64, trace_mib: u64, solver_dim: usize) -> TracedPass {
    let trace = synthetic_ooc_trace(trace_mib * MIB, MIB, seed);
    let mut obs = Tracer::ring(RING_CAPACITY);
    let report = ExperimentSpec::new(&SystemConfig::cnl_ufs(), NvmKind::Tlc)
        .faults(FaultPlan::light(seed))
        .tracer(&mut obs)
        .run(&trace);

    // A small in-core LOBPCG solve rides on the solver lane: iterations
    // tick a logical microsecond clock (docs/OBSERVABILITY.md).
    let h = HamiltonianSpec::medium(solver_dim).generate();
    let _solved = Lobpcg::new(LobpcgOptions {
        block_size: 4,
        max_iters: 60,
        tol: 1e-6,
        seed,
        precondition: true,
    })
    .solve_observed(&h, &mut obs);

    let log = obs.finish();
    TracedPass {
        rendered: format!("{:?}", report.run),
        trace_json: chrome_trace(&log),
        flame: rollup(&log),
        attrib: report.run.attribution.table(),
    }
}

/// The same experiment with no tracer attached, rendered the same way —
/// the observer-freedom reference.
pub fn untraced_render(seed: u64, trace_mib: u64) -> String {
    let trace = synthetic_ooc_trace(trace_mib * MIB, MIB, seed);
    let rep = ExperimentSpec::new(&SystemConfig::cnl_ufs(), NvmKind::Tlc)
        .faults(FaultPlan::light(seed))
        .run(&trace);
    format!("{:?}", rep.run)
}

/// The full obsreport study: traced pass, untraced comparison, replay
/// identity, export validation, and the versioned summary document.
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// First traced pass (the bin prints its flame/attrib and writes its
    /// trace JSON).
    pub pass: TracedPass,
    /// Tracing left the simulation result untouched.
    pub observer_free: bool,
    /// A same-seed re-run exported byte-identical trace JSON.
    pub replay_identical: bool,
    /// The export parses with our own reader and carries the format tag.
    pub parsed_and_tagged: bool,
    /// Attribution components sum to the measured total exactly.
    pub attribution_exact: bool,
    /// The [`SCHEMA`] summary document, via [`oocnvm_bench::json_report`].
    pub json: String,
}

impl ObsReport {
    /// All self-checks passed.
    pub fn all_ok(&self) -> bool {
        self.observer_free
            && self.replay_identical
            && self.parsed_and_tagged
            && self.attribution_exact
    }
}

/// Runs the study twice (replay identity) plus the untraced reference.
pub fn report(seed: u64, trace_mib: u64, solver_dim: usize) -> ObsReport {
    let pass = traced_pass(seed, trace_mib, solver_dim);
    let observer_free = untraced_render(seed, trace_mib) == pass.rendered;
    let replay_identical = traced_pass(seed, trace_mib, solver_dim).trace_json == pass.trace_json;
    let parsed_and_tagged = match parse(&pass.trace_json) {
        Ok(doc) => {
            doc.get("otherData").and_then(|o| o.get("format")).cloned()
                == Some(Json::str(simobs::export::TRACE_FORMAT))
        }
        Err(_) => false,
    };
    let attribution_exact = pass.attrib.contains("components sum to total exactly: OK");
    let payload = Json::obj()
        .field("seed", Json::u64(seed))
        .field("trace_mib", Json::u64(trace_mib))
        .field(
            "solver_dim",
            Json::u64(nvmtypes::u64_from_usize(solver_dim)),
        )
        .field(
            "trace_bytes",
            Json::u64(nvmtypes::u64_from_usize(pass.trace_json.len())),
        )
        .field(
            "checks",
            Json::obj()
                .field("observer_free", Json::Bool(observer_free))
                .field("replay_identical", Json::Bool(replay_identical))
                .field("parsed_and_tagged", Json::Bool(parsed_and_tagged))
                .field("attribution_exact", Json::Bool(attribution_exact)),
        );
    ObsReport {
        pass,
        observer_free,
        replay_identical,
        parsed_and_tagged,
        attribution_exact,
        json: json_report(SCHEMA, payload),
    }
}
