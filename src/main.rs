//! `oocnvm` — command-line front end for the workspace.
//!
//! ```text
//! oocnvm run --config <label> --media <slc|mlc|tlc|pcm> [--mib N] [--record-kib K]
//! oocnvm sweep [--mib N]                     full Table-2 x media sweep
//! oocnvm solve --n <dim> [--block B] [--iters I]   LOBPCG demo run
//! oocnvm list                                available configurations
//! ```

use oocnvm::core::config::SystemConfig;
use oocnvm::core::experiment::run_batch;
use oocnvm::core::format::Table;
use oocnvm::ooc::lobpcg::{Lobpcg, LobpcgOptions};
use oocnvm::ooc::HamiltonianSpec;
use oocnvm::prelude::*;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  oocnvm run --config <label> --media <slc|mlc|tlc|pcm> [--mib N] [--record-kib K]\n  \
         oocnvm sweep [--mib N]\n  oocnvm solve --n <dim> [--block B] [--iters I]\n  oocnvm list"
    );
    ExitCode::from(2)
}

/// Minimal `--key value` argument scanner.
fn flag(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

fn media_by_name(name: &str) -> Option<NvmKind> {
    let lower = name.to_ascii_lowercase();
    NvmKind::ALL
        .into_iter()
        .find(|k| format!("{k:?}").eq_ignore_ascii_case(&lower))
}

fn config_by_label(label: &str) -> Option<SystemConfig> {
    SystemConfig::table2()
        .into_iter()
        .find(|c| c.label.eq_ignore_ascii_case(label))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("available configurations (Table 2):");
            for c in SystemConfig::table2() {
                println!("  {}", c.table2_row());
            }
            ExitCode::SUCCESS
        }
        Some("run") => {
            let Some(cfg) = flag(&args, "--config").and_then(|l| config_by_label(&l)) else {
                eprintln!("unknown or missing --config (try `oocnvm list`)");
                return usage();
            };
            let Some(kind) = flag(&args, "--media").and_then(|m| media_by_name(&m)) else {
                eprintln!("unknown or missing --media");
                return usage();
            };
            let mib = flag(&args, "--mib")
                .and_then(|v| v.parse().ok())
                .unwrap_or(128u64);
            let rec = flag(&args, "--record-kib")
                .and_then(|v| v.parse().ok())
                .unwrap_or(6144u64);
            let trace = synthetic_ooc_trace(mib * MIB, rec * 1024, 42);
            let report = ExperimentSpec::new(&cfg, kind).run(&trace);
            println!("{} on {} ({mib} MiB workload):", report.label, kind.label());
            println!("  bandwidth:      {:>9.1} MB/s", report.bandwidth_mb_s);
            println!(
                "  makespan:       {:>9.2} ms",
                report.run.makespan as f64 / 1e6
            );
            println!("  channel util:   {:>9.1} %", report.channel_util * 100.0);
            println!("  package util:   {:>9.1} %", report.package_util * 100.0);
            println!(
                "  PAL1..4:        {:>5.1} / {:.1} / {:.1} / {:.1} %",
                report.pal_pct[0], report.pal_pct[1], report.pal_pct[2], report.pal_pct[3]
            );
            println!(
                "  latency:        p50 {:.2} ms / p99 {:.2} ms / max {:.2} ms",
                report.run.latency.p50 as f64 / 1e6,
                report.run.latency.p99 as f64 / 1e6,
                report.run.latency.max as f64 / 1e6
            );
            println!(
                "  energy:         {:>9.1} mJ ({:.2} nJ/B, {:.2} W mean)",
                report.run.energy.total_mj(),
                report.run.energy.nj_per_byte(),
                report.run.energy.mean_power_w(report.run.makespan)
            );
            if report.run.wear.erases > 0 {
                println!(
                    "  wear:           {} erases, WAF {:.2}",
                    report.run.wear.erases,
                    report.run.wear.waf()
                );
            }
            ExitCode::SUCCESS
        }
        Some("sweep") => {
            let mib = flag(&args, "--mib")
                .and_then(|v| v.parse().ok())
                .unwrap_or(128u64);
            let trace = synthetic_ooc_trace(mib * MIB, 6 * MIB, 42);
            let configs = SystemConfig::table2();
            let specs = configs
                .iter()
                .flat_map(|c| NvmKind::ALL.iter().map(|&k| ExperimentSpec::new(c, k)))
                .collect();
            let reports = run_batch(specs, &trace);
            let mut t = Table::new(["config", "TLC", "MLC", "SLC", "PCM"]);
            for c in &configs {
                let get = |k| {
                    oocnvm::core::experiment::find(&reports, c.label, k)
                        .map(|r| format!("{:.0}", r.bandwidth_mb_s))
                        .unwrap_or_default()
                };
                t.row([
                    c.label.to_string(),
                    get(NvmKind::Tlc),
                    get(NvmKind::Mlc),
                    get(NvmKind::Slc),
                    get(NvmKind::Pcm),
                ]);
            }
            print!("{}", t.render());
            ExitCode::SUCCESS
        }
        Some("solve") => {
            let Some(n) = flag(&args, "--n").and_then(|v| v.parse::<usize>().ok()) else {
                return usage();
            };
            let block = flag(&args, "--block")
                .and_then(|v| v.parse().ok())
                .unwrap_or(8usize);
            let iters = flag(&args, "--iters")
                .and_then(|v| v.parse().ok())
                .unwrap_or(100usize);
            let h = HamiltonianSpec::medium(n).generate();
            println!("H: n={} nnz={}", h.n, h.nnz());
            let result = Lobpcg::new(LobpcgOptions {
                block_size: block,
                max_iters: iters,
                tol: 1e-7,
                seed: 13,
                precondition: true,
            })
            .solve(&h);
            println!(
                "converged={} in {} iterations ({} operator applications)",
                result.converged, result.iterations, result.operator_applies
            );
            for (k, v) in result.eigenvalues.iter().enumerate() {
                println!(
                    "  lambda_{k} = {v:.8}  (residual {:.2e})",
                    result.residuals[k]
                );
            }
            ExitCode::SUCCESS
        }
        Some(_) | None => usage(),
    }
}
