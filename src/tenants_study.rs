//! The multi-tenant QoS study behind the `tenants` bin: what happens to
//! each job's tail latency as more jobs share one device, on the
//! ION-remote path vs the compute-local one?
//!
//! Lives in the library (not the bin) so `tests/determinism.rs` can pin
//! the rendered study byte-identical at every thread count: the
//! config × density fan-out runs through
//! [`oocnvm_core::tenancy::run_tenancy_batch`] on the thread pool, and
//! the batch API returns reports in input order regardless of
//! `RAYON_NUM_THREADS`.

use nvmtypes::{approx_f64, NvmKind, MIB};
use oocnvm_bench::json_report;
use oocnvm_core::config::SystemConfig;
use oocnvm_core::experiment::ExperimentSpec;
use oocnvm_core::format::Table;
use oocnvm_core::tenancy::{
    run_tenancy_batch, ArrivalProcess, TenancyReport, TenantProfile, TenantSpec,
};
use simobs::json::Json;

/// Schema tag of the tenants JSON document. Version 1: per
/// (config, density) cell the fleet rollup plus one block per tenant
/// with the p50/p90/p99/p999/max of its own request latencies, its
/// exact attribution total, and its arbitration-tagged die time.
pub const SCHEMA: &str = "oocnvm.tenants/1";

/// The tenant mix at density `n`: profiles cycle
/// eigensolve → checkpoint → kv-lookup, each tenant with its own trace
/// seed. The latency-sensitive kv-lookup tenants carry fair-queueing
/// weight 4 (the QoS knob under study); the bandwidth tenants weight 1.
pub fn tenant_mix(n: usize, seed: u64) -> Vec<TenantSpec> {
    (0..n)
        .map(|i| {
            let profile = match i % 3 {
                0 => TenantProfile::Eigensolve {
                    total_bytes: 6 * MIB,
                    record_size: MIB,
                },
                1 => TenantProfile::Checkpoint {
                    read_bytes: 4 * MIB,
                    ckpt_interval_bytes: 2 * MIB,
                    ckpt_bytes: MIB,
                    record_size: MIB,
                },
                _ => TenantProfile::KvLookup {
                    total_bytes: 2 * MIB,
                    value_size: 8192,
                },
            };
            let weight = if i % 3 == 2 { 4 } else { 1 };
            TenantSpec::new(profile)
                .seed(seed.wrapping_add(nvmtypes::u64_from_usize(i)))
                .weight(weight)
        })
        .collect()
}

/// The rendered multi-tenant study.
#[derive(Debug, Clone)]
pub struct TenantsReport {
    /// Human-readable study (the bin prints it verbatim).
    pub text: String,
    /// The [`SCHEMA`] JSON document, via [`oocnvm_bench::json_report`].
    pub json: String,
}

fn line(out: &mut String, s: &str) {
    out.push_str(s);
    out.push('\n');
}

/// Worst (max) p999 among the cell's tenants matching `profile`, ns.
fn worst_p999(report: &TenancyReport, profile: &str) -> u64 {
    report
        .tenants
        .iter()
        .filter(|t| t.profile == profile)
        .map(|t| t.latency.p999)
        .max()
        .unwrap_or(0)
}

/// Renders the whole study — text and JSON — so callers can compare two
/// runs byte-for-byte in both forms. `densities` is the tenant-count
/// axis of the sweep (same mix recipe at every point).
pub fn render_report(seed: u64, densities: &[usize]) -> TenantsReport {
    let configs = [SystemConfig::ion_gpfs(), SystemConfig::cnl_ufs()];
    let arrivals = ArrivalProcess::bursty(200_000, 0.25, seed);

    // One parallel batch covers the config × density fan-out; reports
    // come back in spec order.
    let mut specs = Vec::new();
    for cfg in &configs {
        for &n in densities {
            specs.push(
                ExperimentSpec::new(cfg, NvmKind::Tlc)
                    .tenants(tenant_mix(n, seed))
                    .arrivals(arrivals),
            );
        }
    }
    let reports = run_tenancy_batch(specs);

    let mut out = String::new();
    let mut config_rows = Vec::new();
    line(
        &mut out,
        &format!("== tenant-density sweep: ION-GPFS vs CNL-UFS, TLC, seed {seed} =="),
    );
    line(
        &mut out,
        "mix cycles eigensolve/checkpoint/kv-lookup; kv tenants carry WFQ weight 4",
    );
    for (c, cfg) in configs.iter().enumerate() {
        line(&mut out, &format!("-- {} --", cfg.label));
        let mut t = Table::new([
            "tenants",
            "fleet MB/s",
            "makespan ms",
            "eig p999 us",
            "ckpt p999 us",
            "kv p999 us",
        ]);
        let mut cells = Vec::new();
        for (d, &n) in densities.iter().enumerate() {
            let report = &reports[c * densities.len() + d];
            let tenant_json = report
                .tenants
                .iter()
                .map(|tr| {
                    Json::obj()
                        .field("tenant", Json::u64(u64::from(tr.tenant)))
                        .field("profile", Json::str(tr.profile))
                        .field("weight", Json::u64(tr.weight))
                        .field("arrival_ns", Json::u64(tr.arrival_ns))
                        .field("admitted_ns", Json::u64(tr.admitted_ns))
                        .field("finish_ns", Json::u64(tr.finish_ns))
                        .field("requests", Json::u64(tr.requests))
                        .field("bytes", Json::u64(tr.bytes))
                        .field(
                            "latency_ns",
                            Json::obj()
                                .field("p50", Json::u64(tr.latency.p50))
                                .field("p90", Json::u64(tr.latency.p90))
                                .field("p99", Json::u64(tr.latency.p99))
                                .field("p999", Json::u64(tr.latency.p999))
                                .field("max", Json::u64(tr.latency.max)),
                        )
                        .field("attributed_ns", Json::u64(tr.attribution.total_ns))
                        .field("die_busy_ns", Json::u64(tr.media_busy_ns))
                        .field("media_bytes", Json::u64(tr.media_bytes))
                })
                .collect::<Vec<_>>();
            let fleet = &report.fleet.run;
            cells.push(
                Json::obj()
                    .field("tenants", Json::u64(nvmtypes::u64_from_usize(n)))
                    .field("fleet_mb_s", Json::f64_3(fleet.bandwidth_mb_s))
                    .field("makespan_ns", Json::u64(fleet.makespan))
                    .field(
                        "attribution_exact",
                        Json::Bool(fleet.attribution.is_exact()),
                    )
                    .field("tenant_blocks", Json::Arr(tenant_json)),
            );
            t.row([
                format!("{n}"),
                format!("{:.1}", fleet.bandwidth_mb_s),
                format!("{:.3}", approx_f64(fleet.makespan) / 1e6),
                format!("{:.1}", approx_f64(worst_p999(report, "eigensolve")) / 1e3),
                format!("{:.1}", approx_f64(worst_p999(report, "checkpoint")) / 1e3),
                format!("{:.1}", approx_f64(worst_p999(report, "kv-lookup")) / 1e3),
            ]);
        }
        out.push_str(&t.render());
        config_rows.push(
            Json::obj()
                .field("config", Json::str(cfg.label))
                .field("cells", Json::Arr(cells)),
        );
    }

    // The QoS claim, stated as a checkable line: at the deepest mixed
    // density on CNL, the weight-4 kv tenants' worst p999 must not
    // exceed the weight-1 bulk tenants' — the whole point of WFQ.
    let deepest = &reports[reports.len() - 1];
    let kv = worst_p999(deepest, "kv-lookup");
    let bulk = worst_p999(deepest, "eigensolve").max(worst_p999(deepest, "checkpoint"));
    let qos_holds = deepest.tenants.len() < 3 || kv <= bulk;
    line(
        &mut out,
        &format!(
            "weighted kv-lookup p999 stays at or below bulk p999 under contention: {}",
            if qos_holds { "OK" } else { "FAIL" }
        ),
    );

    let payload = Json::obj()
        .field("seed", Json::u64(seed))
        .field(
            "densities",
            Json::Arr(
                densities
                    .iter()
                    .map(|&n| Json::u64(nvmtypes::u64_from_usize(n)))
                    .collect(),
            ),
        )
        .field(
            "arrivals",
            Json::obj()
                .field("mean_gap_ns", Json::u64(arrivals.mean_gap_ns))
                .field("burst_fraction", Json::f64_3(arrivals.burst_fraction))
                .field("seed", Json::u64(arrivals.seed)),
        )
        .field("qos_holds", Json::Bool(qos_holds))
        .field("configs", Json::Arr(config_rows));
    TenantsReport {
        text: out,
        json: json_report(SCHEMA, payload),
    }
}
