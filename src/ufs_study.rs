//! The crash-consistency study behind the `ufs` bin: does the journaled
//! UFS survive power loss at *every* device write, and what does the
//! journal cost?
//!
//! Lives in the library (not the bin) so `tests/determinism.rs` can pin
//! the rendered study byte-identical at every thread count: the crash
//! matrix fans its cases out on the thread pool via
//! [`ufs::crash_matrix`], which collects outcomes in case order
//! regardless of `RAYON_NUM_THREADS`.

use nvmtypes::{NvmKind, MIB};
use ooc::lobpcg::{Lobpcg, LobpcgOptions, TracedOperator};
use ooc::{HamiltonianSpec, OocMatrix, UfsMatrix, UfsOperator};
use oocnvm_bench::json_report;
use oocnvm_core::config::SystemConfig;
use oocnvm_core::experiment::{run_batch, ExperimentSpec};
use oocnvm_core::format::Table;
use oocnvm_core::workload::synthetic_ooc_trace;
use ooctrace::TraceCapture;
use simobs::json::Json;
use ufs::{crash_matrix, CrashMatrixParams, UfsParams};

/// Schema tag of the UFS JSON document. Version 2 adds
/// `replay.write_amp` — the journaled replay's device bytes decomposed
/// into user / COW / journal / apply traffic (from
/// [`ufs::WriteAmp`]), itemising exactly where the ~390% replay
/// overhead goes. No v1 field was renamed or removed.
pub const SCHEMA: &str = "oocnvm.ufs/2";

/// Appends one report line.
fn line(out: &mut String, s: &str) {
    out.push_str(s);
    out.push('\n');
}

/// The rendered crash-consistency study.
#[derive(Debug, Clone)]
pub struct UfsReport {
    /// Human-readable study (the bin prints it verbatim).
    pub text: String,
    /// The [`SCHEMA`] JSON document, via [`oocnvm_bench::json_report`].
    pub json: String,
}

/// Crash-matrix scale for the study: `smoke` shrinks the workload so the
/// exhaustive sweep stays in CI budget.
fn matrix_params(seed: u64, smoke: bool) -> CrashMatrixParams {
    if smoke {
        CrashMatrixParams {
            device_sectors: 512,
            fs: UfsParams {
                max_files: 8,
                journal_sectors: 16,
            },
            files: 2,
            rounds: 2,
            payload_bytes: 5000,
            seed,
        }
    } else {
        CrashMatrixParams {
            seed,
            ..CrashMatrixParams::default()
        }
    }
}

/// Renders the whole study — text and JSON — so callers can compare two
/// runs byte-for-byte in both forms.
pub fn render_report(seed: u64, smoke: bool) -> UfsReport {
    let mut out = String::new();

    // 1. The exhaustive crash-point sweep: power loss during every
    //    device write of a deterministic workload, dropped and torn,
    //    each remounted and verified against the committed prefix.
    line(&mut out, "== exhaustive crash-point sweep ==");
    let params = matrix_params(seed, smoke);
    let (matrix_json, matrix_ok) = match crash_matrix(&params) {
        Ok(report) => {
            out.push_str(&report.render());
            let j = Json::obj()
                .field("total_writes", Json::u64(report.total_writes))
                .field("commits", Json::u64(report.commits))
                .field("cases", Json::u64(report.cases))
                .field("cases_replayed", Json::u64(report.cases_replayed))
                .field("cases_discarded", Json::u64(report.cases_discarded))
                .field("digest", Json::u64(u64::from(report.digest)));
            (j, true)
        }
        Err(e) => {
            line(&mut out, &format!("crash matrix FAILED: {e}"));
            (
                Json::obj().field("error", Json::str(&format!("{e}"))),
                false,
            )
        }
    };
    line(
        &mut out,
        &format!(
            "every crash point recovered to the committed prefix: {}",
            if matrix_ok { "OK" } else { "FAIL" }
        ),
    );

    // 2. The journal's price at the device: the same POSIX trace through
    //    the parameterised UFS model and through the real journaled
    //    filesystem, replayed on the same CNL device.
    out.push('\n');
    line(
        &mut out,
        "== journal overhead: model UFS vs journaled UFS on CNL/TLC ==",
    );
    let trace_mib = if smoke { 4 } else { 16 };
    let trace = synthetic_ooc_trace(trace_mib * MIB, MIB, seed);
    let cnl = SystemConfig::cnl_ufs();
    let reports = run_batch(
        vec![
            ExperimentSpec::new(&cnl, NvmKind::Tlc),
            ExperimentSpec::new(&cnl, NvmKind::Tlc).journaled_ufs(true),
        ],
        &trace,
    );
    let (model, journaled) = (&reports[0], &reports[1]);
    let overhead_pct = if model.run.total_bytes > 0 {
        nvmtypes::approx_f64(journaled.run.total_bytes)
            / nvmtypes::approx_f64(model.run.total_bytes)
            * 100.0
            - 100.0
    } else {
        0.0
    };
    let mut t = Table::new(["path", "requests", "total bytes", "MB/s"]);
    t.row([
        "model".into(),
        format!("{}", model.run.requests),
        format!("{}", model.run.total_bytes),
        format!("{:.1}", model.bandwidth_mb_s),
    ]);
    t.row([
        "journaled".into(),
        format!("{}", journaled.run.requests),
        format!("{}", journaled.run.total_bytes),
        format!("{:.1}", journaled.bandwidth_mb_s),
    ]);
    out.push_str(&t.render());
    line(
        &mut out,
        &format!("journal byte overhead: {overhead_pct:.2}% over the model path"),
    );

    // Where that overhead goes: the filesystem's own write-amplification
    // counters decompose the journaled device traffic into user bytes,
    // copy-on-write data, journal records and metadata applies.
    let wa = ufs::JournaledUfs::default()
        .transform_with_stats(&trace)
        .map(|(_, wa)| wa)
        .unwrap_or_default();
    line(
        &mut out,
        &format!(
            "write amplification: user={} cow={} journal={} apply={} bytes, {} commits → {} permille device/user",
            wa.user_bytes,
            wa.cow_bytes,
            wa.journal_bytes,
            wa.apply_bytes,
            wa.commits,
            wa.device_per_user_permille()
        ),
    );

    // 3. The solver on the real filesystem: LOBPCG over the UFS-backed
    //    panel store must match the in-memory backing bit for bit.
    out.push('\n');
    line(
        &mut out,
        "== LOBPCG over the journaled panel store vs in-memory ==",
    );
    let dim = if smoke { 80 } else { 160 };
    let h = HamiltonianSpec::tiny(dim).generate();
    let mem = OocMatrix::build(&h, 16, 0, None);
    let opts = LobpcgOptions {
        block_size: 3,
        max_iters: 60,
        seed,
        ..LobpcgOptions::default()
    };
    let (cap_mem, cap_fs) = (TraceCapture::new(), TraceCapture::new());
    let a = Lobpcg::new(opts).solve(&TracedOperator::new(&mem, &cap_mem));
    let (store_ok, trace_ok, b_iters) = match UfsMatrix::build(&h, 16, 0, None) {
        Ok(fsm) => {
            let b = Lobpcg::new(opts).solve(&UfsOperator::new(&fsm, &cap_fs));
            (
                a.eigenvalues == b.eigenvalues,
                cap_mem.into_trace() == cap_fs.into_trace(),
                b.iterations,
            )
        }
        Err(_) => (false, false, 0),
    };
    line(
        &mut out,
        &format!(
            "dim {dim}: {} iters in memory, {} iters on UFS; eigenvalues bit-identical: {}; POSIX trace identical: {}",
            a.iterations,
            b_iters,
            if store_ok { "OK" } else { "FAIL" },
            if trace_ok { "OK" } else { "FAIL" }
        ),
    );

    let payload = Json::obj()
        .field("seed", Json::u64(seed))
        .field("smoke", Json::Bool(smoke))
        .field("crash_matrix", matrix_json)
        .field(
            "replay",
            Json::obj()
                .field("model_requests", Json::u64(model.run.requests))
                .field("model_bytes", Json::u64(model.run.total_bytes))
                .field("model_mb_s", Json::f64_3(model.bandwidth_mb_s))
                .field("journaled_requests", Json::u64(journaled.run.requests))
                .field("journaled_bytes", Json::u64(journaled.run.total_bytes))
                .field("journaled_mb_s", Json::f64_3(journaled.bandwidth_mb_s))
                .field("journal_overhead_pct", Json::f64_3(overhead_pct))
                .field(
                    "write_amp",
                    Json::obj()
                        .field("user_bytes", Json::u64(wa.user_bytes))
                        .field("cow_bytes", Json::u64(wa.cow_bytes))
                        .field("journal_bytes", Json::u64(wa.journal_bytes))
                        .field("apply_bytes", Json::u64(wa.apply_bytes))
                        .field("commits", Json::u64(wa.commits))
                        .field("recovery_replays", Json::u64(wa.recovery_replays))
                        .field(
                            "device_per_user_permille",
                            Json::u64(wa.device_per_user_permille()),
                        ),
                ),
        )
        .field(
            "solver",
            Json::obj()
                .field("dim", Json::u64(nvmtypes::u64_from_usize(dim)))
                .field("eigenvalues_identical", Json::Bool(store_ok))
                .field("trace_identical", Json::Bool(trace_ok)),
        );
    UfsReport {
        text: out,
        json: json_report(SCHEMA, payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_study_passes_and_is_deterministic() {
        let a = render_report(42, true);
        assert!(!a.text.contains("FAIL"), "{}", a.text);
        assert!(a.json.starts_with('{'));
        assert!(a.json.contains(SCHEMA));
        // The v2 addition: the journal overhead is itemised.
        let doc = simobs::json::parse(&a.json).expect("well-formed");
        let wa = doc
            .get("replay")
            .and_then(|r| r.get("write_amp"))
            .expect("v2 carries replay.write_amp");
        for f in ["user_bytes", "cow_bytes", "journal_bytes", "apply_bytes"] {
            assert!(wa.get(f).is_some(), "missing write_amp.{f}");
        }
        let b = render_report(42, true);
        assert_eq!(a.text, b.text);
        assert_eq!(a.json, b.json);
    }
}
