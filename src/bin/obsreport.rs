//! `obsreport` — deterministic observability report for one experiment.
//!
//! ```text
//! cargo run --release --bin obsreport [-- --smoke] [--seed N] [--out PATH]
//! ```
//!
//! Runs the paper's CNL-UFS configuration (TLC media) under the `light`
//! fault plan with a ring-buffered tracer attached, then a small LOBPCG
//! solve on the solver lane of the same tracer, and:
//!
//! 1. exports the collected events as Chrome trace-event JSON (loadable
//!    in Perfetto / `chrome://tracing`; see docs/OBSERVABILITY.md) to
//!    `--out` (default `target/obsreport.trace.json`),
//! 2. validates the emitted document with simobs's own JSON parser,
//! 3. prints the text flamegraph rollup and the per-layer latency
//!    attribution table (components must sum to the measured total),
//! 4. proves the observer effect is zero: the traced run's report is
//!    byte-identical to an untraced run, and a second traced run
//!    produces byte-identical trace JSON.
//!
//! Exit status is non-zero if any of those checks fail, which is what
//! `scripts/check.sh` leans on.

use nvmtypes::{FaultPlan, NvmKind, MIB};
use oocnvm::core::config::SystemConfig;
use oocnvm::core::experiment::{run_experiment_observed, run_experiment_with_faults};
use oocnvm::core::workload::synthetic_ooc_trace;
use oocnvm::ooc::lobpcg::{Lobpcg, LobpcgOptions};
use oocnvm::ooc::HamiltonianSpec;
use oocnvm::simobs::json::{parse, Json};
use oocnvm::simobs::{chrome_trace, rollup, Tracer};
use std::process::ExitCode;

/// Event capacity of the bounded ring sink; overflow is counted, not
/// silently lost, and surfaces in the export header.
const RING_CAPACITY: usize = 65_536;

fn flag_value(args: &[String], key: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn flag_str(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// One traced experiment + solver pass; returns the rendered device
/// report and the exported trace JSON.
fn traced_pass(seed: u64, trace_mib: u64, solver_dim: usize) -> (String, String, String, String) {
    let trace = synthetic_ooc_trace(trace_mib * MIB, MIB, seed);
    let mut obs = Tracer::ring(RING_CAPACITY);
    let report = run_experiment_observed(
        &SystemConfig::cnl_ufs(),
        NvmKind::Tlc,
        &trace,
        FaultPlan::light(seed),
        &mut obs,
    );

    // A small in-core LOBPCG solve rides on the solver lane: iterations
    // tick a logical microsecond clock (docs/OBSERVABILITY.md).
    let h = HamiltonianSpec::medium(solver_dim).generate();
    let _solved = Lobpcg::new(LobpcgOptions {
        block_size: 4,
        max_iters: 60,
        tol: 1e-6,
        seed,
        precondition: true,
    })
    .solve_observed(&h, &mut obs);

    let log = obs.finish();
    (
        format!("{:?}", report.run),
        chrome_trace(&log),
        rollup(&log),
        report.run.attribution.table(),
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed = flag_value(&args, "--seed").unwrap_or(42);
    let out_path =
        flag_str(&args, "--out").unwrap_or_else(|| "target/obsreport.trace.json".to_string());
    let (trace_mib, solver_dim) = if smoke { (4, 120) } else { (32, 240) };

    println!("== obsreport: CNL-UFS / TLC, {trace_mib} MiB, light faults, seed {seed} ==");
    let (rendered, trace_json, flame, attrib) = traced_pass(seed, trace_mib, solver_dim);

    let mut ok = true;

    // Observer effect must be zero: the same run without a tracer renders
    // the identical report, byte for byte.
    let untraced = {
        let trace = synthetic_ooc_trace(trace_mib * MIB, MIB, seed);
        let rep = run_experiment_with_faults(
            &SystemConfig::cnl_ufs(),
            NvmKind::Tlc,
            &trace,
            FaultPlan::light(seed),
        );
        format!("{:?}", rep.run)
    };
    let observer_free = untraced == rendered;
    println!(
        "tracing leaves the simulation result untouched: {}",
        if observer_free { "OK" } else { "FAIL" }
    );
    ok &= observer_free;

    // Same seed, same trace bytes.
    let (_, trace_json2, _, _) = traced_pass(seed, trace_mib, solver_dim);
    let replay_identical = trace_json == trace_json2;
    println!(
        "same-seed re-run exports byte-identical trace JSON: {}",
        if replay_identical { "OK" } else { "FAIL" }
    );
    ok &= replay_identical;

    // The export must parse with our own reader and carry the header.
    match parse(&trace_json) {
        Ok(doc) => {
            let format_tag = doc.get("otherData").and_then(|o| o.get("format")).cloned();
            let tagged = format_tag == Some(Json::str(oocnvm::simobs::export::TRACE_FORMAT));
            println!(
                "exported JSON parses and is format-tagged: {}",
                if tagged { "OK" } else { "FAIL" }
            );
            ok &= tagged;
        }
        Err(e) => {
            println!("exported JSON parses: FAIL ({e})");
            ok = false;
        }
    }

    let exact = attrib.contains("components sum to total exactly: OK");
    println!(
        "latency attribution components sum to the measured total: {}",
        if exact { "OK" } else { "FAIL" }
    );
    ok &= exact;

    match std::fs::write(&out_path, &trace_json) {
        Ok(()) => println!(
            "trace written to {out_path} ({} bytes) — open in https://ui.perfetto.dev",
            trace_json.len()
        ),
        Err(e) => {
            println!("trace write to {out_path} failed: {e}");
            ok = false;
        }
    }

    println!();
    print!("{flame}");
    println!();
    print!("{attrib}");

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
