//! `obsreport` — deterministic observability report for one experiment.
//!
//! ```text
//! cargo run --release --bin obsreport [-- --smoke] [--seed N] [--out PATH] [--json PATH]
//! ```
//!
//! Runs the paper's CNL-UFS configuration (TLC media) under the `light`
//! fault plan with a ring-buffered tracer attached, then a small LOBPCG
//! solve on the solver lane of the same tracer, and:
//!
//! 1. exports the collected events as Chrome trace-event JSON (loadable
//!    in Perfetto / `chrome://tracing`; see docs/OBSERVABILITY.md) to
//!    `--out` (default `target/obsreport.trace.json`),
//! 2. validates the emitted document with simobs's own JSON parser,
//! 3. prints the text flamegraph rollup and the per-layer latency
//!    attribution table (components must sum to the measured total),
//! 4. proves the observer effect is zero: the traced run's report is
//!    byte-identical to an untraced run, and a second traced run
//!    produces byte-identical trace JSON.
//!
//! `--json <path>` additionally writes a versioned summary
//! (`oocnvm.obsreport/1`) of the checks. Exit status is non-zero if any
//! check fails, which is what `scripts/check.sh` leans on.
//!
//! The study itself lives in [`oocnvm::obsreport`].

use oocnvm::bench::cli::StudyArgs;
use oocnvm::obsreport::report;
use std::process::ExitCode;

fn check(label: &str, ok: bool) {
    println!("{label}: {}", if ok { "OK" } else { "FAIL" });
}

fn main() -> ExitCode {
    let args = match StudyArgs::from_env() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("obsreport: {e}");
            return ExitCode::from(2);
        }
    };
    let smoke = args.smoke;
    let seed = args.seed_or(42);
    let out_path = args
        .out
        .unwrap_or_else(|| "target/obsreport.trace.json".to_string());
    let json_path = args.json;
    let (trace_mib, solver_dim) = if smoke { (4, 120) } else { (32, 240) };

    println!("== obsreport: CNL-UFS / TLC, {trace_mib} MiB, light faults, seed {seed} ==");
    let study = report(seed, trace_mib, solver_dim);
    let mut ok = study.all_ok();

    check(
        "tracing leaves the simulation result untouched",
        study.observer_free,
    );
    check(
        "same-seed re-run exports byte-identical trace JSON",
        study.replay_identical,
    );
    check(
        "exported JSON parses and is format-tagged",
        study.parsed_and_tagged,
    );
    check(
        "latency attribution components sum to the measured total",
        study.attribution_exact,
    );

    match std::fs::write(&out_path, &study.pass.trace_json) {
        Ok(()) => println!(
            "trace written to {out_path} ({} bytes) — open in https://ui.perfetto.dev",
            study.pass.trace_json.len()
        ),
        Err(e) => {
            println!("trace write to {out_path} failed: {e}");
            ok = false;
        }
    }

    if let Some(path) = json_path {
        match std::fs::write(&path, &study.json) {
            Ok(()) => println!("summary json written to {path}"),
            Err(e) => {
                println!("summary json write to {path} failed: {e}");
                ok = false;
            }
        }
    }

    println!();
    print!("{}", study.pass.flame);
    println!();
    print!("{}", study.pass.attrib);

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
