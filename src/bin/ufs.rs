//! `ufs` — the crash-consistency study: exhaustive power-loss recovery
//! testing of the journaled UFS, the journal's device-level cost, and
//! the eigensolver on the real filesystem.
//!
//! ```text
//! cargo run --release --bin ufs [-- --smoke] [--seed N] [--json PATH]
//! ```
//!
//! Runs the exhaustive crash-point sweep (power loss during every device
//! write of a deterministic workload, dropped and torn, each remounted
//! and verified), compares the model-UFS and journaled-UFS block traces
//! on the same device, solves LOBPCG over the UFS-backed panel store,
//! and finally re-runs the whole study with the same seed to prove the
//! output is byte-identical. `--smoke` shrinks the workload for CI;
//! `--json <path>` also writes the study in a stable versioned schema
//! (`oocnvm.ufs/2`), covered by the same byte-identity check.
//!
//! The study itself lives in [`oocnvm::ufs_study`].

use oocnvm::bench::cli::StudyArgs;
use oocnvm::ufs_study::render_report;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let args = match StudyArgs::from_env() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("ufs: {e}");
            return ExitCode::from(2);
        }
    };
    let smoke = args.smoke;
    let seed = args.seed_or(42);
    let json_path = args.json;

    let wall = Instant::now();
    let report = render_report(seed, smoke);
    print!("{}", report.text);

    // The determinism contract: the identical seed must reproduce the
    // identical study, byte for byte — text and JSON both.
    let again = render_report(seed, smoke);
    let deterministic = report.text == again.text && report.json == again.json;
    println!();
    println!(
        "same-seed re-run is byte-identical: {}",
        if deterministic { "OK" } else { "FAIL" }
    );
    println!("wall time: {:.2}s", wall.elapsed().as_secs_f64());

    if let Some(path) = json_path {
        match std::fs::write(&path, &report.json) {
            Ok(()) => println!("json written to {path}"),
            Err(e) => {
                println!("json write to {path} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if !deterministic || report.text.contains("FAIL") {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
