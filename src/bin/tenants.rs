//! `tenants` — the multi-tenant QoS study: per-tenant tail latency as
//! more jobs share one device, ION-remote vs compute-local.
//!
//! ```text
//! cargo run --release --bin tenants -- \
//!     [--smoke] [--seed N] [--json PATH] [--baseline PATH]
//! ```
//!
//! Sweeps tenant density (a cycling eigensolve/checkpoint/kv-lookup
//! mix with bursty seeded arrivals, kv tenants at WFQ weight 4) over
//! the ION-GPFS and CNL-UFS configurations in one parallel batch, then
//! re-renders the study with the same seed to prove the output is
//! byte-identical. Everything in the JSON is simulated time, so the
//! document is exactly reproducible: in `--smoke` mode it is diffed
//! byte-for-byte against the committed baseline
//! (`results/BENCH_tenants.json` by default) and any drift fails the
//! gate.
//!
//! To regenerate the baseline after an intentional change:
//! `cargo run --release --bin tenants -- --smoke --json results/BENCH_tenants.json`.
//!
//! The study itself lives in [`oocnvm::tenants_study`].

use oocnvm::bench::cli::StudyArgs;
use oocnvm::tenants_study::render_report;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = match StudyArgs::from_env() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("tenants: {e}");
            return ExitCode::from(2);
        }
    };
    let smoke = args.smoke;
    let seed = args.seed_or(42);
    let densities: &[usize] = if smoke { &[1, 3, 6] } else { &[1, 3, 6, 12] };

    let report = render_report(seed, densities);
    print!("{}", report.text);

    // The determinism contract: the identical seed must reproduce the
    // identical study, byte for byte, in the same process — the text
    // report and the JSON document both.
    let again = render_report(seed, densities);
    let deterministic = report.text == again.text && report.json == again.json;
    println!();
    println!(
        "same-seed re-run is byte-identical: {}",
        if deterministic { "OK" } else { "FAIL" }
    );

    let mut failed = !deterministic || report.text.contains("FAIL");

    if let Some(path) = &args.json {
        match std::fs::write(path, &report.json) {
            Ok(()) => println!("json written to {path}"),
            Err(e) => {
                println!("json write to {path} failed: {e}");
                failed = true;
            }
        }
    }

    // The smoke sweep is pinned: its JSON must match the committed
    // baseline byte-for-byte (all-simulated quantities — no tolerance
    // band needed). The full sweep uses a longer density axis, so it
    // only checks a baseline the caller names explicitly.
    let baseline_path = args
        .baseline
        .unwrap_or_else(|| "results/BENCH_tenants.json".to_string());
    if smoke {
        match std::fs::read_to_string(&baseline_path) {
            Ok(baseline) => {
                if baseline == report.json {
                    println!("baseline {baseline_path}: OK (byte-identical)");
                } else {
                    println!("baseline {baseline_path}: DRIFT — study output changed");
                    println!("(regenerate with: tenants --smoke --json {baseline_path})");
                    failed = true;
                }
            }
            Err(e) => {
                println!("baseline {baseline_path} not readable: {e}");
                println!("(regenerate with: tenants --smoke --json {baseline_path})");
                failed = true;
            }
        }
    }

    if failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
