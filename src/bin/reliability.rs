//! `reliability` — the fault-injection study: what do media, link and
//! node faults cost the ION-remote and compute-local paths?
//!
//! ```text
//! cargo run --release --bin reliability [-- --smoke] [--seed N] [--json PATH]
//! ```
//!
//! Sweeps the built-in fault-plan presets (`none`, `light`, `moderate`,
//! `heavy`) over the ION-GPFS and CNL-UFS configurations in one parallel
//! batch, runs a LOBPCG solve with node kills and checkpoint/restart,
//! prints the degraded-mode cluster curve, and finally re-runs the whole
//! study with the same seed to prove the output is byte-identical (the
//! determinism contract of docs/FAULT_MODEL.md and
//! docs/PARALLELISM.md). `--smoke` shrinks the workload for CI;
//! `--json <path>` also writes the study in a stable versioned schema
//! (`oocnvm.reliability/3`), covered by the same byte-identity check.
//!
//! The study itself lives in [`oocnvm::reliability`].

use oocnvm::bench::cli::StudyArgs;
use oocnvm::reliability::render_report;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = match StudyArgs::from_env() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("reliability: {e}");
            return ExitCode::from(2);
        }
    };
    let smoke = args.smoke;
    let seed = args.seed_or(42);
    let json_path = args.json;
    let (trace_mib, solver_dim) = if smoke { (4, 120) } else { (16, 600) };

    let report = render_report(seed, trace_mib, solver_dim);
    print!("{}", report.text);

    // The determinism contract: the identical seed must reproduce the
    // identical study, byte for byte, in the same process — the text
    // report and the JSON document both.
    let again = render_report(seed, trace_mib, solver_dim);
    let deterministic = report.text == again.text && report.json == again.json;
    println!();
    println!(
        "same-seed re-run is byte-identical: {}",
        if deterministic { "OK" } else { "FAIL" }
    );

    if let Some(path) = json_path {
        match std::fs::write(&path, &report.json) {
            Ok(()) => println!("json written to {path}"),
            Err(e) => {
                println!("json write to {path} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if !deterministic || report.text.contains("FAIL") {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
