//! The fault-injection study behind the `reliability` bin: what do
//! media, link and node faults cost the ION-remote and compute-local
//! paths?
//!
//! Lives in the library (not the bin) so `tests/determinism.rs` can pin
//! the rendered study byte-identical at every thread count: the
//! plan × config fan-out runs through
//! [`oocnvm_core::experiment::run_batch`] on the thread pool, and the
//! batch API returns reports in input order regardless of
//! `RAYON_NUM_THREADS`.

use nvmtypes::fault::{NodeFaultProfile, STREAM_NODE};
use nvmtypes::{approx_f64, FaultPlan, NvmKind, MIB};
use ooc::checkpoint::solve_with_recovery;
use ooc::lobpcg::{Lobpcg, LobpcgOptions};
use ooc::HamiltonianSpec;
use oocnvm_bench::json_report;
use oocnvm_core::cluster::{degraded_curve, ClusterSpec, NodeRates};
use oocnvm_core::config::SystemConfig;
use oocnvm_core::experiment::{run_batch, ExperimentSpec};
use oocnvm_core::format::Table;
use oocnvm_core::workload::{checkpoint_trace, synthetic_ooc_trace};
use simobs::json::Json;

/// Schema tag of the reliability JSON document. Version 2 added a
/// per-plan `cnl_latency_ns` object (p50/p99/p999 of the CNL path's
/// request latencies under that fault plan, from the run's HDR
/// histogram) — fault plans move the latency *tail* long before they
/// dent mean bandwidth, so the sweep now shows it. Version 3 adds a
/// `journaled_ufs_sweep` array (the same fault presets replayed through
/// the crash-consistent journaled UFS on the CNL path, with its own
/// zero-plan identity bit) so journal write amplification under faults
/// is pinned too. Purely additive: no v1/v2 field was renamed or
/// removed (see `docs/PROFILING.md`).
pub const SCHEMA: &str = "oocnvm.reliability/3";

/// The four presets of the sweep (≥ 3 non-zero settings per the
/// acceptance bar, plus the all-zero control).
pub fn plans(seed: u64) -> [(&'static str, FaultPlan); 4] {
    [
        ("none", FaultPlan::none()),
        ("light", FaultPlan::light(seed)),
        ("moderate", FaultPlan::moderate(seed)),
        ("heavy", FaultPlan::heavy(seed)),
    ]
}

/// Appends one report line (plain `String` building: nothing to unwrap,
/// nothing for `let _ =` to discard).
fn line(out: &mut String, s: &str) {
    out.push_str(s);
    out.push('\n');
}

/// The rendered fault-injection study.
#[derive(Debug, Clone)]
pub struct ReliabilityReport {
    /// Human-readable study (the bin prints it verbatim).
    pub text: String,
    /// The [`SCHEMA`] JSON document, via [`oocnvm_bench::json_report`].
    pub json: String,
}

/// Renders the whole study — text and JSON — so callers can compare two
/// runs byte-for-byte in both forms.
pub fn render_report(seed: u64, trace_mib: u64, solver_dim: usize) -> ReliabilityReport {
    let mut out = String::new();
    let mut sweep_rows = Vec::new();
    let trace = synthetic_ooc_trace(trace_mib * MIB, MIB, seed);
    let ion = SystemConfig::ion_gpfs();
    let cnl = SystemConfig::cnl_ufs();

    line(
        &mut out,
        &format!("== fault sweep: ION-GPFS vs CNL-UFS, TLC, {trace_mib} MiB, seed {seed} =="),
    );
    let mut t = Table::new([
        "plan",
        "ION MB/s",
        "CNL MB/s",
        "CNL/ION",
        "ecc retries",
        "crc errs",
        "bad blks",
        "recov ms",
    ]);

    // One parallel batch covers the whole plan × config fan-out plus the
    // two fault-free baselines for the zero-plan identity check; reports
    // come back in spec order.
    let plan_list = plans(seed);
    let mut specs = Vec::new();
    for (_, plan) in plan_list {
        specs.push(ExperimentSpec::new(&ion, NvmKind::Tlc).faults(plan));
        specs.push(ExperimentSpec::new(&cnl, NvmKind::Tlc).faults(plan));
    }
    specs.push(ExperimentSpec::new(&ion, NvmKind::Tlc));
    specs.push(ExperimentSpec::new(&cnl, NvmKind::Tlc));
    let reports = run_batch(specs, &trace);

    // The same presets once more through the crash-consistent journaled
    // UFS on the CNL path, plus its own fault-free baseline for the
    // zero-plan identity check. This sweep replays a write-heavy
    // checkpoint trace (reads never touch the journal, so the read
    // trace above would pin a vacuous 1.00x amplification).
    let ckpt_trace = checkpoint_trace(trace_mib * MIB, 2 * MIB, MIB, MIB, seed);
    let mut journal_specs = Vec::new();
    for (_, plan) in plan_list {
        journal_specs.push(
            ExperimentSpec::new(&cnl, NvmKind::Tlc)
                .journaled_ufs(true)
                .faults(plan),
        );
    }
    journal_specs.push(ExperimentSpec::new(&cnl, NvmKind::Tlc).journaled_ufs(true));
    let journal_reports = run_batch(journal_specs, &ckpt_trace);

    let mut zero_fault_ok = true;
    for (i, (name, plan)) in plan_list.iter().enumerate() {
        let ir = &reports[2 * i];
        let cr = &reports[2 * i + 1];
        if plan.is_none() {
            // The zero-rate plan must reproduce the fault-free driver
            // exactly — not just close: byte-identical reports.
            let base_i = &reports[2 * plan_list.len()];
            let base_c = &reports[2 * plan_list.len() + 1];
            zero_fault_ok = format!("{:?}", ir.run) == format!("{:?}", base_i.run)
                && format!("{:?}", cr.run) == format!("{:?}", base_c.run);
        }
        let rel = &cr.run.reliability;
        let lat = cr.run.latency_hdr.percentiles();
        sweep_rows.push(
            Json::obj()
                .field("plan", Json::str(name))
                .field("ion_mb_s", Json::f64_3(ir.bandwidth_mb_s))
                .field("cnl_mb_s", Json::f64_3(cr.bandwidth_mb_s))
                .field(
                    "cnl_latency_ns",
                    Json::obj()
                        .field("p50", Json::u64(lat.p50))
                        .field("p99", Json::u64(lat.p99))
                        .field("p999", Json::u64(lat.p999)),
                )
                .field("ecc_retries", Json::u64(rel.ecc_retries))
                .field(
                    "crc_errors",
                    Json::u64(rel.link.crc_errors + ir.run.reliability.link.crc_errors),
                )
                .field("bad_blocks_remapped", Json::u64(rel.bad_blocks_remapped))
                .field("total_recovery_ns", Json::u64(rel.total_recovery_ns())),
        );
        t.row([
            name.to_string(),
            format!("{:.1}", ir.bandwidth_mb_s),
            format!("{:.1}", cr.bandwidth_mb_s),
            format!("{:.2}x", cr.bandwidth_mb_s / ir.bandwidth_mb_s),
            format!("{}", rel.ecc_retries),
            format!(
                "{}",
                rel.link.crc_errors + ir.run.reliability.link.crc_errors
            ),
            format!("{}", rel.bad_blocks_remapped),
            format!("{:.3}", approx_f64(rel.total_recovery_ns()) / 1e6),
        ]);
    }
    out.push_str(&t.render());
    line(
        &mut out,
        &format!(
            "zero-fault plan reproduces the fault-free driver byte-identically: {}",
            if zero_fault_ok { "OK" } else { "FAIL" }
        ),
    );

    out.push('\n');
    line(
        &mut out,
        "== same presets through the journaled UFS (CNL, write-heavy checkpoint trace) ==",
    );
    let mut t = Table::new(["plan", "CNL MB/s", "p999 us", "ecc retries", "recov ms"]);
    let mut journal_rows = Vec::new();
    let mut journal_zero_ok = true;
    for (i, (name, plan)) in plan_list.iter().enumerate() {
        let jr = &journal_reports[i];
        if plan.is_none() {
            // Same contract as the direct path: the zero-rate plan must
            // reproduce the fault-free journaled run byte-identically.
            let base = &journal_reports[plan_list.len()];
            journal_zero_ok = format!("{:?}", jr.run) == format!("{:?}", base.run);
        }
        let rel = &jr.run.reliability;
        let lat = jr.run.latency_hdr.percentiles();
        journal_rows.push(
            Json::obj()
                .field("plan", Json::str(name))
                .field("cnl_mb_s", Json::f64_3(jr.bandwidth_mb_s))
                .field("total_bytes", Json::u64(jr.run.total_bytes))
                .field(
                    "latency_ns",
                    Json::obj()
                        .field("p50", Json::u64(lat.p50))
                        .field("p99", Json::u64(lat.p99))
                        .field("p999", Json::u64(lat.p999)),
                )
                .field("ecc_retries", Json::u64(rel.ecc_retries))
                .field("bad_blocks_remapped", Json::u64(rel.bad_blocks_remapped))
                .field("total_recovery_ns", Json::u64(rel.total_recovery_ns())),
        );
        t.row([
            name.to_string(),
            format!("{:.1}", jr.bandwidth_mb_s),
            format!("{:.1}", approx_f64(lat.p999) / 1e3),
            format!("{}", rel.ecc_retries),
            format!("{:.3}", approx_f64(rel.total_recovery_ns()) / 1e6),
        ]);
    }
    out.push_str(&t.render());
    // Journal write amplification is a property of the filesystem
    // transform, not of the fault plan: decompose it once for the
    // checkpoint trace every plan above replayed.
    let wa = ufs::JournaledUfs::default()
        .transform_with_stats(&ckpt_trace)
        .map(|(_, wa)| wa)
        .unwrap_or_default();
    line(
        &mut out,
        &format!(
            "journal write amplification: user={} cow={} journal={} apply={} bytes ({} permille device/user)",
            wa.user_bytes,
            wa.cow_bytes,
            wa.journal_bytes,
            wa.apply_bytes,
            wa.device_per_user_permille()
        ),
    );
    line(
        &mut out,
        &format!(
            "zero-fault plan reproduces the fault-free journaled run byte-identically: {}",
            if journal_zero_ok { "OK" } else { "FAIL" }
        ),
    );

    out.push('\n');
    line(
        &mut out,
        &format!("== node kills mid-LOBPCG (dim {solver_dim}, checkpoint to local NVM) =="),
    );
    let h = HamiltonianSpec::medium(solver_dim).generate();
    let solver = Lobpcg::new(LobpcgOptions {
        block_size: 4,
        max_iters: 400,
        tol: 1e-7,
        seed,
        precondition: true,
    });
    let plain = solver.solve(&h);
    let profile = NodeFaultProfile {
        crash_prob_per_iter: 0.08,
        checkpoint_every: 5,
        restart_penalty_ns: 2_000_000_000,
        max_crashes: 8,
    };
    let mut rng = FaultPlan {
        seed,
        ..FaultPlan::none()
    }
    .rng()
    .split(STREAM_NODE);
    let rec = solve_with_recovery(&solver, &h, &profile, &mut rng);
    let drift = rec
        .result
        .eigenvalues
        .iter()
        .zip(&plain.eigenvalues)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0_f64, f64::max);
    line(
        &mut out,
        &format!(
            "fault-free solve:  {} iters, converged: {}",
            plain.iterations, plain.converged
        ),
    );
    line(&mut out, &format!(
        "with node kills:   {} iters, converged: {}, {} node losses, {} checkpoints ({} KiB), {} iters replayed",
        rec.result.iterations,
        rec.result.converged,
        rec.recovery.node_losses,
        rec.recovery.checkpoints,
        rec.recovery.checkpoint_bytes >> 10,
        rec.recovery.iterations_replayed
    ));
    line(&mut out, &format!(
        "recovery overhead: {:.1} ms restarts + {:.3} ms checkpoint writes; max eigenvalue drift {drift:.2e}",
        approx_f64(rec.recovery.restart_ns) / 1e6,
        approx_f64(rec.recovery.checkpoint_ns) / 1e6
    ));
    let solver_json = Json::obj()
        .field("dim", Json::u64(nvmtypes::u64_from_usize(solver_dim)))
        .field(
            "fault_free_iters",
            Json::u64(nvmtypes::u64_from_usize(plain.iterations)),
        )
        .field("fault_free_converged", Json::Bool(plain.converged))
        .field(
            "recovered_iters",
            Json::u64(nvmtypes::u64_from_usize(rec.result.iterations)),
        )
        .field("recovered_converged", Json::Bool(rec.result.converged))
        .field("node_losses", Json::u64(rec.recovery.node_losses))
        .field("checkpoints", Json::u64(rec.recovery.checkpoints))
        .field("checkpoint_bytes", Json::u64(rec.recovery.checkpoint_bytes))
        .field(
            "iterations_replayed",
            Json::u64(rec.recovery.iterations_replayed),
        )
        .field("restart_ns", Json::u64(rec.recovery.restart_ns))
        .field("checkpoint_ns", Json::u64(rec.recovery.checkpoint_ns))
        .field("max_eigenvalue_drift", Json::Num(format!("{drift:.2e}")));

    out.push('\n');
    line(
        &mut out,
        "== degraded mode: CNL nodes falling back to the ION path (40 nodes) ==",
    );
    let rates = NodeRates::measure(NvmKind::Tlc, &trace);
    let spec = ClusterSpec::carver();
    let mut t = Table::new(["failed SSDs", "aggregate MB/s", "retained"]);
    let mut degraded_rows = Vec::new();
    for p in degraded_curve(&spec, &rates, 40, &[0, 1, 4, 10, 40]) {
        degraded_rows.push(
            Json::obj()
                .field("failed_local", Json::u64(u64::from(p.failed_local)))
                .field("degraded_mb_s", Json::f64_3(p.degraded_mb_s))
                .field("retained_pct", Json::f64_3(p.retained() * 100.0)),
        );
        t.row([
            format!("{}", p.failed_local),
            format!("{:.0}", p.degraded_mb_s),
            format!("{:.1}%", p.retained() * 100.0),
        ]);
    }
    out.push_str(&t.render());

    let payload = Json::obj()
        .field("seed", Json::u64(seed))
        .field("trace_mib", Json::u64(trace_mib))
        .field("zero_fault_identical", Json::Bool(zero_fault_ok))
        .field("fault_sweep", Json::Arr(sweep_rows))
        .field(
            "journaled_zero_fault_identical",
            Json::Bool(journal_zero_ok),
        )
        .field(
            "journaled_write_amp",
            Json::obj()
                .field("user_bytes", Json::u64(wa.user_bytes))
                .field("cow_bytes", Json::u64(wa.cow_bytes))
                .field("journal_bytes", Json::u64(wa.journal_bytes))
                .field("apply_bytes", Json::u64(wa.apply_bytes))
                .field("commits", Json::u64(wa.commits))
                .field(
                    "device_per_user_permille",
                    Json::u64(wa.device_per_user_permille()),
                ),
        )
        .field("journaled_ufs_sweep", Json::Arr(journal_rows))
        .field("solver_recovery", solver_json)
        .field("degraded_curve", Json::Arr(degraded_rows));
    ReliabilityReport {
        text: out,
        json: json_report(SCHEMA, payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_3_documents_carry_the_journaled_sweep() {
        let a = render_report(42, 2, 60);
        assert!(!a.text.contains("FAIL"), "{}", a.text);
        assert!(a.json.contains(SCHEMA));
        let doc = simobs::json::parse(&a.json).expect("well-formed");
        // The v3 additions: the journaled-UFS fault sweep and the
        // journal write-amplification decomposition.
        assert!(doc.get("journaled_ufs_sweep").is_some());
        assert!(doc.get("journaled_zero_fault_identical").is_some());
        let wa = doc
            .get("journaled_write_amp")
            .expect("v3 carries journaled_write_amp");
        for f in ["user_bytes", "cow_bytes", "journal_bytes", "apply_bytes"] {
            assert!(wa.get(f).is_some(), "missing journaled_write_amp.{f}");
        }
        // Additive only: every v2 consumer keeps working.
        assert!(doc.get("fault_sweep").is_some());
        assert!(doc.get("solver_recovery").is_some());
        assert!(doc.get("degraded_curve").is_some());
        let b = render_report(42, 2, 60);
        assert_eq!(a.text, b.text);
        assert_eq!(a.json, b.json);
    }
}
