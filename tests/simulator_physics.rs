//! Physics-sanity tests on the simulator: ceilings, monotonicities, and
//! the hardware relationships the paper's §3.3 analysis predicts.

use flashsim::MediaConfig;
use interconnect::{ddr800, pcie, sdr400, LinkChain, PcieGen};
use nvmtypes::{HostRequest, NvmKind, MIB};
use ooctrace::BlockTrace;
use ssd::{SsdConfig, SsdDevice};

fn seq_trace(total: u64, req: u64, qd: u32) -> BlockTrace {
    let mut reqs = Vec::new();
    let mut off = 0;
    while off < total {
        reqs.push(HostRequest::read(off, req.min(total - off)));
        off += req;
    }
    BlockTrace::from_requests(reqs, qd)
}

fn run(
    kind: NvmKind,
    bus: nvmtypes::BusTiming,
    gen: PcieGen,
    lanes: u32,
    trace: &BlockTrace,
) -> ssd::RunReport {
    let media = MediaConfig::paper(kind, bus);
    let dev = SsdDevice::new(SsdConfig::new(media, LinkChain::single(pcie(gen, lanes))).with_ufs());
    dev.run(trace)
}

#[test]
fn bandwidth_never_exceeds_media_bus_aggregate() {
    let trace = seq_trace(64 * MIB, 4 * MIB, 32);
    for kind in NvmKind::ALL {
        let rep = run(kind, sdr400(), PcieGen::Gen3, 16, &trace);
        // 8 channels x 400 MB/s = 3200 MB/s, plus small rounding headroom.
        assert!(
            rep.bandwidth_mb_s <= 3300.0,
            "{}: {} exceeded the ONFi-3 aggregate",
            kind.label(),
            rep.bandwidth_mb_s
        );
    }
}

#[test]
fn bandwidth_never_exceeds_host_link() {
    let trace = seq_trace(64 * MIB, 4 * MIB, 32);
    let rep = run(NvmKind::Pcm, ddr800(), PcieGen::Gen2, 4, &trace);
    // PCIe 2.0 x4 = 2000 MB/s payload.
    assert!(rep.bandwidth_mb_s <= 2050.0, "bw {}", rep.bandwidth_mb_s);
}

#[test]
fn ddr_bus_beats_sdr_bus_when_media_is_bus_limited() {
    let trace = seq_trace(64 * MIB, 4 * MIB, 32);
    for kind in NvmKind::ALL {
        let slow = run(kind, sdr400(), PcieGen::Gen3, 16, &trace);
        let fast = run(kind, ddr800(), PcieGen::Gen3, 16, &trace);
        assert!(
            fast.bandwidth_mb_s > slow.bandwidth_mb_s,
            "{}: ddr {} vs sdr {}",
            kind.label(),
            fast.bandwidth_mb_s,
            slow.bandwidth_mb_s
        );
    }
}

#[test]
fn more_lanes_never_hurt() {
    let trace = seq_trace(64 * MIB, 4 * MIB, 32);
    for (gen, bus) in [(PcieGen::Gen2, sdr400()), (PcieGen::Gen3, ddr800())] {
        let mut prev = 0.0;
        for lanes in [4, 8, 16] {
            let rep = run(NvmKind::Pcm, bus, gen, lanes, &trace);
            assert!(
                rep.bandwidth_mb_s >= prev * 0.999,
                "{lanes} lanes slower: {} < {prev}",
                rep.bandwidth_mb_s
            );
            prev = rep.bandwidth_mb_s;
        }
    }
}

#[test]
fn pcm_never_loses_to_tlc_on_reads() {
    // Table 1: PCM reads are three orders of magnitude faster than TLC.
    for (req, qd) in [(64 * 1024, 4), (512 * 1024, 8), (4 * MIB, 32)] {
        let trace = seq_trace(32 * MIB, req, qd);
        let pcm = run(NvmKind::Pcm, sdr400(), PcieGen::Gen2, 8, &trace);
        let tlc = run(NvmKind::Tlc, sdr400(), PcieGen::Gen2, 8, &trace);
        assert!(
            pcm.bandwidth_mb_s >= tlc.bandwidth_mb_s * 0.98,
            "req={req}: pcm {} vs tlc {}",
            pcm.bandwidth_mb_s,
            tlc.bandwidth_mb_s
        );
    }
}

#[test]
fn read_latency_hierarchy_follows_table1() {
    // Single-request latency (queue depth 1, one page-sized read).
    let mut makespans = Vec::new();
    for kind in [NvmKind::Slc, NvmKind::Mlc, NvmKind::Tlc] {
        let page = nvmtypes::MediaTiming::table1(kind).page_size as u64;
        let trace = BlockTrace::from_requests(vec![HostRequest::read(0, page)], 1);
        let rep = run(kind, sdr400(), PcieGen::Gen2, 8, &trace);
        makespans.push(rep.makespan);
    }
    assert!(makespans[0] < makespans[1], "SLC !< MLC: {makespans:?}");
    assert!(makespans[1] < makespans[2], "MLC !< TLC: {makespans:?}");
}

#[test]
fn write_heavy_workloads_pay_program_and_erase_costs() {
    let reads = seq_trace(16 * MIB, MIB, 16);
    let writes = BlockTrace::from_requests(
        (0..16).map(|i| HostRequest::write(i * MIB, MIB)).collect(),
        16,
    );
    for kind in NvmKind::ALL {
        let media = MediaConfig::paper(kind, sdr400());
        let mut dev = SsdDevice::new(SsdConfig::new(
            media,
            LinkChain::single(pcie(PcieGen::Gen2, 8)),
        ));
        dev.pre_erased_rows = 0;
        let r = dev.run(&reads);
        let w = dev.run(&writes);
        assert!(
            w.bandwidth_mb_s < r.bandwidth_mb_s,
            "{}: writes {} not slower than reads {}",
            kind.label(),
            w.bandwidth_mb_s,
            r.bandwidth_mb_s
        );
        assert!(w.wear.erases > 0, "{}: no erases recorded", kind.label());
    }
}

#[test]
fn slc_endures_writes_better_than_tlc() {
    // Program-latency asymmetry: TLC MSB pages at 6 ms vs SLC's uniform
    // 250 µs make TLC write bandwidth collapse.
    let writes = BlockTrace::from_requests(
        (0..32).map(|i| HostRequest::write(i * MIB, MIB)).collect(),
        16,
    );
    let media_slc = MediaConfig::paper(NvmKind::Slc, sdr400());
    let media_tlc = MediaConfig::paper(NvmKind::Tlc, sdr400());
    let host = LinkChain::single(pcie(PcieGen::Gen2, 8));
    let slc = SsdDevice::new(SsdConfig::new(media_slc, host.clone())).run(&writes);
    let tlc = SsdDevice::new(SsdConfig::new(media_tlc, host)).run(&writes);
    assert!(
        slc.bandwidth_mb_s > 2.0 * tlc.bandwidth_mb_s,
        "slc {} vs tlc {}",
        slc.bandwidth_mb_s,
        tlc.bandwidth_mb_s
    );
}

#[test]
fn paq_and_queue_depth_monotonicity() {
    let media = MediaConfig::paper(NvmKind::Tlc, sdr400());
    let host = LinkChain::single(pcie(PcieGen::Gen2, 8));
    // Deeper queues help a fixed small-request stream.
    let dev = SsdDevice::new(SsdConfig::new(media, host.clone()));
    let mut prev = 0.0;
    for qd in [1, 4, 16] {
        let rep = dev.run(&seq_trace(16 * MIB, 128 * 1024, qd));
        assert!(rep.bandwidth_mb_s >= prev * 0.999, "qd={qd} slower");
        prev = rep.bandwidth_mb_s;
    }
    // PAQ at least matches serialized service.
    let nopaq = SsdDevice::new(SsdConfig::new(media, host).without_paq());
    let trace = seq_trace(16 * MIB, 128 * 1024, 16);
    assert!(dev.run(&trace).bandwidth_mb_s >= nopaq.run(&trace).bandwidth_mb_s);
}

#[test]
fn utilization_saturates_with_load() {
    let media = MediaConfig::paper(NvmKind::Tlc, sdr400());
    let host = LinkChain::single(pcie(PcieGen::Gen2, 8));
    let dev = SsdDevice::new(SsdConfig::new(media, host).with_ufs());
    let light = dev.run(&seq_trace(8 * MIB, 64 * 1024, 1));
    let heavy = dev.run(&seq_trace(64 * MIB, 4 * MIB, 32));
    assert!(heavy.media.package_util > light.media.package_util);
    assert!(heavy.media.channel_util >= light.media.channel_util * 0.99);
}
