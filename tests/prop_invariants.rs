//! Property-based tests over the cross-crate invariants.

use nvmtypes::{BusTiming, HostRequest, IoOp, MediaTiming, NvmKind, SsdGeometry};
use ooc::dense::{cholesky, jacobi_eigh, mgs_orthonormalize, DMatrix};
use ooc::{CsrMatrix, HamiltonianSpec, OocMatrix};
use oocfs::FsKind;
use ooctrace::{BlockTrace, PosixTrace, TraceCapture, TraceRecord};
use proptest::prelude::*;
use ssd::StripeMap;

fn arb_posix_trace() -> impl Strategy<Value = PosixTrace> {
    // Records with block-aligned offsets/lengths so byte conservation is
    // exact through every local file system.
    prop::collection::vec((0u64..256, 1u64..64, prop::bool::ANY), 1..40).prop_map(|recs| {
        let mut t = PosixTrace::new();
        for (i, (block_off, blocks, is_read)) in recs.into_iter().enumerate() {
            t.push(TraceRecord {
                t: i as u64,
                op: if is_read { IoOp::Read } else { IoOp::Write },
                file: (i % 3) as u32,
                offset: block_off * 4096,
                len: blocks * 4096,
            });
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_fs_conserves_block_aligned_data_bytes(trace in arb_posix_trace()) {
        for kind in FsKind::ALL {
            let out = kind.transform(&trace);
            prop_assert_eq!(
                out.data_bytes(),
                trace.total_bytes(),
                "{} lost bytes", kind.label()
            );
        }
    }

    #[test]
    fn fs_transforms_are_deterministic(trace in arb_posix_trace()) {
        for kind in FsKind::ALL {
            prop_assert_eq!(kind.transform(&trace), kind.transform(&trace));
        }
    }

    #[test]
    fn stripe_decomposition_conserves_pages_and_respects_geometry(
        start in 0u64..100_000,
        count in 1u64..5_000,
    ) {
        let g = SsdGeometry::paper(NvmKind::Tlc);
        let map = StripeMap::default_order(g);
        let runs = map.decompose(start, count);
        let total: u64 = runs.iter().map(|r| r.pages).sum();
        prop_assert_eq!(total, count);
        for r in &runs {
            prop_assert!(r.die.0 < g.total_dies());
            prop_assert!(r.planes >= 1 && r.planes <= g.planes_per_die);
            prop_assert!(r.pages >= 1);
        }
        // No die repeats.
        let mut dies: Vec<u32> = runs.iter().map(|r| r.die.0).collect();
        dies.sort_unstable();
        dies.dedup();
        prop_assert_eq!(dies.len(), runs.len());
    }

    #[test]
    fn device_run_invariants(
        reqs in prop::collection::vec((0u64..1_000_000, 1u64..256), 1..40),
        qd in 1u32..32,
    ) {
        use interconnect::{pcie, LinkChain, PcieGen};
        use flashsim::MediaConfig;
        use ssd::{SsdConfig, SsdDevice};
        let requests: Vec<HostRequest> = reqs
            .into_iter()
            .map(|(off, kib)| HostRequest::read(off * 4096, kib * 1024))
            .collect();
        let trace = BlockTrace::from_requests(requests, qd);
        let media = MediaConfig::paper(NvmKind::Mlc, BusTiming { name: "t", bytes_per_ns: 0.4 });
        let dev = SsdDevice::new(SsdConfig::new(media, LinkChain::single(pcie(PcieGen::Gen2, 8))));
        let rep = dev.run(&trace);
        prop_assert!(rep.makespan > 0);
        // Media moved at least the payload (page rounding only adds).
        prop_assert!(rep.media.bytes >= rep.total_bytes);
        // Utilizations and percentages are well-formed.
        prop_assert!((0.0..=1.0).contains(&rep.media.channel_util));
        prop_assert!((0.0..=1.0).contains(&rep.media.package_util));
        prop_assert!((0.0..=1.0).contains(&rep.media.die_util));
        prop_assert!((rep.pal.percent().iter().sum::<f64>() - 100.0).abs() < 1e-6);
        let bp: f64 = rep.media.breakdown.percent().iter().sum();
        prop_assert!((bp - 100.0).abs() < 1e-6);
        // The device can never beat its host link or media bus.
        let ceiling_mb_s = 4_000.0f64.min(3_200.0) * 1.05;
        prop_assert!(rep.bandwidth_mb_s <= ceiling_mb_s, "bw {}", rep.bandwidth_mb_s);
        // Active span is within the makespan.
        prop_assert!(rep.media.active_span <= rep.makespan);
    }

    #[test]
    fn ooc_store_round_trips_any_panel_size(
        n in 10usize..400,
        rows_per_panel in 1usize..80,
    ) {
        let h = HamiltonianSpec::tiny(n.max(16)).generate();
        let ooc = OocMatrix::build(&h, rows_per_panel, 0, None);
        let cap = TraceCapture::new();
        let mut nnz = 0usize;
        let mut rows = 0usize;
        for idx in 0..ooc.panels.len() {
            let p = ooc.read_panel(idx, &cap);
            nnz += p.values.len();
            rows += p.rows();
        }
        prop_assert_eq!(nnz, h.nnz());
        prop_assert_eq!(rows, h.n);
    }

    #[test]
    fn traced_spmm_equals_in_memory_spmm(
        n in 16usize..200,
        cols in 1usize..5,
        panel in 5usize..60,
    ) {
        let h = HamiltonianSpec::tiny(n).generate();
        let ooc = OocMatrix::build(&h, panel, 0, None);
        let mut x = DMatrix::zeros(n, cols);
        for (i, v) in x.data.iter_mut().enumerate() {
            *v = ((i * 2654435761) % 1000) as f64 / 500.0 - 1.0;
        }
        let cap = TraceCapture::new();
        let y = ooc.spmm_traced(&x, &cap);
        let want = h.spmm(&x);
        for i in 0..n {
            for j in 0..cols {
                prop_assert!((y[(i, j)] - want[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn mgs_output_is_orthonormal(
        n in 4usize..30,
        m in 1usize..6,
        seed in 0u64..1000,
    ) {
        let mut s = DMatrix::zeros(n, m.min(n));
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        for v in s.data.iter_mut() {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            *v = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
        }
        let (q, kept) = mgs_orthonormalize(&s, 1e-10);
        prop_assert!(kept.len() <= s.ncols);
        let gram = q.transpose_mul(&q);
        for i in 0..q.ncols {
            for j in 0..q.ncols {
                let want = if i == j { 1.0 } else { 0.0 };
                prop_assert!((gram[(i, j)] - want).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn jacobi_eigh_reconstructs_the_matrix(
        n in 2usize..10,
        seed in 0u64..500,
    ) {
        // Random symmetric A: check A v_k = λ_k v_k for all pairs.
        let mut a = DMatrix::zeros(n, n);
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for i in 0..n {
            for j in 0..=i {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let v = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        let (vals, vecs) = jacobi_eigh(&a);
        // Eigenvalues ascending.
        for w in vals.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
        let av = a.matmul(&vecs);
        for k in 0..n {
            for i in 0..n {
                prop_assert!(
                    (av[(i, k)] - vals[k] * vecs[(i, k)]).abs() < 1e-7,
                    "A v != lambda v at ({i},{k})"
                );
            }
        }
    }

    #[test]
    fn cholesky_round_trips_spd_matrices(n in 1usize..8, seed in 0u64..200) {
        // Build SPD as B^T B + n*I.
        let mut b = DMatrix::zeros(n, n);
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(7);
        for v in b.data.iter_mut() {
            state = state.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(7);
            *v = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
        }
        let mut a = b.transpose_mul(&b);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        let l = cholesky(&a).expect("SPD");
        // L L^T == A.
        let mut lt = DMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                lt[(i, j)] = l[(j, i)];
            }
        }
        let back = l.matmul(&lt);
        for i in 0..n {
            for j in 0..n {
                prop_assert!((back[(i, j)] - a[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn hamiltonian_is_always_valid_symmetric(
        n in 2usize..300,
        band in 1usize..10,
        cpr in 0usize..6,
        seed in 0u64..100,
    ) {
        let h = HamiltonianSpec { n, band, couplings_per_row: cpr, seed }.generate();
        prop_assert!(h.validate().is_ok());
        prop_assert!(h.is_symmetric(1e-12));
    }

    #[test]
    fn write_latency_closed_form_matches_naive(
        start in 0u64..50,
        count in 0u64..200,
    ) {
        for kind in NvmKind::ALL {
            let t = MediaTiming::table1(kind);
            let naive: u64 = (0..count).map(|i| t.write_latency_at(start + i)).sum();
            prop_assert_eq!(flashsim::op::sum_write_latency(&t, start, count), naive);
        }
    }

    #[test]
    fn posix_text_round_trip(trace in arb_posix_trace()) {
        let text = trace.to_text();
        let back = PosixTrace::from_text(&text).unwrap();
        prop_assert_eq!(trace, back);
    }

    #[test]
    fn interval_union_bounds(
        iv in prop::collection::vec((0u64..1000, 1u64..100), 0..30),
    ) {
        use flashsim::intervals::{merge, union_len};
        let intervals: Vec<(u64, u64)> = iv.iter().map(|&(s, l)| (s, s + l)).collect();
        let sum: u64 = intervals.iter().map(|&(s, e)| e - s).sum();
        let union = union_len(intervals.clone());
        prop_assert!(union <= sum);
        let merged = merge(intervals);
        // Merged intervals are sorted and disjoint.
        for w in merged.windows(2) {
            prop_assert!(w[0].1 < w[1].0);
        }
    }
}

#[test]
fn csr_spmm_matches_dense_reference() {
    // Non-proptest cross-check on a structured case.
    let h = HamiltonianSpec::tiny(64).generate();
    let mut x = DMatrix::zeros(64, 3);
    for (i, v) in x.data.iter_mut().enumerate() {
        *v = (i as f64).sin();
    }
    let sparse = h.spmm(&x);
    let dense = h.to_dense().matmul(&x);
    for i in 0..64 {
        for j in 0..3 {
            assert!((sparse[(i, j)] - dense[(i, j)]).abs() < 1e-10);
        }
    }
}

#[test]
fn csr_validation_rejects_corruption() {
    let mut h = HamiltonianSpec::tiny(32).generate();
    h.row_ptr[5] = h.row_ptr[6] + 1; // non-monotone
    assert!(h.validate().is_err());
    let mut h2 = HamiltonianSpec::tiny(32).generate();
    if h2.col_idx.len() > 3 {
        h2.col_idx.swap(0, 1);
        assert!(h2.validate().is_err() || h2.col_idx[0] == h2.col_idx[1]);
    }
}
