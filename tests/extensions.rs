//! Integration tests for the extension studies: energy, cluster scaling,
//! the cache argument, checkpointing, and DOoC pool migration.

use nvmtypes::{NvmKind, MIB};
use ooc::dooc::{migrate, DataPool, Prefetcher};
use oocnvm_core::cache::{replay_lru, reuse_distances};
use oocnvm_core::cluster::{ion_saturation_nodes, scaling_curve, ClusterSpec, NodeRates};
use oocnvm_core::config::SystemConfig;
use oocnvm_core::experiment::ExperimentSpec;
use oocnvm_core::workload::{checkpoint_trace, graph_ooc_trace, synthetic_ooc_trace};
use std::sync::Arc;

#[test]
fn energy_per_byte_favors_compute_local() {
    let trace = synthetic_ooc_trace(48 * MIB, 6 * MIB, 11);
    let ion = ExperimentSpec::new(&SystemConfig::ion_gpfs(), NvmKind::Tlc).run(&trace);
    let cnl = ExperimentSpec::new(&SystemConfig::cnl_ufs(), NvmKind::Tlc).run(&trace);
    // Same bytes, but the slow ION run burns static die power ~4x longer
    // on top of identical dynamic read energy...
    let ion_njb = ion.run.energy.nj_per_byte();
    let cnl_njb = cnl.run.energy.nj_per_byte();
    assert!(
        ion_njb > 1.1 * cnl_njb,
        "ION {ion_njb} nJ/B should exceed CNL {cnl_njb} nJ/B"
    );
    // ...and the ION path additionally pays the fabric's ~8 nJ/B (two
    // HCAs + the ION server share), tripling its energy per byte.
    assert!(ion_njb + 8.0 > 3.0 * cnl_njb);
    // Sanity: both report positive power.
    assert!(ion.run.energy.mean_power_w(ion.run.makespan) > 0.0);
}

#[test]
fn pcm_dynamic_read_energy_beats_nand() {
    let trace = synthetic_ooc_trace(48 * MIB, 6 * MIB, 11);
    let config = SystemConfig::cnl_ufs();
    let tlc = ExperimentSpec::new(&config, NvmKind::Tlc)
        .run(&trace)
        .run
        .energy;
    let pcm = ExperimentSpec::new(&config, NvmKind::Pcm)
        .run(&trace)
        .run
        .energy;
    assert!(pcm.read_mj < tlc.read_mj);
}

#[test]
fn faster_architectures_use_less_total_energy_for_the_same_work() {
    // The static-power argument: NATIVE-16 finishes ~4x sooner than UFS,
    // so it spends less idle energy on identical payload bytes.
    let trace = synthetic_ooc_trace(48 * MIB, 6 * MIB, 11);
    let ufs = ExperimentSpec::new(&SystemConfig::cnl_ufs(), NvmKind::Tlc)
        .run(&trace)
        .run;
    let n16 = ExperimentSpec::new(&SystemConfig::cnl_native16(), NvmKind::Tlc)
        .run(&trace)
        .run;
    assert_eq!(ufs.energy.bytes, n16.energy.bytes);
    assert!(n16.energy.total_mj() < ufs.energy.total_mj());
}

#[test]
fn cluster_scaling_crossover_favors_cnl_at_the_papers_partition_size() {
    let trace = synthetic_ooc_trace(32 * MIB, 6 * MIB, 9);
    let rates = NodeRates::measure(NvmKind::Tlc, &trace);
    let spec = ClusterSpec::carver();
    let curve = scaling_curve(&spec, &rates, &[1, 40]);
    // Even a single node gains; at 40 nodes the ION path has saturated.
    assert!(curve[0].cnl_mb_s > curve[0].ion_mb_s);
    assert!(curve[1].cnl_mb_s > 5.0 * curve[1].ion_mb_s);
    assert!(ion_saturation_nodes(&spec, &rates) < 40);
    // CNL scaling is exactly linear.
    assert!((curve[1].cnl_mb_s / curve[0].cnl_mb_s - 40.0).abs() < 1e-9);
}

#[test]
fn ooc_reuse_distances_defeat_partial_caches() {
    // The §1 argument, end to end on the synthetic OoC sweep.
    let trace = synthetic_ooc_trace(128 * MIB, 4 * MIB, 5);
    let reuse = reuse_distances(&trace, 1 << 20);
    // The working set is 32 MiB (a quarter of the volume): the median
    // reuse distance is the whole working set.
    let need = reuse.capacity_for_half_hits(1 << 20).unwrap();
    assert!(need >= 30 * MIB, "need {need}");
    // An LRU at 75% of the working set hits almost nothing beyond
    // adjacent-record block overlap...
    let small = replay_lru(&trace, 24 * MIB, 1 << 20);
    assert!(
        small.hit_ratio() < 0.25,
        "small cache hit {}",
        small.hit_ratio()
    );
    // ...while a full-size cache hits on every sweep after the first.
    let big = replay_lru(&trace, 40 * MIB, 1 << 20);
    assert!(big.hit_ratio() > 0.6, "big cache hit {}", big.hit_ratio());
    assert!(big.warm_bytes.is_some());
}

#[test]
fn checkpoint_workload_runs_and_wears_the_device() {
    let trace = checkpoint_trace(48 * MIB, 12 * MIB, 6 * MIB, 4 * MIB, 7);
    let config = SystemConfig::cnl_ufs();
    // UFS mode doesn't inject erases (app-managed); traditional FTL does.
    let trad =
        ExperimentSpec::new(&SystemConfig::cnl(oocfs::FsKind::Ext4), NvmKind::Slc).run(&trace);
    assert!(trad.run.wear.erases > 0, "no erases under the FTL");
    let ufs = ExperimentSpec::new(&config, NvmKind::Slc).run(&trace);
    assert!(ufs.bandwidth_mb_s > 0.0);
    // Mixed read/write is slower than the pure-read workload of the same
    // volume on TLC (program latencies bite).
    let pure = synthetic_ooc_trace(trace.total_bytes(), 4 * MIB, 7);
    let mixed_tlc = ExperimentSpec::new(&config, NvmKind::Tlc).run(&trace);
    let pure_tlc = ExperimentSpec::new(&config, NvmKind::Tlc).run(&pure);
    assert!(mixed_tlc.bandwidth_mb_s < pure_tlc.bandwidth_mb_s);
}

#[test]
fn graph_analytics_widen_the_ufs_advantage() {
    // External-memory BFS/PageRank (the intro's other OoC family) mix
    // small random vertex touches into the edge stream. Those 8 KiB reads
    // are sense-latency-bound, so throughput hinges on how many the stack
    // keeps in flight: UFS sustains a deep queue while a traditional FS
    // stalls on metadata and shallow plugging — its advantage *grows*
    // with the random share.
    let streaming = graph_ooc_trace(48 * MIB, 2 * MIB, 0.0, 5);
    let mixed = graph_ooc_trace(48 * MIB, 2 * MIB, 0.4, 5);
    let ratio = |trace| {
        let ufs = ExperimentSpec::new(&SystemConfig::cnl_ufs(), NvmKind::Tlc).run(trace);
        let ext4 =
            ExperimentSpec::new(&SystemConfig::cnl(oocfs::FsKind::Ext4), NvmKind::Tlc).run(trace);
        ufs.bandwidth_mb_s / ext4.bandwidth_mb_s
    };
    let r_stream = ratio(&streaming);
    let r_mixed = ratio(&mixed);
    assert!(
        r_stream > 1.0,
        "UFS should win even while streaming: {r_stream}"
    );
    assert!(
        r_mixed > r_stream,
        "mixed advantage {r_mixed} should exceed streaming {r_stream}"
    );
    // But mixing random reads costs everyone absolute bandwidth.
    let ufs_stream = ExperimentSpec::new(&SystemConfig::cnl_ufs(), NvmKind::Tlc).run(&streaming);
    let ufs_mixed = ExperimentSpec::new(&SystemConfig::cnl_ufs(), NvmKind::Tlc).run(&mixed);
    assert!(ufs_mixed.bandwidth_mb_s < ufs_stream.bandwidth_mb_s);
}

#[test]
fn pool_migration_preloads_a_compute_node() {
    // Monolithic (ION) pool -> CN-local pool, then the compute phase hits.
    let monolithic = Arc::new(DataPool::new(256 * MIB));
    for i in 0..32u64 {
        monolithic.insert(&format!("H/panel/{i}"), vec![i as u8; 1 << 20]);
    }
    let local = Arc::new(DataPool::new(64 * MIB));
    let keys: Vec<String> = (0..32).map(|i| format!("H/panel/{i}")).collect();
    let report = migrate(&monolithic, &local, &keys);
    assert_eq!(report.moved, 32);
    assert_eq!(report.moved_bytes, 32 << 20);
    // The compute phase never misses.
    let before_misses = local
        .stats
        .misses
        .load(std::sync::atomic::Ordering::Relaxed);
    for k in &keys {
        assert!(local.get(k).is_some());
    }
    assert_eq!(
        local
            .stats
            .misses
            .load(std::sync::atomic::Ordering::Relaxed),
        before_misses
    );
}

#[test]
fn migration_composes_with_prefetcher() {
    // Prefetch into the monolithic pool, migrate to local, checkout to
    // node memory — the full §3.1 data-movement chain.
    let monolithic = Arc::new(DataPool::new(64 * MIB));
    let pf = Prefetcher::new(Arc::clone(&monolithic), 4);
    for i in 0..16u64 {
        pf.prefetch(&format!("k{i}"), move || vec![(i * 3) as u8; 4096]);
    }
    pf.shutdown().expect("prefetch loaders succeed");
    let local = Arc::new(DataPool::new(64 * MIB));
    let keys: Vec<String> = (0..16).map(|i| format!("k{i}")).collect();
    let rep = ooc::dooc::migrate_matching(&monolithic, &local, &keys, 2, |_| true);
    assert_eq!(rep.moved, 16);
    let mem = ooc::dooc::checkout(&local, &keys);
    assert_eq!(mem.len(), 16);
    for (i, (_, bytes)) in mem.iter().enumerate() {
        assert_eq!(bytes[0] as usize, (i * 3) % 256);
    }
}
