//! Observability contract tests (docs/OBSERVABILITY.md):
//!
//! 1. **Observer effect = zero** — attaching any tracer must not change
//!    a single byte of the simulation result. Pinned exhaustively by a
//!    property test over random traces, media kinds, and fault seeds.
//! 2. **Deterministic export** — the same seed renders byte-identical
//!    Chrome-trace JSON and rollup text across runs (golden-snapshot
//!    style, self-referential rather than checked-in: the contract is
//!    run-to-run identity, not a frozen byte blob).
//! 3. **Bounded collection** — the ring sink never exceeds its
//!    capacity, counts what it drops, and surfaces the drop count in
//!    the export header.
//! 4. **Exact attribution** — per-layer latency components sum to the
//!    measured end-to-end latency, recovery shows up exactly once (and
//!    actually shows up under a heavy fault plan), and `sync`
//!    (file-system metadata) requests land in `fs_meta_ns`.

use flashsim::MediaConfig;
use interconnect::{ddr800, pcie, LinkChain, PcieGen};
use nvmtypes::{FaultPlan, HostRequest, NvmKind, KIB, MIB};
use oocnvm_core::config::SystemConfig;
use oocnvm_core::experiment::ExperimentSpec;
use oocnvm_core::workload::synthetic_ooc_trace;
use ooctrace::BlockTrace;
use proptest::prelude::*;
use simobs::{chrome_trace, rollup, Layer, Tracer};
use ssd::{RunReport, SsdConfig, SsdDevice};

/// A small mixed trace with sync barriers sprinkled in.
fn mixed_trace(requests: u64, sync_every: u64) -> BlockTrace {
    let mut reqs = Vec::new();
    for i in 0..requests {
        let len = 8 * KIB + (i % 5) * 4 * KIB;
        let off = (i * 3 * MIB) % (64 * MIB);
        let r = if i % 3 == 0 {
            HostRequest::write(off, len)
        } else {
            HostRequest::read(off, len)
        };
        let r = if sync_every > 0 && i % sync_every == 1 {
            r.synchronous()
        } else {
            r
        };
        reqs.push(r);
    }
    BlockTrace::from_requests(reqs, 8)
}

fn device(kind: NvmKind, plan: FaultPlan) -> SsdDevice {
    let media = MediaConfig::paper(kind, ddr800());
    let cfg = SsdConfig::new(media, LinkChain::single(pcie(PcieGen::Gen3, 8)))
        .with_ufs()
        .with_fault_plan(plan);
    SsdDevice::new(cfg)
}

#[test]
fn trace_export_is_byte_identical_across_runs() {
    let run = || {
        let trace = synthetic_ooc_trace(4 * MIB, MIB, 7);
        let mut obs = Tracer::ring(16_384);
        let rep = ExperimentSpec::new(&SystemConfig::cnl_ufs(), NvmKind::Tlc)
            .faults(FaultPlan::light(7))
            .tracer(&mut obs)
            .run(&trace);
        let log = obs.finish();
        (format!("{:?}", rep.run), chrome_trace(&log), rollup(&log))
    };
    let (rep_a, json_a, roll_a) = run();
    let (rep_b, json_b, roll_b) = run();
    assert_eq!(rep_a, rep_b, "reports diverged");
    assert_eq!(json_a, json_b, "chrome-trace JSON diverged");
    assert_eq!(roll_a, roll_b, "rollup text diverged");

    // The export is well-formed JSON with the versioned header and the
    // expected lanes.
    let doc = simobs::json::parse(&json_a).expect("export parses");
    let other = doc.get("otherData").expect("header present");
    assert_eq!(
        other.get("format"),
        Some(&simobs::json::Json::Str(
            simobs::export::TRACE_FORMAT.to_string()
        ))
    );
    for lane in ["media/die_read", "ssd/read", "link/host_dma"] {
        assert!(roll_a.contains(lane), "missing {lane} in rollup:\n{roll_a}");
    }
    // The fs transform marker is an instant, so it shows in the event
    // stream rather than the span rollup.
    assert!(
        json_a.contains("\"cat\":\"fs\"") && json_a.contains("\"name\":\"UFS\""),
        "fs transform instant missing from the export"
    );
}

#[test]
fn ring_sink_is_bounded_and_counts_drops() {
    let trace = mixed_trace(128, 0);
    let mut obs = Tracer::ring(64);
    let _rep = device(NvmKind::Tlc, FaultPlan::none()).run_observed(&trace, &mut obs);
    let log = obs.finish();
    assert!(
        log.events.len() <= 64,
        "ring exceeded capacity: {}",
        log.events.len()
    );
    assert!(log.dropped > 0, "128 requests must overflow a 64-slot ring");
    assert_eq!(
        log.emitted,
        log.dropped + nvmtypes::u64_from_usize(log.events.len()),
        "emitted must account for kept + dropped"
    );
    // The drop count is visible in the export header.
    let json = chrome_trace(&log);
    let doc = simobs::json::parse(&json).expect("export parses");
    let other = doc.get("otherData").expect("header");
    assert_eq!(
        other.get("dropped"),
        Some(&simobs::json::Json::Num(format!("{}", log.dropped)))
    );
    // Oldest-first eviction: what remains is the tail of simulated time,
    // so the earliest surviving span starts no earlier than some dropped
    // predecessor would have — cheap sanity: events are still time-sorted
    // by emission and the last one is the run summary span.
    let last = log.events.last().expect("events survive");
    assert_eq!(last.layer, Layer::Run);
}

#[test]
fn attribution_is_exact_and_recovery_appears_once() {
    // Heavy faults on a write/read mix with sync barriers: every
    // component of the decomposition is exercised at once.
    let trace = mixed_trace(96, 7);
    let mut obs = Tracer::off();
    let rep = device(NvmKind::Tlc, FaultPlan::heavy(13)).run_observed(&trace, &mut obs);
    let a = rep.attribution;
    assert_eq!(a.requests, 96);
    assert!(a.is_exact(), "components {:?} != total", a.components());
    assert!(a.total_ns > 0);
    assert!(a.die_ns > 0 && a.link_ns > 0 && a.queue_ns > 0);
    assert!(
        a.recovery_ns > 0,
        "heavy plan must surface recovery time in the attribution"
    );
    assert!(
        a.fs_meta_ns > 0,
        "sync barrier requests must land in fs_meta_ns"
    );
    // Recovery is carved out, never double-counted: it can account for
    // at most the whole media recovery plus link replay budget.
    assert!(a.recovery_ns <= rep.reliability.total_recovery_ns());

    // Fault-free on the same trace: no recovery component at all, still
    // exact.
    let clean = device(NvmKind::Tlc, FaultPlan::none()).run(&trace);
    assert!(clean.attribution.is_exact());
    assert_eq!(clean.attribution.recovery_ns, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tracer must be invisible: for arbitrary workloads, media and
    /// fault seeds, the ring-sink run renders the exact bytes of the
    /// no-op-sink run.
    #[test]
    fn tracing_never_changes_the_report(
        requests in 8u64..96,
        sync_every in 0u64..9,
        seed in 0u64..512,
        kind_ix in 0usize..4,
        heavy in proptest::prelude::prop::bool::ANY,
    ) {
        let kind = NvmKind::ALL[kind_ix % NvmKind::ALL.len()];
        let plan = if heavy { FaultPlan::heavy(seed) } else { FaultPlan::light(seed) };
        let trace = mixed_trace(requests, sync_every);

        let untraced: RunReport = device(kind, plan).run(&trace);
        let mut obs = Tracer::ring(4096);
        let traced: RunReport = device(kind, plan).run_observed(&trace, &mut obs);
        prop_assert_eq!(
            format!("{untraced:?}"),
            format!("{traced:?}"),
            "tracing changed the simulation result"
        );
        // And the experiment-level pipeline agrees with itself, too.
        let posix = synthetic_ooc_trace(2 * MIB, MIB, seed);
        let plain = ExperimentSpec::new(&SystemConfig::cnl_ufs(), kind).faults(plan).run(&posix);
        let mut obs2 = Tracer::ring(4096);
        let observed = ExperimentSpec::new(&SystemConfig::cnl_ufs(), kind).faults(plan).tracer(&mut obs2).run(&posix);
        prop_assert_eq!(format!("{:?}", plain.run), format!("{:?}", observed.run));
    }
}
