//! Determinism regression: two identical simulator runs must produce
//! byte-identical reports.
//!
//! The paper's figures are ratios between simulated configurations
//! (e.g. the ~10.3x CNL speedup); if iteration order or wall-clock state
//! leaked into the pipeline, those ratios would wobble run-to-run and
//! the reproduction would be unfalsifiable. `simlint` forbids the usual
//! sources (`HashMap`/`HashSet` state, `Instant::now`, OS entropy) at
//! the source level; this test pins the end-to-end behaviour.

use flashsim::MediaConfig;
use interconnect::{ddr800, pcie, LinkChain, PcieGen};
use nvmtypes::{FaultPlan, HostRequest, NvmKind, KIB, MIB};
use oocnvm_core::workload::synthetic_ooc_trace;
use ooctrace::BlockTrace;
use proptest::prelude::*;
use rayon::prelude::*;
use simobs::{chrome_trace, Tracer};
use ssd::{RunReport, SsdConfig, SsdDevice};
use std::sync::Mutex;

/// A mixed read/write trace with strided offsets: enough irregularity to
/// exercise the FTL mapping tree and per-die queues in non-trivial order.
fn mixed_trace() -> BlockTrace {
    let mut reqs = Vec::new();
    let mut off = 0u64;
    for i in 0..256u64 {
        let len = 16 * KIB + (i % 7) * 4 * KIB;
        if i % 3 == 0 {
            reqs.push(HostRequest::write(off % (64 * MIB), len));
        } else {
            reqs.push(HostRequest::read((off * 3) % (64 * MIB), len));
        }
        off += len + (i % 5) * KIB;
    }
    BlockTrace::from_requests(reqs, 16)
}

/// One full flashsim+ssd run on a fresh device.
fn run_once(kind: NvmKind) -> RunReport {
    run_once_with_plan(kind, FaultPlan::none())
}

/// Same run with a fault plan installed.
fn run_once_with_plan(kind: NvmKind, plan: FaultPlan) -> RunReport {
    let media = MediaConfig::paper(kind, ddr800());
    let cfg = SsdConfig::new(media, LinkChain::single(pcie(PcieGen::Gen3, 8)))
        .with_ufs()
        .with_fault_plan(plan);
    SsdDevice::new(cfg).run(&mixed_trace())
}

/// Every observable byte of a report, not just headline numbers: the
/// `Debug` rendering covers all fields (latency percentiles, per-level
/// parallelism counters, energy), `summary()` covers the human format.
fn rendered(rep: &RunReport) -> String {
    format!("{rep:?}\n{}", rep.summary())
}

#[test]
fn identical_runs_render_byte_identical_reports() {
    for kind in NvmKind::ALL {
        let a = rendered(&run_once(kind));
        let b = rendered(&run_once(kind));
        assert_eq!(
            a,
            b,
            "{}: reports diverged between identical runs",
            kind.label()
        );
    }
}

#[test]
fn fault_injected_runs_are_byte_identical_for_a_seed() {
    // Same seed + same plan -> byte-identical report; a different seed
    // must actually exercise the fault machinery (heavy rates on a
    // 256-request trace cannot be a silent no-op).
    for plan in [FaultPlan::light(11), FaultPlan::heavy(11)] {
        let a = rendered(&run_once_with_plan(NvmKind::Tlc, plan));
        let b = rendered(&run_once_with_plan(NvmKind::Tlc, plan));
        assert_eq!(a, b, "fault-injected reports diverged between runs");
    }
    let heavy = run_once_with_plan(NvmKind::Tlc, FaultPlan::heavy(11));
    assert!(
        heavy.reliability.ecc_retries > 0,
        "heavy plan produced no ECC retries: the fault path is dead"
    );
}

#[test]
fn zero_rate_plan_reproduces_the_plain_report_exactly() {
    // FaultPlan::none() must not perturb a single byte: no RNG draws,
    // no extra ops, no reordered state.
    for kind in NvmKind::ALL {
        let plain = rendered(&run_once(kind));
        let zeroed = rendered(&run_once_with_plan(kind, FaultPlan::none()));
        assert_eq!(
            plain,
            zeroed,
            "{}: zero-rate plan diverged from the fault-free run",
            kind.label()
        );
    }
}

#[test]
fn tracing_sinks_do_not_perturb_the_report() {
    // The observability contract (docs/OBSERVABILITY.md): attaching a
    // tracer — any sink — must not change a single byte of the result.
    // Pin the no-op sink against the ring sink against the plain `run`.
    let plain = rendered(&run_once_with_plan(NvmKind::Tlc, FaultPlan::heavy(11)));
    let mut off = Tracer::off();
    let with_off = {
        let media = MediaConfig::paper(NvmKind::Tlc, ddr800());
        let cfg = SsdConfig::new(media, LinkChain::single(pcie(PcieGen::Gen3, 8)))
            .with_ufs()
            .with_fault_plan(FaultPlan::heavy(11));
        rendered(&SsdDevice::new(cfg).run_observed(&mixed_trace(), &mut off))
    };
    let mut ring = Tracer::ring(8192);
    let with_ring = {
        let media = MediaConfig::paper(NvmKind::Tlc, ddr800());
        let cfg = SsdConfig::new(media, LinkChain::single(pcie(PcieGen::Gen3, 8)))
            .with_ufs()
            .with_fault_plan(FaultPlan::heavy(11));
        rendered(&SsdDevice::new(cfg).run_observed(&mixed_trace(), &mut ring))
    };
    assert_eq!(plain, with_off, "no-op sink perturbed the report");
    assert_eq!(plain, with_ring, "ring sink perturbed the report");
}

#[test]
fn trace_exports_are_byte_identical_across_invocations() {
    // Same seed, same workload, two separate invocations: the rendered
    // Chrome-trace JSON must match byte for byte, or the timeline cannot
    // be diffed between runs.
    let export = || {
        let media = MediaConfig::paper(NvmKind::Tlc, ddr800());
        let cfg = SsdConfig::new(media, LinkChain::single(pcie(PcieGen::Gen3, 8)))
            .with_ufs()
            .with_fault_plan(FaultPlan::heavy(11));
        let mut obs = Tracer::ring(8192);
        let rep = SsdDevice::new(cfg).run_observed(&mixed_trace(), &mut obs);
        (rendered(&rep), chrome_trace(&obs.finish()))
    };
    let (rep_a, json_a) = export();
    let (rep_b, json_b) = export();
    assert_eq!(rep_a, rep_b, "reports diverged between invocations");
    assert_eq!(json_a, json_b, "trace JSON diverged between invocations");
}

#[test]
fn reports_are_stable_across_interleaved_device_lifetimes() {
    // Run A, then build and run another device, then run A's config
    // again: no global state may leak between device instances.
    let first = rendered(&run_once(NvmKind::Mlc));
    let _decoy = run_once(NvmKind::Pcm);
    let second = rendered(&run_once(NvmKind::Mlc));
    assert_eq!(first, second, "device lifetimes are not isolated");
}

// --- determinism under parallelism (docs/PARALLELISM.md) -------------------
//
// The batch entry points fan experiments out over the vendored work-
// sharing pool; the contract is that the thread count is invisible in
// every output. These tests pin the three report generators
// byte-identical at 1, 2 and 8 workers, and pin the pool primitives the
// contract rests on: ordered `collect` and panic propagation.

/// Serializes `RAYON_NUM_THREADS` mutation: tests in one binary run on
/// concurrent threads, and the environment is process-global.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with the pool pinned to `n` workers, then restores the
/// default (host parallelism).
fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    std::env::set_var("RAYON_NUM_THREADS", n.to_string());
    let out = f();
    std::env::remove_var("RAYON_NUM_THREADS");
    out
}

#[test]
fn reports_are_byte_identical_at_every_thread_count() {
    let _guard = ENV_LOCK.lock().unwrap();
    let seed = 7;
    let trace = synthetic_ooc_trace(2 * MIB, MIB, seed);
    let runs: Vec<_> = [1usize, 2, 8]
        .into_iter()
        .map(|n| {
            with_threads(n, || {
                let head = oocnvm::bench::headline::report(&trace).unwrap();
                let rel = oocnvm::reliability::render_report(seed, 2, 60);
                let obs = oocnvm::obsreport::traced_pass(seed, 2, 60);
                (
                    head.text,
                    head.json,
                    rel.text,
                    rel.json,
                    obs.rendered,
                    obs.trace_json,
                )
            })
        })
        .collect();
    assert_eq!(runs[0], runs[1], "outputs diverged between 1 and 2 threads");
    assert_eq!(runs[0], runs[2], "outputs diverged between 1 and 8 threads");
}

#[test]
fn ufs_study_is_byte_identical_at_every_thread_count() {
    // The crash matrix fans every (crash point, torn/dropped) case out
    // on the pool; the recovery report and digest must not see the
    // worker count.
    let _guard = ENV_LOCK.lock().unwrap();
    let runs: Vec<_> = [1usize, 2, 8]
        .into_iter()
        .map(|n| {
            with_threads(n, || {
                let r = oocnvm::ufs_study::render_report(7, true);
                (r.text, r.json)
            })
        })
        .collect();
    assert_eq!(
        runs[0], runs[1],
        "ufs study diverged between 1 and 2 threads"
    );
    assert_eq!(
        runs[0], runs[2],
        "ufs study diverged between 1 and 8 threads"
    );
}

#[test]
fn tenants_study_is_byte_identical_at_every_thread_count() {
    // The multi-tenant QoS study fans the config × density sweep out on
    // the pool, and inside each cell the tenants share one simulated
    // device through the fair-queueing scheduler; neither level may see
    // the worker count, and a same-seed re-run must be byte-identical.
    let _guard = ENV_LOCK.lock().unwrap();
    let runs: Vec<_> = [1usize, 2, 8]
        .into_iter()
        .map(|n| {
            with_threads(n, || {
                let r = oocnvm::tenants_study::render_report(7, &[1, 3]);
                (r.text, r.json)
            })
        })
        .collect();
    assert_eq!(
        runs[0], runs[1],
        "tenants study diverged between 1 and 2 threads"
    );
    assert_eq!(
        runs[0], runs[2],
        "tenants study diverged between 1 and 8 threads"
    );
    let again = oocnvm::tenants_study::render_report(7, &[1, 3]);
    assert_eq!(
        runs[0],
        (again.text, again.json),
        "tenants study diverged between same-seed re-runs"
    );
}

#[test]
fn ufs_path_with_empty_fault_plan_is_byte_identical_to_no_plan() {
    // `FaultPlan::none()` through the journaled-UFS experiment path must
    // be indistinguishable from running that path with no plan at all:
    // the crash hook may not perturb the simulation when idle.
    use oocnvm_core::config::SystemConfig;
    use oocnvm_core::experiment::ExperimentSpec;
    let trace = synthetic_ooc_trace(2 * MIB, MIB, 11);
    let cnl = SystemConfig::cnl_ufs();
    let bare = ExperimentSpec::new(&cnl, NvmKind::Tlc)
        .journaled_ufs(true)
        .run(&trace);
    let idle = ExperimentSpec::new(&cnl, NvmKind::Tlc)
        .journaled_ufs(true)
        .faults(FaultPlan::none())
        .run(&trace);
    assert_eq!(
        rendered(&bare.run),
        rendered(&idle.run),
        "idle fault plan perturbed the UFS path"
    );
    assert_eq!(
        bare.bandwidth_mb_s.to_bits(),
        idle.bandwidth_mb_s.to_bits(),
        "idle fault plan perturbed the UFS bandwidth"
    );
}

#[test]
fn pool_propagates_worker_panics() {
    // A panic inside a parallel region must unwind out of `collect` on
    // the calling thread, not vanish into a worker.
    let caught = std::panic::catch_unwind(|| -> Vec<u64> {
        (0u64..64)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|i| {
                assert_ne!(i, 37, "injected failure");
                i
            })
            .collect()
    });
    assert!(caught.is_err(), "a worker panic must reach the caller");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Parallel `collect` returns results in input order for any input,
    /// regardless of how the chunks were claimed by workers.
    #[test]
    fn pool_collect_preserves_input_order(xs in prop::collection::vec(prop::num::u64::ANY, 0..300)) {
        let f = |x: u64| x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(7);
        let seq: Vec<u64> = xs.iter().copied().map(f).collect();
        let par: Vec<u64> = xs.into_par_iter().map(f).collect();
        prop_assert_eq!(par, seq);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Per-tenant latency attribution is exact, not sampled: across any
    /// tenant mix, seed and QoS weight, the tenants' attributed
    /// nanoseconds and request counts sum to the fleet totals.
    #[test]
    fn tenant_attribution_sums_to_the_fleet_total(
        seed in prop::num::u64::ANY,
        n in 1usize..5,
        kv_weight in 1u64..8,
    ) {
        use oocnvm_core::config::SystemConfig;
        use oocnvm_core::experiment::ExperimentSpec;
        use oocnvm_core::tenancy::{ArrivalProcess, TenantProfile, TenantSpec};
        let cnl = SystemConfig::cnl_ufs();
        let tenants = (0..n)
            .map(|i| {
                let profile = match i % 3 {
                    0 => TenantProfile::Eigensolve {
                        total_bytes: 2 * MIB,
                        record_size: MIB,
                    },
                    1 => TenantProfile::Checkpoint {
                        read_bytes: 2 * MIB,
                        ckpt_interval_bytes: MIB,
                        ckpt_bytes: MIB,
                        record_size: MIB,
                    },
                    _ => TenantProfile::KvLookup {
                        total_bytes: MIB,
                        value_size: 8192,
                    },
                };
                TenantSpec::new(profile)
                    .seed(seed.wrapping_add(nvmtypes::u64_from_usize(i)))
                    .weight(if i % 3 == 2 { kv_weight } else { 1 })
            })
            .collect();
        let report = ExperimentSpec::new(&cnl, NvmKind::Tlc)
            .tenants(tenants)
            .arrivals(ArrivalProcess::bursty(100_000, 0.25, seed))
            .run();
        prop_assert!(report.fleet.run.attribution.is_exact());
        let attributed: u64 = report.tenants.iter().map(|t| t.attribution.total_ns).sum();
        prop_assert_eq!(attributed, report.fleet.run.attribution.total_ns);
        let requests: u64 = report.tenants.iter().map(|t| t.requests).sum();
        prop_assert_eq!(requests, report.fleet.run.requests);
        let bytes: u64 = report.tenants.iter().map(|t| t.bytes).sum();
        prop_assert_eq!(bytes, report.fleet.run.total_bytes);
    }
}
