//! Integration tests asserting that every figure of the paper reproduces
//! in *shape*: who wins, by roughly what factor, and where the crossovers
//! fall (§4.3–§4.5, §7).

use nvmtypes::{NvmKind, MIB};
use oocnvm_core::config::SystemConfig;
use oocnvm_core::experiment::{find, run_batch, ExperimentReport, ExperimentSpec};
use oocnvm_core::workload::synthetic_ooc_trace;
use ooctrace::PosixTrace;

fn trace() -> PosixTrace {
    synthetic_ooc_trace(96 * MIB, 6 * MIB, 42)
}

fn sweep(configs: &[SystemConfig], kinds: &[NvmKind]) -> Vec<ExperimentReport> {
    let specs = configs
        .iter()
        .flat_map(|c| kinds.iter().map(|&k| ExperimentSpec::new(c, k)))
        .collect();
    run_batch(specs, &trace())
}

#[test]
fn fig7a_compute_local_beats_ion_for_every_fs_and_medium() {
    let configs = SystemConfig::figure7();
    let reports = sweep(&configs, &NvmKind::ALL);
    for kind in NvmKind::ALL {
        let ion = find(&reports, "ION-GPFS", kind).unwrap().bandwidth_mb_s;
        for c in configs.iter().filter(|c| !c.fs.is_ion()) {
            let bw = find(&reports, c.label, kind).unwrap().bandwidth_mb_s;
            assert!(
                bw > ion,
                "{} ({}) {bw:.0} MB/s did not beat ION-GPFS {ion:.0}",
                c.label,
                kind.label()
            );
        }
    }
}

#[test]
fn fig7a_file_system_ordering_on_tlc() {
    let configs = SystemConfig::figure7();
    let reports = sweep(&configs, &[NvmKind::Tlc]);
    let bw = |l: &str| find(&reports, l, NvmKind::Tlc).unwrap().bandwidth_mb_s;
    // ext2 is the worst local file system...
    let locals = [
        "CNL-JFS",
        "CNL-BTRFS",
        "CNL-XFS",
        "CNL-REISERFS",
        "CNL-EXT3",
        "CNL-EXT4",
        "CNL-EXT4-L",
        "CNL-UFS",
    ];
    for l in locals {
        assert!(bw(l) > bw("CNL-EXT2"), "{l} below ext2");
    }
    // ...BTRFS the best non-tuned one, by about a factor of 2 over ext2...
    for l in [
        "CNL-JFS",
        "CNL-XFS",
        "CNL-REISERFS",
        "CNL-EXT2",
        "CNL-EXT3",
        "CNL-EXT4",
    ] {
        assert!(bw("CNL-BTRFS") > bw(l), "btrfs not above {l}");
    }
    let factor = bw("CNL-BTRFS") / bw("CNL-EXT2");
    assert!((1.6..=3.2).contains(&factor), "btrfs/ext2 factor {factor}");
    // ...ext4-L gains large-request bandwidth over ext4 ("about 1GB/s")...
    let gain = bw("CNL-EXT4-L") - bw("CNL-EXT4");
    assert!((500.0..=1800.0).contains(&gain), "ext4-L gain {gain}");
    // ...and UFS tops everything.
    for c in &SystemConfig::figure7()[..9] {
        assert!(bw("CNL-UFS") > bw(c.label), "UFS not above {}", c.label);
    }
}

#[test]
fn fig7a_pcm_obscures_file_system_differences() {
    let configs = SystemConfig::figure7();
    let reports = sweep(&configs, &[NvmKind::Pcm, NvmKind::Tlc]);
    let spread = |kind: NvmKind| {
        let values: Vec<f64> = configs
            .iter()
            .filter(|c| !c.fs.is_ion())
            .map(|c| find(&reports, c.label, kind).unwrap().bandwidth_mb_s)
            .collect();
        values.iter().cloned().fold(0.0, f64::max)
            / values.iter().cloned().fold(f64::INFINITY, f64::min)
    };
    assert!(
        spread(NvmKind::Pcm) < 1.25,
        "PCM spread {}",
        spread(NvmKind::Pcm)
    );
    assert!(
        spread(NvmKind::Tlc) > 2.0 * spread(NvmKind::Pcm),
        "TLC spread {} vs PCM {}",
        spread(NvmKind::Tlc),
        spread(NvmKind::Pcm)
    );
}

#[test]
fn fig7b_media_headroom_shape() {
    // §4.3: the ION media idles on the network and leaves the most
    // bandwidth untouched; PCM's cells are never the constraint, so its
    // headroom dwarfs NAND's under every file system. (The paper's claim
    // that UFS leaves *more* than the other CNL file systems does not
    // survive a bandwidth-consistent headroom definition — see
    // EXPERIMENTS.md — so it is not asserted here.)
    let configs = SystemConfig::figure7();
    let reports = sweep(&configs, &[NvmKind::Tlc, NvmKind::Pcm]);
    let rem = |l: &str, k| find(&reports, l, k).unwrap().remaining_mb_s;
    for c in configs.iter().filter(|c| !c.fs.is_ion()) {
        assert!(
            rem("ION-GPFS", NvmKind::Tlc) >= rem(c.label, NvmKind::Tlc),
            "ION not above {}",
            c.label
        );
        assert!(rem(c.label, NvmKind::Pcm) > 5.0 * rem(c.label, NvmKind::Tlc));
    }
}

#[test]
fn fig8a_device_improvement_ladder() {
    let configs = SystemConfig::figure8();
    let reports = sweep(&configs, &NvmKind::ALL);
    let mean = |l: &str| {
        NvmKind::ALL
            .iter()
            .map(|&k| find(&reports, l, k).unwrap().bandwidth_mb_s)
            .sum::<f64>()
            / 4.0
    };
    // Expanding lanes on the bridged architecture barely helps...
    let bridge_gain = mean("CNL-BRIDGE-16") / mean("CNL-UFS") - 1.0;
    assert!(
        bridge_gain >= 0.0 && bridge_gain < 0.15,
        "bridge gain {bridge_gain}"
    );
    // ...while going native doubles it despite half the lanes...
    let native_factor = mean("CNL-NATIVE-8") / mean("CNL-BRIDGE-16");
    assert!(
        (1.7..=3.2).contains(&native_factor),
        "native factor {native_factor}"
    );
    // ...and 16 native lanes expose still more.
    assert!(mean("CNL-NATIVE-16") > 1.2 * mean("CNL-NATIVE-8"));
}

#[test]
fn fig8_end_to_end_factors_over_ion() {
    let mut configs = vec![SystemConfig::ion_gpfs(), SystemConfig::cnl_native16()];
    configs.push(SystemConfig::cnl_ufs());
    let reports = sweep(&configs, &NvmKind::ALL);
    // §4.4: PCM improves by an order of magnitude (paper: 16x); TLC by
    // nearly as much (paper: 8x).
    for kind in [NvmKind::Pcm, NvmKind::Tlc] {
        let ion = find(&reports, "ION-GPFS", kind).unwrap().bandwidth_mb_s;
        let n16 = find(&reports, "CNL-NATIVE-16", kind)
            .unwrap()
            .bandwidth_mb_s;
        let factor = n16 / ion;
        assert!(
            (6.0..=20.0).contains(&factor),
            "{} end-to-end factor {factor}",
            kind.label()
        );
    }
}

#[test]
fn fig8b_native16_drains_nand_media_headroom() {
    let configs = SystemConfig::figure8();
    let reports = sweep(&configs, &[NvmKind::Tlc]);
    let rem = |l: &str| find(&reports, l, NvmKind::Tlc).unwrap().remaining_mb_s;
    assert!(rem("CNL-NATIVE-16") < rem("CNL-NATIVE-8"));
    assert!(rem("CNL-NATIVE-8") < rem("CNL-UFS"));
}

#[test]
fn fig9_utilization_pattern() {
    let configs = [
        SystemConfig::ion_gpfs(),
        SystemConfig::cnl_ufs(),
        SystemConfig::cnl(oocfs::FsKind::Ext2),
    ];
    let reports = sweep(&configs, &[NvmKind::Tlc]);
    let ion = find(&reports, "ION-GPFS", NvmKind::Tlc).unwrap();
    let ufs = find(&reports, "CNL-UFS", NvmKind::Tlc).unwrap();
    // §4.5's "altogether unexpected result": ION keeps its channels busy
    // (striping randomizes across channels)...
    assert!(
        ion.channel_util > 0.85,
        "ION channel util {}",
        ion.channel_util
    );
    // ...but its packages idle.
    assert!(
        ion.package_util < 0.4,
        "ION package util {}",
        ion.package_util
    );
    assert!(ion.package_util < ufs.package_util * 0.5);
    // UFS reaches near-full utilization of both.
    assert!(ufs.channel_util > 0.95);
    assert!(ufs.package_util > 0.9);
}

#[test]
fn fig10_parallelism_claims() {
    let configs = [
        SystemConfig::ion_gpfs(),
        SystemConfig::cnl_ufs(),
        SystemConfig::cnl(oocfs::FsKind::Ext2),
    ];
    let reports = sweep(&configs, &[NvmKind::Tlc, NvmKind::Pcm]);
    // ION-local TLC stays almost completely at PAL3, almost never PAL4.
    let ion = find(&reports, "ION-GPFS", NvmKind::Tlc).unwrap();
    assert!(ion.pal_pct[2] > 70.0, "ION PAL3 {}", ion.pal_pct[2]);
    assert!(ion.pal_pct[3] < 15.0, "ION PAL4 {}", ion.pal_pct[3]);
    // UFS almost entirely reaches PAL4.
    let ufs = find(&reports, "CNL-UFS", NvmKind::Tlc).unwrap();
    assert!(ufs.pal_pct[3] > 90.0, "UFS PAL4 {}", ufs.pal_pct[3]);
    // PCM is almost entirely PAL4 irrespective of configuration.
    for label in ["ION-GPFS", "CNL-UFS", "CNL-EXT2"] {
        let r = find(&reports, label, NvmKind::Pcm).unwrap();
        assert!(r.pal_pct[3] > 85.0, "{label} PCM PAL4 {}", r.pal_pct[3]);
    }
}

#[test]
fn fig10_execution_breakdown_claims() {
    let configs = [
        SystemConfig::ion_gpfs(),
        SystemConfig::cnl(oocfs::FsKind::Ext4),
        SystemConfig::cnl_ufs(),
        SystemConfig::cnl_native16(),
    ];
    let reports = sweep(&configs, &[NvmKind::Tlc]);
    let pct = |l: &str| find(&reports, l, NvmKind::Tlc).unwrap().breakdown_pct;
    // ION spends a significantly larger proportion in non-overlapped DMA
    // than any other case.
    for other in ["CNL-EXT4", "CNL-UFS", "CNL-NATIVE-16"] {
        assert!(
            pct("ION-GPFS")[0] > 2.0 * pct(other)[0],
            "ION dma {} vs {other} {}",
            pct("ION-GPFS")[0],
            pct(other)[0]
        );
    }
    // UFS drastically reduces bus-activity share vs a traditional FS.
    let bus = |p: [f64; 6]| p[1] + p[2];
    assert!(bus(pct("CNL-UFS")) < 0.6 * bus(pct("CNL-EXT4")));
    // Toward the right of the figure, cell activation's share grows.
    assert!(pct("CNL-NATIVE-16")[5] > pct("CNL-UFS")[5]);
}

#[test]
fn headline_ratios_hold() {
    let configs = SystemConfig::table2();
    let reports = sweep(&configs, &NvmKind::ALL);
    let bw = |l: &str, k| find(&reports, l, k).unwrap().bandwidth_mb_s;
    let trad = [
        "CNL-JFS",
        "CNL-BTRFS",
        "CNL-XFS",
        "CNL-REISERFS",
        "CNL-EXT2",
        "CNL-EXT3",
        "CNL-EXT4",
        "CNL-EXT4-L",
    ];
    let mut cnl_vs_ion = 0.0;
    let mut ufs_vs_cnl = 0.0;
    let mut hw_vs_ufs = 0.0;
    let mut overall = 0.0;
    for k in NvmKind::ALL {
        let ion = bw("ION-GPFS", k);
        let cnl = trad.iter().map(|l| bw(l, k)).sum::<f64>() / trad.len() as f64;
        cnl_vs_ion += cnl / ion - 1.0;
        ufs_vs_cnl += bw("CNL-UFS", k) / cnl - 1.0;
        hw_vs_ufs += bw("CNL-NATIVE-16", k) / bw("CNL-UFS", k) - 1.0;
        overall += bw("CNL-NATIVE-16", k) / ion;
    }
    cnl_vs_ion /= 4.0;
    ufs_vs_cnl /= 4.0;
    hw_vs_ufs /= 4.0;
    overall /= 4.0;
    // Paper: +108%, +52%, +250%, 10.3x. Bands allow simulator-vs-testbed
    // differences while pinning the order of magnitude.
    assert!((0.6..=2.2).contains(&cnl_vs_ion), "cnl vs ion {cnl_vs_ion}");
    assert!(
        (0.15..=1.0).contains(&ufs_vs_cnl),
        "ufs vs cnl {ufs_vs_cnl}"
    );
    assert!((1.5..=4.5).contains(&hw_vs_ufs), "hw vs ufs {hw_vs_ufs}");
    assert!((6.0..=16.0).contains(&overall), "overall {overall}");
}

#[test]
fn experiments_are_deterministic() {
    let t = trace();
    let a = ExperimentSpec::new(&SystemConfig::cnl(oocfs::FsKind::Ext4), NvmKind::Tlc).run(&t);
    let b = ExperimentSpec::new(&SystemConfig::cnl(oocfs::FsKind::Ext4), NvmKind::Tlc).run(&t);
    assert_eq!(a.run.makespan, b.run.makespan);
    assert_eq!(a.run.total_bytes, b.run.total_bytes);
    assert_eq!(a.pal_pct, b.pal_pct);
}
