//! Property tests over `simobs::HdrHistogram` — the contract the
//! observability layer's latency exports rest on (see
//! `docs/PROFILING.md`):
//!
//! * every reported quantile brackets the true order statistic within
//!   the documented `1/2^SUB_BITS` relative-error bound;
//! * merge is associative and commutative, so per-shard histograms
//!   combine into the same bytes in any grouping and any order;
//! * sharding a recording across the thread pool is invisible in the
//!   serialized form — byte-identical at 1, 2 and 8 workers.

use proptest::prelude::*;
use rayon::prelude::*;
use simobs::hdr::{HdrHistogram, SUB};
use std::sync::Mutex;

/// Latency-like values spanning the exact region (`< SUB`), the
/// log-linear octaves, and the saturating top end of `u64`.
fn arb_values() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            0u64..SUB,                // exact buckets
            SUB..10_000u64,           // short latencies
            10_000u64..10_000_000u64, // microseconds..ms
            (u64::MAX / 4)..u64::MAX, // top octaves
        ],
        1..200,
    )
}

fn record_all(values: &[u64]) -> HdrHistogram {
    let mut h = HdrHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn quantiles_stay_inside_the_relative_error_bound(values in arb_values()) {
        let h = record_all(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let n = sorted.len() as u64;
        for (num, den) in [(1u64, 2u64), (9, 10), (99, 100), (999, 1000)] {
            let rank = (n * num).div_ceil(den).max(1);
            let truth = sorted[rank as usize - 1];
            let est = h.value_at_quantile(num, den);
            prop_assert!(est >= truth, "p{}/{}: {} < true {}", num, den, est, truth);
            prop_assert!(
                est <= truth.saturating_add(truth / SUB),
                "p{}/{}: {} above the 1/{} bound for {}",
                num, den, est, SUB, truth
            );
        }
        prop_assert_eq!(h.percentiles().max, *sorted.last().unwrap());
        prop_assert_eq!(h.total(), n);
    }

    #[test]
    fn merge_is_commutative_and_associative(
        a in arb_values(),
        b in arb_values(),
        c in arb_values(),
    ) {
        let (ha, hb, hc) = (record_all(&a), record_all(&b), record_all(&c));

        // Commutes: a+b == b+a, down to the serialized bytes.
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.encode(), ba.encode());

        // Associates: (a+b)+c == a+(b+c).
        let mut ab_c = ab.clone();
        ab_c.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut a_bc = ha.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);
        prop_assert_eq!(ab_c.encode(), a_bc.encode());

        // And every grouping equals recording everything into one.
        let mut all = record_all(&a);
        for &v in b.iter().chain(&c) {
            all.record(v);
        }
        prop_assert_eq!(&all, &ab_c);
        prop_assert_eq!(all.encode(), ab_c.encode());
    }

    #[test]
    fn empty_shards_are_merge_identities(values in arb_values()) {
        let h = record_all(&values);
        let mut padded = HdrHistogram::new();
        padded.merge(&h);
        padded.merge(&HdrHistogram::new());
        prop_assert_eq!(&padded, &h);
        prop_assert_eq!(padded.encode(), h.encode());
    }
}

/// Serializes `RAYON_NUM_THREADS` mutation — the environment is
/// process-global and tests in one binary run concurrently.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with the pool pinned to `n` workers, then restores the
/// default (host parallelism).
fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    std::env::set_var("RAYON_NUM_THREADS", n.to_string());
    let out = f();
    std::env::remove_var("RAYON_NUM_THREADS");
    out
}

#[test]
fn sharded_recording_is_byte_identical_at_every_thread_count() {
    let _guard = ENV_LOCK.lock().unwrap();
    // A fixed value set with exact, mid-range and near-max values.
    let values: Vec<u64> = (0..4096u64)
        .map(|i| match i % 5 {
            0 => i % SUB,
            1 => i * 37 + 11,
            2 => i * i + 1_000_000,
            3 => u64::MAX - i * 1000,
            _ => 1 << (i % 60),
        })
        .collect();
    let encodings: Vec<String> = [1usize, 2, 8]
        .into_iter()
        .map(|n| {
            with_threads(n, || {
                // Shard across the pool: one histogram per chunk,
                // collected in chunk order, merged left to right.
                let shards: Vec<HdrHistogram> = values
                    .chunks(64)
                    .map(<[u64]>::to_vec)
                    .collect::<Vec<_>>()
                    .into_par_iter()
                    .map(|chunk| record_all(&chunk))
                    .collect();
                let mut merged = HdrHistogram::new();
                for s in &shards {
                    merged.merge(s);
                }
                merged.encode()
            })
        })
        .collect();
    assert_eq!(
        encodings[0], encodings[1],
        "serialization diverged between 1 and 2 threads"
    );
    assert_eq!(
        encodings[0], encodings[2],
        "serialization diverged between 1 and 8 threads"
    );
    // And the sharded result equals the single-histogram recording.
    assert_eq!(encodings[0], record_all(&values).encode());
}
