//! Property tests over the fault-injection and recovery subsystem.
//!
//! Three contracts from docs/FAULT_MODEL.md are pinned here:
//!
//! 1. **Ordering** — the ECC read-retry ladder executes through the same
//!    resource-reservation engine as regular traffic, so retries can
//!    only *delay* completions, never reorder them within a channel.
//! 2. **Recovery correctness** — a LOBPCG solve interrupted by node
//!    crashes and resumed from checkpoints converges to the same
//!    eigenvalues as the uninterrupted solve (to tolerance; the restart
//!    re-applies the operator, so bit-identity is not expected).
//! 3. **Zero-fault identity** — `FaultPlan::none()` reproduces the
//!    fault-free driver byte-for-byte, and any plan is deterministic
//!    under its seed.

use flashsim::{DieOp, MediaConfig, MediaFaultState, MediaSim};
use nvmtypes::fault::{FaultPlan, MediaFaultProfile, NodeFaultProfile, STREAM_MEDIA, STREAM_NODE};
use nvmtypes::{BusTiming, DieIndex, Nanos, NvmKind, SsdGeometry, MIB};
use ooc::checkpoint::solve_with_recovery;
use ooc::lobpcg::{Lobpcg, LobpcgOptions};
use ooc::HamiltonianSpec;
use oocnvm_core::config::SystemConfig;
use oocnvm_core::experiment::{run_experiment, run_experiment_with_faults};
use oocnvm_core::workload::synthetic_ooc_trace;
use proptest::prelude::*;
use ssd::config::FtlMode;
use ssd::ftl::Ftl;
use ssd::recovery::read_with_recovery;
use ssd::ReliabilityStats;

/// One read per tuple: `(die-in-channel, planes, pages)`. All ops land
/// on channel 0 (dies are channel-major: die `2k` sits on channel 0 of
/// the tiny 2-channel geometry).
fn arb_channel_reads() -> impl Strategy<Value = Vec<(u32, u32, u64)>> {
    prop::collection::vec((0u32..4, 1u32..=2, 1u64..8), 1..24)
}

/// Executes the read sequence with recovery at fixed issue spacing and
/// returns each op's completion time.
fn run_reads(
    profile: MediaFaultProfile,
    seed: u64,
    ops: &[(u32, u32, u64)],
    gap: Nanos,
) -> (Vec<Nanos>, ReliabilityStats) {
    let media_cfg = MediaConfig::tiny(
        NvmKind::Tlc,
        BusTiming {
            name: "t",
            bytes_per_ns: 0.4,
        },
    );
    let pages_per_block = u64::from(media_cfg.geometry.pages_per_block);
    let mut media = MediaSim::new(media_cfg);
    let rng = FaultPlan {
        seed,
        ..FaultPlan::none()
    }
    .rng()
    .split(STREAM_MEDIA);
    let mut faults = MediaFaultState::new(profile, NvmKind::Tlc, pages_per_block, rng);
    let mut ftl = Ftl::new(FtlMode::ufs_default(), SsdGeometry::tiny(), 0).with_page_size(8192);
    let mut rel = ReliabilityStats::default();
    let mut ends = Vec::with_capacity(ops.len());
    for (i, &(die, planes, pages)) in ops.iter().enumerate() {
        let op = DieOp::read(DieIndex(die * 2), planes, pages, 0);
        let start = gap * (i as u64);
        ends.push(
            read_with_recovery(
                &mut media,
                &op,
                start,
                &mut faults,
                &mut ftl,
                &mut rel,
                &mut simobs::Tracer::off(),
            )
            .end,
        );
    }
    (ends, rel)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ecc_retries_never_reorder_channel_completions(
        ops in arb_channel_reads(),
        gap in 0u64..2_000,
        seed in 0u64..1_000,
        error_prob in 0.0f64..0.6,
        ecc_tiers in 1u32..4,
        tier_extra_ns in 100u64..2_000,
    ) {
        let profile = MediaFaultProfile {
            page_error_prob: error_prob,
            ecc_tiers,
            tier_extra_ns,
            ..MediaFaultProfile::none()
        };
        let (clean, clean_rel) = run_reads(MediaFaultProfile::none(), seed, &ops, gap);
        let (faulty, _) = run_reads(profile, seed, &ops, gap);
        prop_assert_eq!(clean_rel, ReliabilityStats::default());
        // Retries only ever delay: no op may finish earlier than its
        // fault-free self.
        for (f, c) in faulty.iter().zip(&clean) {
            prop_assert!(f >= c, "a retry made an op finish earlier ({f} < {c})");
        }
        // A die's completions stay in issue order, with and without the
        // retry ladder in play. (Distinct dies on the shared channel may
        // legitimately interleave page transfers; a single die may not.)
        for die in 0u32..4 {
            let per_die = |ends: &[Nanos]| -> Vec<Nanos> {
                ops.iter()
                    .zip(ends)
                    .filter(|((d, _, _), _)| *d == die)
                    .map(|(_, &e)| e)
                    .collect()
            };
            for w in per_die(&clean).windows(2) {
                prop_assert!(w[0] <= w[1], "clean run reordered die {die} ({} > {})", w[0], w[1]);
            }
            for w in per_die(&faulty).windows(2) {
                prop_assert!(w[0] <= w[1], "retries reordered die {die} ({} > {})", w[0], w[1]);
            }
        }
        // Same seed, same sequence: the ladder is deterministic.
        let (again, _) = run_reads(profile, seed, &ops, gap);
        prop_assert_eq!(faulty, again);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn checkpoint_restart_converges_to_the_same_eigenvalues(
        seed in 0u64..64,
        crash_prob in 0.02f64..0.25,
        checkpoint_every in 1u32..8,
    ) {
        let h = HamiltonianSpec::tiny(96).generate();
        let solver = Lobpcg::new(LobpcgOptions {
            block_size: 2,
            max_iters: 500,
            tol: 1e-7,
            seed: 7,
            precondition: true,
        });
        let plain = solver.solve(&h);
        prop_assert!(plain.converged);
        let profile = NodeFaultProfile {
            crash_prob_per_iter: crash_prob,
            checkpoint_every,
            restart_penalty_ns: 1_000_000,
            max_crashes: 4,
        };
        let mut rng = FaultPlan { seed, ..FaultPlan::none() }
            .rng()
            .split(STREAM_NODE);
        let rec = solve_with_recovery(&solver, &h, &profile, &mut rng);
        prop_assert!(rec.result.converged);
        for (a, b) in rec.result.eigenvalues.iter().zip(&plain.eigenvalues) {
            prop_assert!(
                (a - b).abs() < 1e-5,
                "eigenvalue drift {} vs {} after {} crashes",
                a, b, rec.recovery.node_losses
            );
        }
        // The accounting must reflect what happened: a crash costs its
        // restart penalty, a checkpoint its bytes.
        prop_assert_eq!(
            rec.recovery.restart_ns,
            u64::from(rec.recovery.node_losses) * profile.restart_penalty_ns
        );
        if rec.recovery.checkpoints > 0 {
            prop_assert!(rec.recovery.checkpoint_bytes > 0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn zero_fault_plan_is_byte_identical_and_plans_are_deterministic(
        total_mib in 2u64..6,
        trace_seed in 0u64..1_000,
        kind_idx in 0usize..NvmKind::ALL.len(),
        plan_seed in 0u64..1_000,
    ) {
        let kind = NvmKind::ALL[kind_idx];
        let trace = synthetic_ooc_trace(total_mib * MIB, MIB, trace_seed);
        for config in [SystemConfig::ion_gpfs(), SystemConfig::cnl_ufs()] {
            // FaultPlan::none() must not perturb a single byte of the
            // fault-free report — not even via RNG state or reordering.
            let base = run_experiment(&config, kind, &trace);
            let zero = run_experiment_with_faults(&config, kind, &trace, FaultPlan::none());
            prop_assert_eq!(
                format!("{:?}", base.run),
                format!("{:?}", zero.run),
                "{}: zero-fault run diverged from the fault-free driver",
                config.label
            );
            // Any plan is a pure function of (config, trace, seed).
            let plan = FaultPlan::heavy(plan_seed);
            let a = run_experiment_with_faults(&config, kind, &trace, plan);
            let b = run_experiment_with_faults(&config, kind, &trace, plan);
            prop_assert_eq!(format!("{:?}", a.run), format!("{:?}", b.run));
        }
    }
}
