//! Property tests over the fault-injection and recovery subsystem.
//!
//! Five contracts from docs/FAULT_MODEL.md are pinned here:
//!
//! 1. **Ordering** — the ECC read-retry ladder executes through the same
//!    resource-reservation engine as regular traffic, so retries can
//!    only *delay* completions, never reorder them within a channel.
//! 2. **Recovery correctness** — a LOBPCG solve interrupted by node
//!    crashes and resumed from checkpoints converges to the same
//!    eigenvalues as the uninterrupted solve (to tolerance; the restart
//!    re-applies the operator, so bit-identity is not expected).
//! 3. **Zero-fault identity** — `FaultPlan::none()` reproduces the
//!    fault-free driver byte-for-byte, and any plan is deterministic
//!    under its seed.
//! 4. **Journal-recovery idempotency** — after power loss at any device
//!    write, UFS mount-time recovery run twice is byte-identical to run
//!    once, and the recovery report is deterministic.
//! 5. **Committed prefix** — crash at an arbitrary write ∘ recover
//!    equals the state of the last transaction whose commit mark
//!    persisted before the crash, for random op sequences.

use flashsim::{DieOp, MediaConfig, MediaFaultState, MediaSim};
use nvmtypes::fault::CrashPoint;
use nvmtypes::fault::{FaultPlan, MediaFaultProfile, NodeFaultProfile, STREAM_MEDIA, STREAM_NODE};
use nvmtypes::{BusTiming, DieIndex, Nanos, NvmKind, SsdGeometry, MIB};
use ooc::checkpoint::solve_with_recovery;
use ooc::lobpcg::{Lobpcg, LobpcgOptions};
use ooc::HamiltonianSpec;
use oocnvm_core::config::SystemConfig;
use oocnvm_core::experiment::ExperimentSpec;
use oocnvm_core::workload::synthetic_ooc_trace;
use proptest::prelude::*;
use ssd::config::FtlMode;
use ssd::ftl::Ftl;
use ssd::recovery::read_with_recovery;
use ssd::{BlockDevice, ReliabilityStats, SimBlockDevice};
use std::collections::BTreeMap;
use ufs::fs::WRITES_AFTER_COMMIT;
use ufs::{Ufs, UfsParams};

/// One read per tuple: `(die-in-channel, planes, pages)`. All ops land
/// on channel 0 (dies are channel-major: die `2k` sits on channel 0 of
/// the tiny 2-channel geometry).
fn arb_channel_reads() -> impl Strategy<Value = Vec<(u32, u32, u64)>> {
    prop::collection::vec((0u32..4, 1u32..=2, 1u64..8), 1..24)
}

/// Executes the read sequence with recovery at fixed issue spacing and
/// returns each op's completion time.
fn run_reads(
    profile: MediaFaultProfile,
    seed: u64,
    ops: &[(u32, u32, u64)],
    gap: Nanos,
) -> (Vec<Nanos>, ReliabilityStats) {
    let media_cfg = MediaConfig::tiny(
        NvmKind::Tlc,
        BusTiming {
            name: "t",
            bytes_per_ns: 0.4,
        },
    );
    let pages_per_block = u64::from(media_cfg.geometry.pages_per_block);
    let mut media = MediaSim::new(media_cfg);
    let rng = FaultPlan {
        seed,
        ..FaultPlan::none()
    }
    .rng()
    .split(STREAM_MEDIA);
    let mut faults = MediaFaultState::new(profile, NvmKind::Tlc, pages_per_block, rng);
    let mut ftl = Ftl::new(FtlMode::ufs_default(), SsdGeometry::tiny(), 0).with_page_size(8192);
    let mut rel = ReliabilityStats::default();
    let mut ends = Vec::with_capacity(ops.len());
    for (i, &(die, planes, pages)) in ops.iter().enumerate() {
        let op = DieOp::read(DieIndex(die * 2), planes, pages, 0);
        let start = gap * (i as u64);
        ends.push(
            read_with_recovery(
                &mut media,
                &op,
                start,
                &mut faults,
                &mut ftl,
                &mut rel,
                &mut simobs::Tracer::off(),
            )
            .end,
        );
    }
    (ends, rel)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ecc_retries_never_reorder_channel_completions(
        ops in arb_channel_reads(),
        gap in 0u64..2_000,
        seed in 0u64..1_000,
        error_prob in 0.0f64..0.6,
        ecc_tiers in 1u32..4,
        tier_extra_ns in 100u64..2_000,
    ) {
        let profile = MediaFaultProfile {
            page_error_prob: error_prob,
            ecc_tiers,
            tier_extra_ns,
            ..MediaFaultProfile::none()
        };
        let (clean, clean_rel) = run_reads(MediaFaultProfile::none(), seed, &ops, gap);
        let (faulty, _) = run_reads(profile, seed, &ops, gap);
        prop_assert_eq!(clean_rel, ReliabilityStats::default());
        // Retries only ever delay: no op may finish earlier than its
        // fault-free self.
        for (f, c) in faulty.iter().zip(&clean) {
            prop_assert!(f >= c, "a retry made an op finish earlier ({f} < {c})");
        }
        // A die's completions stay in issue order, with and without the
        // retry ladder in play. (Distinct dies on the shared channel may
        // legitimately interleave page transfers; a single die may not.)
        for die in 0u32..4 {
            let per_die = |ends: &[Nanos]| -> Vec<Nanos> {
                ops.iter()
                    .zip(ends)
                    .filter(|((d, _, _), _)| *d == die)
                    .map(|(_, &e)| e)
                    .collect()
            };
            for w in per_die(&clean).windows(2) {
                prop_assert!(w[0] <= w[1], "clean run reordered die {die} ({} > {})", w[0], w[1]);
            }
            for w in per_die(&faulty).windows(2) {
                prop_assert!(w[0] <= w[1], "retries reordered die {die} ({} > {})", w[0], w[1]);
            }
        }
        // Same seed, same sequence: the ladder is deterministic.
        let (again, _) = run_reads(profile, seed, &ops, gap);
        prop_assert_eq!(faulty, again);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn checkpoint_restart_converges_to_the_same_eigenvalues(
        seed in 0u64..64,
        crash_prob in 0.02f64..0.25,
        checkpoint_every in 1u32..8,
    ) {
        let h = HamiltonianSpec::tiny(96).generate();
        let solver = Lobpcg::new(LobpcgOptions {
            block_size: 2,
            max_iters: 500,
            tol: 1e-7,
            seed: 7,
            precondition: true,
        });
        let plain = solver.solve(&h);
        prop_assert!(plain.converged);
        let profile = NodeFaultProfile {
            crash_prob_per_iter: crash_prob,
            checkpoint_every,
            restart_penalty_ns: 1_000_000,
            max_crashes: 4,
        };
        let mut rng = FaultPlan { seed, ..FaultPlan::none() }
            .rng()
            .split(STREAM_NODE);
        let rec = solve_with_recovery(&solver, &h, &profile, &mut rng);
        prop_assert!(rec.result.converged);
        for (a, b) in rec.result.eigenvalues.iter().zip(&plain.eigenvalues) {
            prop_assert!(
                (a - b).abs() < 1e-5,
                "eigenvalue drift {} vs {} after {} crashes",
                a, b, rec.recovery.node_losses
            );
        }
        // The accounting must reflect what happened: a crash costs its
        // restart penalty, a checkpoint its bytes.
        prop_assert_eq!(
            rec.recovery.restart_ns,
            u64::from(rec.recovery.node_losses) * profile.restart_penalty_ns
        );
        if rec.recovery.checkpoints > 0 {
            prop_assert!(rec.recovery.checkpoint_bytes > 0);
        }
    }
}

// --- journaled UFS under power loss (docs/UFS.md) --------------------------

/// Deterministic patterned content for op `i` of length `len`.
fn op_content(i: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|b| u8::try_from((b * 31 + i * 151 + 7) % 256).unwrap_or(0))
        .collect()
}

/// Filesystem geometry the UFS properties run under.
fn small_ufs() -> UfsParams {
    UfsParams {
        max_files: 8,
        journal_sectors: 16,
    }
}

/// A freshly formatted device image.
fn formatted_media() -> Vec<u8> {
    Ufs::format(SimBlockDevice::new(2048), small_ufs())
        .expect("formats")
        .into_device()
        .into_media()
}

enum DriveEnd {
    /// All ops applied: the filesystem and, per fsync, the commit's
    /// device-write index paired with the logical state snapshot.
    Done {
        fs: Box<Ufs<SimBlockDevice>>,
        commits: Vec<(u64, BTreeMap<String, Vec<u8>>)>,
    },
    /// Power was lost mid-op; the surviving media image.
    Lost(Vec<u8>),
}

/// Mirrors `Ufs::write` at offset 0 in the logical model: a pwrite-style
/// overlay, so a shorter rewrite never truncates the file.
fn overlay(model: &mut BTreeMap<String, Vec<u8>>, name: &str, content: &[u8]) {
    let file = model.entry(name.to_string()).or_default();
    if file.len() < content.len() {
        file.resize(content.len(), 0);
    }
    file[..content.len()].copy_from_slice(content);
}

/// Runs `(name, content)` write-at-zero+fsync ops, creating files on
/// first touch.
fn drive(dev: SimBlockDevice, ops: &[(String, Vec<u8>)]) -> DriveEnd {
    let (mut fs, _report) = Ufs::mount(dev).expect("mounts");
    let mut commits = Vec::new();
    let mut model: BTreeMap<String, Vec<u8>> = BTreeMap::new();
    for (name, content) in ops {
        let step = (|| -> Result<(), nvmtypes::SimError> {
            let id = match fs.open(name) {
                Ok(id) => id,
                Err(_) => fs.create(name)?,
            };
            fs.write(id, 0, content)?;
            fs.fsync(id)
        })();
        match step {
            Ok(()) => {
                overlay(&mut model, name, content);
                let index = fs.device().writes_persisted() - WRITES_AFTER_COMMIT;
                commits.push((index, model.clone()));
            }
            Err(e) if e.is_power_loss() => {
                return DriveEnd::Lost(fs.into_device().into_media());
            }
            Err(e) => panic!("unexpected filesystem error: {e}"),
        }
    }
    DriveEnd::Done {
        fs: Box::new(fs),
        commits,
    }
}

/// `true` when the mounted filesystem equals the logical snapshot.
fn state_eq(fs: &mut Ufs<SimBlockDevice>, want: &BTreeMap<String, Vec<u8>>) -> bool {
    let mut names = fs.file_names();
    names.sort();
    if names != want.keys().cloned().collect::<Vec<_>>() {
        return false;
    }
    want.iter().all(|(name, content)| {
        let Ok(id) = fs.open(name) else { return false };
        let mut got = vec![0u8; content.len()];
        fs.size(id) == Ok(content.len() as u64)
            && fs.read(id, 0, &mut got).is_ok()
            && &got == content
    })
}

/// Ground truth for a random op sequence: base image, total writes of
/// the clean run, per-commit write indices and snapshots, and the ops.
#[allow(clippy::type_complexity)]
fn ground_truth(
    ops_spec: &[(u32, usize)],
) -> (
    Vec<u8>,
    u64,
    Vec<(u64, BTreeMap<String, Vec<u8>>)>,
    Vec<(String, Vec<u8>)>,
) {
    let ops: Vec<(String, Vec<u8>)> = ops_spec
        .iter()
        .enumerate()
        .map(|(i, &(f, len))| (format!("f{f}"), op_content(i, len)))
        .collect();
    let base = formatted_media();
    let DriveEnd::Done { fs, commits } = drive(
        SimBlockDevice::from_media(base.clone()).expect("aligned"),
        &ops,
    ) else {
        panic!("clean run lost power without a crash hook");
    };
    let total = fs.device().writes_persisted();
    (base, total, commits, ops)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Contract 4: recovery is idempotent and its report deterministic.
    /// Power loss at an arbitrary write, then: two independent mounts of
    /// the crashed image agree byte-for-byte (media and report), and a
    /// mount of the recovered image replays nothing and writes nothing.
    #[test]
    fn ufs_journal_recovery_is_idempotent_and_deterministic(
        ops_spec in prop::collection::vec((0u32..3, 1usize..12_000), 1..6),
        frac in 0.0f64..1.0,
        torn in prop::bool::ANY,
        seed in 0u64..1_000,
    ) {
        let (base, total, _commits, ops) = ground_truth(&ops_spec);
        let k = 1 + ((frac * approx(total)) as u64).min(total - 1);
        let crashed = |s: u64| {
            let dev = SimBlockDevice::from_media(base.clone())
                .expect("aligned")
                .with_crash_point(Some(CrashPoint::at_write(k, torn, s)));
            match drive(dev, &ops) {
                DriveEnd::Lost(media) => media,
                DriveEnd::Done { .. } => panic!("crash at write {k} of {total} never fired"),
            }
        };
        let media = crashed(seed);
        prop_assert_eq!(&media, &crashed(seed), "crash replica is not deterministic");

        // Two independent recoveries of the same image agree exactly.
        let (fs_a, rep_a) = Ufs::mount(SimBlockDevice::from_media(media.clone()).expect("aligned"))
            .expect("recovers");
        let (fs_b, rep_b) = Ufs::mount(SimBlockDevice::from_media(media).expect("aligned"))
            .expect("recovers");
        prop_assert_eq!(rep_a.render(), rep_b.render());
        let once = fs_a.into_device().into_media();
        prop_assert_eq!(&once, &fs_b.into_device().into_media());

        // Recovering the recovered image is a no-op: clean report, no
        // checkpoint, identical media.
        let (fs_c, rep_c) = Ufs::mount(SimBlockDevice::from_media(once.clone()).expect("aligned"))
            .expect("mounts");
        prop_assert!(rep_c.is_clean());
        prop_assert!(!rep_c.checkpoint_written);
        prop_assert_eq!(once, fs_c.into_device().into_media());
    }

    /// Contract 5: crash ∘ recover == committed prefix. After power loss
    /// during write `k`, exactly the transactions whose commit mark
    /// persisted before `k` are visible. (A *torn* crash on the commit
    /// write itself may legally land on either side of the atomicity
    /// boundary: journal records occupy only the head of their sector,
    /// so a tear keeping the record bytes commits the transaction.)
    #[test]
    fn ufs_crash_then_recover_equals_the_committed_prefix(
        ops_spec in prop::collection::vec((0u32..3, 1usize..12_000), 1..6),
        frac in 0.0f64..1.0,
        torn in prop::bool::ANY,
        seed in 0u64..1_000,
    ) {
        let (base, total, commits, ops) = ground_truth(&ops_spec);
        let k = 1 + ((frac * approx(total)) as u64).min(total - 1);
        let dev = SimBlockDevice::from_media(base)
            .expect("aligned")
            .with_crash_point(Some(CrashPoint::at_write(k, torn, seed)));
        let DriveEnd::Lost(media) = drive(dev, &ops) else {
            panic!("crash at write {k} of {total} never fired");
        };
        let empty = BTreeMap::new();
        let expected = commits
            .iter()
            .rev()
            .find(|(index, _)| *index < k)
            .map_or(&empty, |(_, state)| state);
        let (mut fs, _report) = Ufs::mount(SimBlockDevice::from_media(media).expect("aligned"))
            .expect("recovers");
        let prefix_ok = state_eq(&mut fs, expected);
        let torn_commit_ok = torn
            && commits
                .iter()
                .find(|(index, _)| *index == k)
                .is_some_and(|(_, state)| state_eq(&mut fs, state));
        prop_assert!(
            prefix_ok || torn_commit_ok,
            "crash at write {} (torn: {}) did not recover to the committed prefix",
            k,
            torn
        );
    }
}

/// `u64 -> f64` without a bare cast (test-local mirror of
/// `nvmtypes::approx_f64`, kept inline for the crash-fraction math).
fn approx(v: u64) -> f64 {
    nvmtypes::approx_f64(v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn zero_fault_plan_is_byte_identical_and_plans_are_deterministic(
        total_mib in 2u64..6,
        trace_seed in 0u64..1_000,
        kind_idx in 0usize..NvmKind::ALL.len(),
        plan_seed in 0u64..1_000,
    ) {
        let kind = NvmKind::ALL[kind_idx];
        let trace = synthetic_ooc_trace(total_mib * MIB, MIB, trace_seed);
        for config in [SystemConfig::ion_gpfs(), SystemConfig::cnl_ufs()] {
            // FaultPlan::none() must not perturb a single byte of the
            // fault-free report — not even via RNG state or reordering.
            let base = ExperimentSpec::new(&config, kind).run(&trace);
            let zero = ExperimentSpec::new(&config, kind).faults(FaultPlan::none()).run(&trace);
            prop_assert_eq!(
                format!("{:?}", base.run),
                format!("{:?}", zero.run),
                "{}: zero-fault run diverged from the fault-free driver",
                config.label
            );
            // Any plan is a pure function of (config, trace, seed).
            let plan = FaultPlan::heavy(plan_seed);
            let a = ExperimentSpec::new(&config, kind).faults(plan).run(&trace);
            let b = ExperimentSpec::new(&config, kind).faults(plan).run(&trace);
            prop_assert_eq!(format!("{:?}", a.run), format!("{:?}", b.run));
        }
    }
}
