//! End-to-end pipeline tests: real eigensolver -> trace capture -> file
//! system mutation -> SSD simulation, exercising every crate in one flow.

use nvmtypes::NvmKind;
use ooc::lobpcg::{Lobpcg, LobpcgOptions, Operator, TracedOperator};
use ooc::{CsrMatrix, HamiltonianSpec, OocMatrix};
use oocfs::FsKind;
use oocnvm_core::config::SystemConfig;
use oocnvm_core::experiment::ExperimentSpec;
use ooctrace::{AccessStats, TraceCapture};

fn hamiltonian(n: usize) -> CsrMatrix {
    HamiltonianSpec {
        n,
        band: 8,
        couplings_per_row: 4,
        seed: 99,
    }
    .generate()
}

#[test]
fn lobpcg_over_the_store_matches_in_memory_lobpcg() {
    let h = hamiltonian(800);
    let ooc = OocMatrix::build(&h, 100, 0, None);
    let cap = TraceCapture::new();
    let diag = h.diagonal().unwrap();
    let traced = TracedOperator::new(&ooc, &cap).with_diagonal(diag);

    let opts = LobpcgOptions {
        block_size: 6,
        max_iters: 120,
        tol: 1e-7,
        seed: 5,
        precondition: true,
    };
    let direct = Lobpcg::new(opts).solve(&h);
    let streamed = Lobpcg::new(opts).solve(&traced);

    assert!(direct.converged && streamed.converged);
    for k in 0..6 {
        assert!(
            (direct.eigenvalues[k] - streamed.eigenvalues[k]).abs() < 1e-6,
            "eigenvalue {k}: {} vs {}",
            direct.eigenvalues[k],
            streamed.eigenvalues[k]
        );
    }
    // The streamed solve really did go through storage.
    assert!(!cap.is_empty());
}

#[test]
fn eigenvectors_are_orthonormal_and_satisfy_rayleigh_quotient() {
    let h = hamiltonian(600);
    let res = Lobpcg::new(LobpcgOptions {
        block_size: 4,
        max_iters: 150,
        tol: 1e-7,
        seed: 1,
        precondition: true,
    })
    .solve(&h);
    assert!(res.converged, "residuals {:?}", res.residuals);
    let x = &res.eigenvectors;
    let gram = x.transpose_mul(x);
    for i in 0..4 {
        for j in 0..4 {
            let want = if i == j { 1.0 } else { 0.0 };
            assert!(
                (gram[(i, j)] - want).abs() < 1e-6,
                "gram[{i}{j}]={}",
                gram[(i, j)]
            );
        }
    }
    // Rayleigh quotients equal the eigenvalues.
    let ax = h.spmm(x);
    let xtax = x.transpose_mul(&ax);
    for k in 0..4 {
        assert!((xtax[(k, k)] - res.eigenvalues[k]).abs() < 1e-5);
    }
}

#[test]
fn solver_trace_has_the_papers_shape() {
    // §3.1/§4.2: heavily read-intensive, iterative, highly sequential.
    let (trace, _) = oocnvm_core::workload::lobpcg_posix_trace(1500, 6, 10, 150);
    let stats = AccessStats::of_posix(&trace);
    assert!((trace.read_fraction() - 1.0).abs() < 1e-12, "not read-only");
    assert!(
        stats.sequentiality > 0.85,
        "sequentiality {}",
        stats.sequentiality
    );
    // Iterative: the same bytes are read many times over.
    let distinct: u64 = {
        let mut spans: Vec<(u64, u64)> =
            trace.records.iter().map(|r| (r.offset, r.end())).collect();
        spans.sort_unstable();
        let mut covered = 0;
        let mut cursor = 0;
        for (s, e) in spans {
            let s = s.max(cursor);
            if e > s {
                covered += e - s;
                cursor = e;
            }
        }
        covered
    };
    assert!(
        trace.total_bytes() > 3 * distinct,
        "total {} vs distinct {}",
        trace.total_bytes(),
        distinct
    );
}

#[test]
fn full_stack_replay_runs_on_every_architecture() {
    let (trace, eigs) = oocnvm_core::workload::lobpcg_posix_trace(1200, 4, 6, 120);
    assert!(eigs.iter().all(|v| v.is_finite()));
    for config in SystemConfig::table2() {
        let report = ExperimentSpec::new(&config, NvmKind::Mlc).run(&trace);
        assert!(
            report.bandwidth_mb_s > 50.0,
            "{} too slow: {}",
            config.label,
            report.bandwidth_mb_s
        );
        assert!(report.run.makespan > 0);
        assert!((report.pal_pct.iter().sum::<f64>() - 100.0).abs() < 1e-6);
        assert!((report.breakdown_pct.iter().sum::<f64>() - 100.0).abs() < 1e-6);
    }
}

#[test]
fn preload_then_iterate_write_then_read() {
    // §3.1: "all required data should be able to be pre-loaded ... prior
    // to beginning the computation". Model the preload as traced writes,
    // then iterate reads; the CNL device must handle both phases.
    let h = hamiltonian(1000);
    let cap = TraceCapture::new();
    let ooc = OocMatrix::build(&h, 125, 0, Some(&cap));
    // Two read sweeps after the preload.
    let x = ooc::DMatrix::zeros(h.n, 4);
    ooc.spmm_traced(&x, &cap);
    ooc.spmm_traced(&x, &cap);
    let trace = cap.into_trace();
    assert!(trace.read_fraction() > 0.6 && trace.read_fraction() < 0.7);

    let config = SystemConfig::cnl_ufs();
    let report = ExperimentSpec::new(&config, NvmKind::Slc).run(&trace);
    assert!(report.bandwidth_mb_s > 100.0);
    assert_eq!(report.run.total_bytes, trace.total_bytes());
}

#[test]
fn gpfs_mutation_of_the_real_trace_reproduces_figure6() {
    let (posix, _) = oocnvm_core::workload::lobpcg_posix_trace(1500, 4, 6, 100);
    let gpfs = FsKind::IonGpfs.transform(&posix);
    let ufs = FsKind::Ufs.transform(&posix);
    let p = AccessStats::of_posix(&posix);
    let g = AccessStats::of_block(&gpfs);
    let u = AccessStats::of_block(&ufs);
    // GPFS destroys the sequentiality the application emitted; UFS keeps it.
    assert!(p.sequentiality > 0.85);
    assert!(g.sequentiality < 0.3 * p.sequentiality);
    assert!(u.sequentiality >= p.sequentiality * 0.9);
    // GPFS also fragments the requests.
    assert!(g.mean_size < u.mean_size);
}
